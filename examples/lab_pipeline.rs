//! The paper's motivating scenario (§1): "when files appear in a
//! specific directory of their laboratory machine they are automatically
//! analyzed and the results replicated to their personal device."
//!
//! Three agents and three chained rules:
//!
//! 1. beamline detector writes `scan-*.raw` into `/acquisition`
//!    → run the analysis container on the lab machine;
//! 2. the (simulated) container writes `*.h5` results into `/results`
//!    → transfer them to the scientist's laptop;
//! 3. results arriving on the laptop → email notification.
//!
//! Run with `cargo run --example lab_pipeline`.

use sdci::ripple::{ActionKind, ActionSpec, RippleBuilder, Rule, Trigger};
use sdci::types::{AgentId, EventKind, SimTime};
use std::time::Duration;

fn main() {
    let mut ripple = RippleBuilder::new().workers(4).build();
    let lab = ripple.add_local_agent("lab-machine");
    let laptop = ripple.add_local_agent("laptop");

    let lab_id = AgentId::new("lab-machine");
    let laptop_id = AgentId::new("laptop");

    // Rule 1: raw scans trigger containerized analysis on the lab box.
    ripple.add_rule(
        Rule::when(
            Trigger::on(lab_id.clone())
                .under("/acquisition")
                .kinds([EventKind::Created])
                .glob("scan-*.raw"),
        )
        .then(ActionSpec::docker("tomopy/reconstruct:latest", "reconstruct {path}")),
    );
    // Rule 2: analysis outputs replicate to the laptop.
    ripple.add_rule(
        Rule::when(
            Trigger::on(lab_id.clone()).under("/results").kinds([EventKind::Created]).glob("*.h5"),
        )
        .then(ActionSpec::transfer(laptop_id.clone(), "/replicated")),
    );
    // Rule 3: tell the scientist when results land on their device.
    ripple.add_rule(
        Rule::when(
            Trigger::on(laptop_id.clone())
                .under("/replicated")
                .kinds([EventKind::Created])
                .glob("*.h5"),
        )
        .then(ActionSpec::email("scientist@university.edu")),
    );

    // The beamline acquires three scans.
    {
        let fs = lab.fs();
        let mut guard = fs.lock();
        guard.mkdir("/acquisition", SimTime::EPOCH).expect("mkdir");
        guard.mkdir("/results", SimTime::EPOCH).expect("mkdir");
        for i in 0..3 {
            let path = format!("/acquisition/scan-{i:03}.raw");
            guard.create(&path, SimTime::from_secs(i)).expect("create");
            guard.write(&path, 2 * 1024 * 1024, SimTime::from_secs(i)).expect("write");
        }
    }
    assert!(ripple.pump_until_idle(Duration::from_secs(10)));

    // The container invocations are recorded in the execution log; the
    // "analysis" itself is simulated here by writing its outputs.
    let analyses =
        ripple.execution_log().successes_where(|r| matches!(r.kind, ActionKind::DockerRun { .. }));
    println!("analysis containers launched: {}", analyses.len());
    for record in &analyses {
        println!("  docker {} <- {}", record.kind, record.trigger_path.display());
    }
    {
        let fs = lab.fs();
        let mut guard = fs.lock();
        for (i, record) in analyses.iter().enumerate() {
            let stem = record.trigger_path.file_stem().unwrap().to_string_lossy();
            let out = format!("/results/{stem}.h5");
            guard.create(&out, SimTime::from_secs(100 + i as u64)).expect("create");
            guard.write(&out, 512 * 1024, SimTime::from_secs(100 + i as u64)).expect("write");
        }
    }
    assert!(ripple.pump_until_idle(Duration::from_secs(10)));

    // Results must now exist on the laptop, and emails must have fired.
    let fs = laptop.fs();
    let replicated = fs.lock().read_dir("/replicated").expect("replicated dir");
    println!("files replicated to laptop: {}", replicated.len());
    for entry in &replicated {
        println!("  /replicated/{}", entry.name);
    }
    assert_eq!(replicated.len(), 3);

    let emails =
        ripple.execution_log().successes_where(|r| matches!(r.kind, ActionKind::Email { .. }));
    println!("notification emails sent: {}", emails.len());
    assert_eq!(emails.len(), 3);

    ripple.shutdown();
    println!("lab pipeline complete: acquisition -> analysis -> replication -> notification");
}
