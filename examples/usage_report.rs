//! Administrator tooling over the same ChangeLog: a Robinhood-style
//! usage report and stale-data purge list, side by side with the
//! real-time monitor.
//!
//! §2 of the paper positions Robinhood as the existing ChangeLog
//! consumer: it "maintains a database of file system events, using it to
//! provide various routines and utilities for Lustre, such as tools to
//! efficiently find files and produce usage reports", with "policies to
//! migrate and purge stale data". This example runs both consumers
//! against one filesystem — they are independent ChangeLog users, so
//! purging only advances past the slower of the two.
//!
//! Run with `cargo run --example usage_report`.

use parking_lot::Mutex;
use sdci::baselines::RobinhoodScanner;
use sdci::lustre::{DnePolicy, LustreConfig, LustreFs};
use sdci::monitor::MonitorClusterBuilder;
use sdci::types::{MdtIndex, SimTime};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let lfs = Arc::new(Mutex::new(LustreFs::new(
        LustreConfig::builder("admin-demo")
            .mdt_count(2)
            .ost_count(4)
            .dne_policy(DnePolicy::RoundRobinTopLevel)
            .build(),
    )));

    // Two independent ChangeLog consumers.
    let mut scanner = RobinhoodScanner::new(Arc::clone(&lfs), 128);
    let cluster = MonitorClusterBuilder::new(Arc::clone(&lfs)).start();

    // A month of project activity: /climate is active, /archive is
    // stale, /scratch churns.
    let day = |d: u64| SimTime::from_secs(d * 86_400);
    {
        let mut fs = lfs.lock();
        fs.mkdir("/climate", day(0)).expect("mkdir");
        fs.set_default_stripe("/climate", 4).expect("setstripe");
        fs.mkdir("/archive", day(0)).expect("mkdir");
        fs.mkdir("/scratch", day(0)).expect("mkdir");
        for i in 0..6 {
            let p = format!("/archive/old-{i}.tar");
            fs.create(&p, day(1)).expect("create");
            fs.write(&p, 50 * 1024 * 1024, day(1)).expect("write");
        }
        for d in 20..30u64 {
            let p = format!("/climate/model-day{d}.nc");
            fs.create(&p, day(d)).expect("create");
            fs.write(&p, 200 * 1024 * 1024, day(d)).expect("write");
            let tmp = format!("/scratch/tmp-{d}");
            fs.create(&tmp, day(d)).expect("create");
            if d % 2 == 0 {
                fs.unlink(&tmp, day(d)).expect("unlink");
            }
        }
    }
    let total = lfs.lock().total_events();
    assert!(cluster.wait_for_published(total, Duration::from_secs(10)));

    // Robinhood side: ingest, then policy queries.
    let applied = scanner.scan_once();
    println!("robinhood scanner ingested {applied} records into its database\n");

    println!("-- usage report (live entries per top-level project) --");
    for project in ["/climate", "/archive", "/scratch"] {
        let entries = scanner.db().under(std::path::Path::new(project));
        println!("  {project:<10} {:>3} entries", entries.len());
    }

    println!("\n-- stale-data purge candidates (not modified since day 15) --");
    for path in scanner.db().stale_since(day(15)) {
        println!("  {}", path.display());
    }

    // OST space view (the `lfs df` stand-in).
    println!("\n-- OST usage --");
    let report = lfs.lock().ost_report();
    for (i, ost) in report.osts.iter().enumerate() {
        println!(
            "  OST{i}: {} objects, {:.1} MiB",
            ost.objects,
            ost.bytes as f64 / (1024.0 * 1024.0)
        );
    }
    println!(
        "  total used: {} of {} (imbalance {:.2})",
        report.used,
        report.capacity,
        report.imbalance()
    );

    // Both consumers acked; ChangeLogs can now fully purge.
    let monitor_events = cluster.stats().total_processed();
    cluster.shutdown();
    let fs = lfs.lock();
    let remaining: usize = (0..2).map(|m| fs.changelog(MdtIndex::new(m)).len()).sum();
    println!(
        "\nmonitor streamed {monitor_events} events in parallel; \
         {remaining} records remain after both consumers acknowledged"
    );
}
