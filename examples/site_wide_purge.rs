//! Site-wide scratch purging — the policy class inotify cannot support.
//!
//! §3: "Ripple cannot enforce rules which are applied to many
//! directories, such as site-wide purging policies" when it relies on
//! targeted inotify watches (each watch costs ~1 KiB of kernel memory
//! and a crawl). The Lustre ChangeLog monitor removes that limit: one
//! subscription sees *every* event on the filesystem.
//!
//! This example runs a Lustre-backed Ripple agent whose event source is
//! the monitor feed, with a purge rule over `*.tmp` files anywhere under
//! any user's scratch tree — then shows what the equivalent inotify
//! deployment would have cost.
//!
//! Run with `cargo run --example site_wide_purge`.

use parking_lot::Mutex;
use sdci::inotify::{Inotify, RecursiveWatcher};
use sdci::lustre::{DnePolicy, LustreConfig, LustreFs};
use sdci::monitor::MonitorClusterBuilder;
use sdci::ripple::{ActionSpec, AgentStorage, MonitorSource, RippleBuilder, Rule, Trigger};
use sdci::types::{AgentId, EventKind, SimTime};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // A four-MDT Lustre deployment with users spread across MDTs.
    let lfs = Arc::new(Mutex::new(LustreFs::new(
        LustreConfig::builder("alcf")
            .mdt_count(4)
            .dne_policy(DnePolicy::RoundRobinTopLevel)
            .build(),
    )));
    let cluster = MonitorClusterBuilder::new(Arc::clone(&lfs)).start();

    // A Ripple agent whose event source is the site-wide monitor feed.
    let mut ripple = RippleBuilder::new().build();
    ripple.add_agent(
        AgentId::new("alcf-lustre"),
        AgentStorage::Lustre(Arc::clone(&lfs)),
        MonitorSource::new(cluster.subscribe()),
    );
    // One rule, the whole filesystem: purge scratch temporaries.
    ripple.add_rule(
        Rule::when(
            Trigger::on(AgentId::new("alcf-lustre"))
                .under("/")
                .kinds([EventKind::Created])
                .glob("*.tmp"),
        )
        .then(ActionSpec::purge()),
    );

    // 20 users × 5 project dirs; a mix of keepers and temporaries.
    let (mut keepers, mut temporaries) = (0u64, 0u64);
    {
        let mut fs = lfs.lock();
        for user in 0..20 {
            for proj in 0..5 {
                let dir = format!("/u{user}/proj{proj}");
                fs.mkdir_all(&dir, SimTime::EPOCH).expect("mkdir");
                fs.create(format!("{dir}/data.h5"), SimTime::from_secs(1)).expect("create");
                keepers += 1;
                if (user + proj) % 2 == 0 {
                    fs.create(format!("{dir}/stage.tmp"), SimTime::from_secs(2)).expect("create");
                    temporaries += 1;
                }
            }
        }
    }
    println!("created {keepers} data files and {temporaries} temporaries across 100 dirs");

    assert!(ripple.pump_until_idle(Duration::from_secs(20)), "fabric should quiesce");

    // Every temporary is gone; every keeper survives.
    let (mut gone, mut kept) = (0u64, 0u64);
    {
        let fs = lfs.lock();
        for user in 0..20 {
            for proj in 0..5 {
                let dir = format!("/u{user}/proj{proj}");
                if !fs.fs().exists(format!("{dir}/stage.tmp")) {
                    gone += 1;
                }
                if fs.fs().exists(format!("{dir}/data.h5")) {
                    kept += 1;
                }
            }
        }
    }
    println!("temporaries purged: {temporaries}/{temporaries} (dirs without .tmp now: {gone})");
    println!("data files kept:    {kept}/{keepers}");
    assert_eq!(kept, keepers);

    // What would targeted inotify coverage of the same namespace cost?
    let watch_cost = {
        let fs = lfs.lock();
        let mut probe_fs = sdci::simfs::SimFs::new();
        for (path, stat) in fs.fs().walk() {
            if stat.file_type == sdci::simfs::FileType::Directory {
                probe_fs.mkdir_all(&path, SimTime::EPOCH).expect("mkdir");
            }
        }
        let ino = Inotify::attach(&mut probe_fs);
        let mut watcher = RecursiveWatcher::new(ino);
        watcher.watch_tree(&probe_fs, "/").expect("crawl");
        watcher.stats()
    };
    println!(
        "equivalent inotify deployment: {} watches, {} crawled dirs, {} kernel memory",
        watch_cost.watches_placed,
        watch_cost.directories_crawled,
        watch_cost.kernel_memory()
    );
    println!(
        "the ChangeLog monitor needed 0 watches and 0 crawl — {} events streamed from {} MDTs",
        cluster.stats().total_processed(),
        lfs.lock().mdt_count()
    );

    ripple.shutdown();
    cluster.shutdown();
    println!("site-wide purge complete");
}
