//! Fault tolerance: consumers that disconnect catch up from the
//! Aggregator's historic-event API.
//!
//! §4: "The monitor also maintains a rotating catalog of events and an
//! API to retrieve recent events in order to provide fault tolerance."
//! A consumer tracks the Aggregator's dense sequence numbers; on
//! reconnect (or on a detected gap) it backfills from the store before
//! resuming the live feed.
//!
//! Run with `cargo run --example event_replay`.

use parking_lot::Mutex;
use sdci::lustre::{LustreConfig, LustreFs};
use sdci::monitor::{MonitorClusterBuilder, MonitorConfig};
use sdci::types::SimTime;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let lfs = Arc::new(Mutex::new(LustreFs::new(LustreConfig::iota_testbed())));
    let cluster = MonitorClusterBuilder::new(Arc::clone(&lfs))
        .config(MonitorConfig { store_capacity: 10_000, ..MonitorConfig::default() })
        .start();

    // Phase 1: a consumer reads the first batch live, then "crashes".
    let mut consumer = cluster.subscribe();
    {
        let mut fs = lfs.lock();
        fs.mkdir("/runs", SimTime::EPOCH).expect("mkdir");
        for i in 0..10 {
            fs.create(format!("/runs/r{i}.log"), SimTime::from_secs(i)).expect("create");
        }
    }
    let mut seen_before_crash = 0u64;
    let mut last_seq = 0u64;
    while seen_before_crash < 11 {
        let event =
            consumer.next_timeout(Duration::from_secs(5)).expect("live events before the crash");
        seen_before_crash += 1;
        last_seq = consumer.next_seq() - 1;
        drop(event);
    }
    println!("consumer saw {seen_before_crash} events (through seq {last_seq}), then crashed");
    drop(consumer); // the crash: subscription gone, no state but last_seq

    // Phase 2: 25 more events happen while nobody is listening.
    {
        let mut fs = lfs.lock();
        for i in 10..35 {
            fs.create(format!("/runs/r{i}.log"), SimTime::from_secs(i)).expect("create");
        }
    }
    assert!(
        cluster.wait_for_published(36, Duration::from_secs(5)),
        "monitor keeps processing while the consumer is down"
    );
    println!("25 events occurred during the outage");

    // Phase 3: reconnect from the last checkpoint; the store backfills.
    let mut reconnected = cluster.subscribe_from(last_seq);
    {
        let mut fs = lfs.lock();
        fs.create("/runs/after-reconnect.log", SimTime::from_secs(99)).expect("create");
    }
    let mut recovered = Vec::new();
    while recovered.len() < 26 {
        match reconnected.next_timeout(Duration::from_secs(5)) {
            Some(event) => recovered.push(event),
            None => panic!("stalled after {} recovered events", recovered.len()),
        }
    }
    let stats = reconnected.stats();
    println!(
        "reconnected consumer delivered {} events in order: {} from the store, {} live, {} lost",
        stats.delivered, stats.recovered, stats.live, stats.lost
    );
    assert_eq!(stats.lost, 0, "store retention covered the whole outage");
    assert!(stats.recovered >= 25, "outage events came from the historic API");
    assert_eq!(
        recovered.last().map(|e| e.path.clone()),
        Some(std::path::PathBuf::from("/runs/after-reconnect.log"))
    );

    // The store can also be queried directly (the REST API stand-in).
    let store = cluster.store();
    let recent = store.recent(5);
    println!("last 5 events in the rotating catalog:");
    for sev in recent {
        println!("  seq {:>3}  {}", sev.seq, sev.event.path.display());
    }

    cluster.shutdown();
    println!("event replay complete");
}
