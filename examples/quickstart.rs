//! Quickstart: site-wide event monitoring on a simulated Lustre
//! filesystem, plus a first Ripple rule.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use parking_lot::Mutex;
use sdci::lustre::{LustreConfig, LustreFs};
use sdci::monitor::{MonitorClusterBuilder, MonitorConfig};
use sdci::ripple::{ActionKind, ActionSpec, RippleBuilder, Rule, Trigger};
use sdci::types::{AgentId, EventKind, SimTime};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // ---- Part 1: the scalable Lustre monitor --------------------------
    println!("== Part 1: Lustre ChangeLog monitor ==");
    let lfs = Arc::new(Mutex::new(LustreFs::new(LustreConfig::aws_testbed())));
    let cluster =
        MonitorClusterBuilder::new(Arc::clone(&lfs)).config(MonitorConfig::default()).start();
    let mut feed = cluster.subscribe();

    // Generate some filesystem activity.
    {
        let mut fs = lfs.lock();
        fs.mkdir("/experiment", SimTime::EPOCH).expect("mkdir");
        for i in 0..5 {
            fs.create(format!("/experiment/sample-{i}.dat"), SimTime::from_secs(i))
                .expect("create");
        }
        fs.write("/experiment/sample-0.dat", 4096, SimTime::from_secs(10)).expect("write");
        fs.unlink("/experiment/sample-4.dat", SimTime::from_secs(11)).expect("unlink");
    }

    // Every event arrives on the subscribed feed, path-resolved.
    for _ in 0..8 {
        let event =
            feed.next_timeout(Duration::from_secs(5)).expect("monitor should deliver all 8 events");
        println!("  [{}] {:<8} {}", event.mdt, event.kind.to_string(), event.path.display());
    }
    let stats = cluster.stats();
    println!(
        "  collector extracted={} processed={} cache_hits={}",
        stats.total_extracted(),
        stats.total_processed(),
        stats.collectors[0].cache_hits
    );
    cluster.shutdown();

    // ---- Part 2: a Ripple rule ----------------------------------------
    println!("\n== Part 2: Ripple If-Trigger-Then-Action ==");
    let mut ripple = RippleBuilder::new().build();
    let laptop = ripple.add_local_agent("laptop");

    // "When an image appears in /inbox on my laptop, email me."
    ripple.add_rule(
        Rule::when(
            Trigger::on(AgentId::new("laptop"))
                .under("/inbox")
                .kinds([EventKind::Created])
                .glob("*.png"),
        )
        .then(ActionSpec::email("scientist@example.org")),
    );

    {
        let fs = laptop.fs();
        let mut guard = fs.lock();
        guard.mkdir("/inbox", SimTime::EPOCH).expect("mkdir");
        guard.create("/inbox/plot.png", SimTime::from_secs(1)).expect("create");
        guard.create("/inbox/raw.dat", SimTime::from_secs(2)).expect("create");
    }
    assert!(ripple.pump_until_idle(Duration::from_secs(10)), "fabric should quiesce");

    for record in ripple.execution_log().successes() {
        if let ActionKind::Email { to } = &record.kind {
            println!("  emailed {to} about {}", record.trigger_path.display());
        }
    }
    println!(
        "  agent detected={} filtered_out={} reported={}",
        laptop.stats().detected,
        laptop.stats().filtered_out,
        laptop.stats().reported
    );
    ripple.shutdown();
    println!("\nquickstart complete");
}
