//! Integration tests for the monitor's reliability machinery: overload
//! shedding + store recovery, filtered subscriptions, trace capture and
//! replay, and operational metrics.

use parking_lot::Mutex;
use sdci::lustre::{LustreConfig, LustreFs};
use sdci::monitor::{MetricsRecorder, MonitorClusterBuilder, MonitorConfig};
use sdci::types::SimTime;
use sdci::workloads::{read_trace, replay_trace, write_trace, TraceRecord};
use std::sync::Arc;
use std::time::Duration;

fn t(secs: u64) -> SimTime {
    SimTime::from_secs(secs)
}

#[test]
fn slow_consumer_recovers_hwm_losses_from_store() {
    // A tiny publish HWM forces the live feed to shed events for a
    // consumer that doesn't drain; the store backfills every loss.
    let config = MonitorConfig { feed_hwm: 8, store_capacity: 100_000, ..MonitorConfig::default() };
    let lfs = Arc::new(Mutex::new(LustreFs::new(LustreConfig::iota_testbed())));
    let cluster = MonitorClusterBuilder::new(Arc::clone(&lfs)).config(config).start();
    let mut lazy = cluster.subscribe();

    let total = 500u64;
    {
        let mut fs = lfs.lock();
        fs.mkdir("/burst", t(0)).expect("mkdir");
        for i in 0..total - 1 {
            fs.create(format!("/burst/f{i}"), t(i)).expect("create");
        }
    }
    assert!(cluster.wait_for_published(total, Duration::from_secs(10)));

    // Only now does the consumer start draining: almost everything was
    // shed at the HWM, and must come back via the store.
    let mut got = 0u64;
    while got < total {
        match lazy.next_timeout(Duration::from_secs(5)) {
            Some(_) => got += 1,
            None => panic!("stalled at {got}/{total}"),
        }
    }
    let stats = lazy.stats();
    assert_eq!(stats.delivered, total);
    assert_eq!(stats.lost, 0, "store retention covered all HWM losses");
    assert!(
        stats.recovered > total / 2,
        "most events should have been shed and recovered (recovered {})",
        stats.recovered
    );
    cluster.shutdown();
}

#[test]
fn bounded_store_under_overload_loses_countably_not_silently() {
    // Store smaller than the shed window: losses are inevitable, but
    // they are *counted*, and delivery stays ordered.
    let config = MonitorConfig { feed_hwm: 4, store_capacity: 50, ..MonitorConfig::default() };
    let lfs = Arc::new(Mutex::new(LustreFs::new(LustreConfig::iota_testbed())));
    let cluster = MonitorClusterBuilder::new(Arc::clone(&lfs)).config(config).start();
    let mut lazy = cluster.subscribe();
    let total = 400u64;
    {
        let mut fs = lfs.lock();
        fs.mkdir("/flood", t(0)).expect("mkdir");
        for i in 0..total - 1 {
            fs.create(format!("/flood/f{i}"), t(i)).expect("create");
        }
    }
    assert!(cluster.wait_for_published(total, Duration::from_secs(10)));

    let mut indices = Vec::new();
    while let Some(ev) = lazy.next_timeout(Duration::from_millis(200)) {
        indices.push(ev.index);
    }
    let stats = lazy.stats();
    assert_eq!(
        stats.delivered + stats.lost,
        total,
        "every event is either delivered or explicitly counted lost"
    );
    assert!(stats.lost > 0, "this scenario must actually lose events");
    // Delivered stream is strictly ordered by changelog index here
    // (single MDT).
    for pair in indices.windows(2) {
        assert!(pair[0] < pair[1]);
    }
    cluster.shutdown();
}

#[test]
fn filtered_subscription_sees_only_its_subtree() {
    let lfs = Arc::new(Mutex::new(LustreFs::new(LustreConfig::aws_testbed())));
    let cluster = MonitorClusterBuilder::new(Arc::clone(&lfs)).start();
    let mut project_feed = cluster.subscribe_under("/projects/alpha");
    {
        let mut fs = lfs.lock();
        fs.mkdir_all("/projects/alpha", t(0)).expect("mkdir");
        fs.mkdir_all("/projects/beta", t(0)).expect("mkdir");
        for i in 0..10 {
            fs.create(format!("/projects/alpha/a{i}"), t(i)).expect("create");
            fs.create(format!("/projects/beta/b{i}"), t(i)).expect("create");
        }
    }
    let mut got = Vec::new();
    // 11 matching events: the mkdir of /projects/alpha + 10 creates.
    while got.len() < 11 {
        match project_feed.next_timeout(Duration::from_secs(5)) {
            Some(ev) => got.push(ev),
            None => panic!("filtered feed stalled at {}", got.len()),
        }
    }
    assert!(got.iter().all(|e| e.path.starts_with("/projects/alpha")));
    assert!(project_feed.stats().filtered_out >= 10, "beta events filtered");
    cluster.shutdown();
}

#[test]
fn captured_trace_replays_into_identical_namespace() {
    // Capture the live monitor's event stream as a trace, replay it into
    // a fresh filesystem, and compare namespaces.
    let lfs = Arc::new(Mutex::new(LustreFs::new(LustreConfig::aws_testbed())));
    let cluster = MonitorClusterBuilder::new(Arc::clone(&lfs)).start();
    let mut feed = cluster.subscribe();
    {
        let mut fs = lfs.lock();
        fs.mkdir("/w", t(0)).expect("mkdir");
        for i in 0..30u64 {
            let p = format!("/w/f{i}");
            fs.create(&p, t(i + 1)).expect("create");
            if i % 3 == 0 {
                fs.write(&p, 512, t(i + 2)).expect("write");
            }
            if i % 5 == 0 {
                fs.unlink(&p, t(i + 3)).expect("unlink");
            }
        }
    }
    let total = lfs.lock().total_events();
    let mut trace = Vec::new();
    for _ in 0..total {
        let event = feed.next_timeout(Duration::from_secs(5)).expect("event");
        if let Some(record) = TraceRecord::from_event(&event) {
            trace.push(record);
        }
    }
    cluster.shutdown();

    // Serialize through NDJSON to prove the wire format carries it.
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace).expect("write trace");
    let loaded = read_trace(&buf[..]).expect("read trace");

    let mut replica = LustreFs::new(LustreConfig::aws_testbed());
    replay_trace(&mut replica, &loaded).expect("replay");

    let original: Vec<_> = lfs.lock().fs().walk().into_iter().map(|(p, s)| (p, s.size)).collect();
    let replayed: Vec<_> = replica.fs().walk().into_iter().map(|(p, s)| (p, s.size)).collect();
    assert_eq!(original.len(), replayed.len());
    for ((p1, _), (p2, _)) in original.iter().zip(&replayed) {
        assert_eq!(p1, p2, "namespaces diverge");
    }
}

#[test]
fn aggregator_restarts_from_snapshot_without_losing_history() {
    use sdci::monitor::EventStore;

    let lfs = Arc::new(Mutex::new(LustreFs::new(LustreConfig::aws_testbed())));

    // First incarnation: ingest 30 events, snapshot the store, note the
    // consumer's position, then crash (shutdown).
    let snapshot;
    let resume_seq;
    {
        let cluster = MonitorClusterBuilder::new(Arc::clone(&lfs)).start();
        let mut consumer = cluster.subscribe();
        {
            let mut fs = lfs.lock();
            fs.mkdir("/persist", t(0)).expect("mkdir");
            for i in 0..29 {
                fs.create(format!("/persist/f{i}"), t(i)).expect("create");
            }
        }
        for _ in 0..20 {
            consumer.next_timeout(Duration::from_secs(5)).expect("pre-crash event");
        }
        resume_seq = consumer.next_seq() - 1;
        assert!(cluster.wait_for_published(30, Duration::from_secs(5)));
        let mut buf = Vec::new();
        cluster.store().snapshot_to(&mut buf).expect("snapshot");
        snapshot = buf;
        cluster.shutdown();
    }

    // Second incarnation: restore the store; new events continue the
    // sequence; the old consumer resumes from where it was.
    let store = EventStore::restore_from(&snapshot[..], 100_000).expect("restore");
    assert_eq!(store.last_seq(), 30);
    let cluster = MonitorClusterBuilder::new(Arc::clone(&lfs)).restore_store(store).start();
    let mut resumed = cluster.subscribe_from(resume_seq);
    {
        let mut fs = lfs.lock();
        for i in 29..40 {
            fs.create(format!("/persist/f{i}"), t(100 + i)).expect("create");
        }
    }
    // 10 pre-crash events it never saw + 11 post-restart events.
    let mut got = Vec::new();
    while got.len() < 21 {
        match resumed.next_timeout(Duration::from_secs(5)) {
            Some(ev) => got.push(ev),
            None => panic!("stalled at {} after restart", got.len()),
        }
    }
    assert_eq!(resumed.stats().lost, 0, "no events lost across the restart");
    assert!(resumed.stats().recovered >= 10, "pre-crash tail came from the snapshot");
    assert_eq!(got.last().unwrap().path, std::path::PathBuf::from("/persist/f39"));
    // Global sequence numbers continued (30 pre-crash + 11 new).
    assert_eq!(cluster.store().last_seq(), 41);
    cluster.shutdown();
}

#[test]
fn metrics_recorder_tracks_live_cluster() {
    let lfs = Arc::new(Mutex::new(LustreFs::new(LustreConfig::aws_testbed())));
    let cluster = MonitorClusterBuilder::new(Arc::clone(&lfs)).start();
    let mut recorder = MetricsRecorder::new();
    recorder.record(cluster.stats());
    {
        let mut fs = lfs.lock();
        fs.mkdir("/m", t(0)).expect("mkdir");
        for i in 0..200 {
            fs.create(format!("/m/f{i}"), t(i)).expect("create");
        }
    }
    assert!(cluster.wait_for_published(201, Duration::from_secs(10)));
    recorder.record(cluster.stats());
    let rates = recorder.latest_rates().expect("two samples");
    assert!(rates.process_rate.per_sec() > 0.0);
    assert_eq!(rates.resolution_failures, 0);
    assert!(
        recorder.cache_hit_rate() > 0.9,
        "200 siblings should be nearly all cache hits, got {}",
        recorder.cache_hit_rate()
    );
    cluster.shutdown();
}
