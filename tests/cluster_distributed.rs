//! End-to-end tests of the *sharded* monitor tier: per-shard `sdcimon
//! shard` processes, a `front` serving the shard map plus the
//! scatter-gather store RPC, and collectors routing per event with
//! `--cluster`. Asserts the tentpole guarantees: exactly-once delivery
//! across shards, scatter-gather equivalence with a single-aggregator
//! baseline, degraded-but-answered queries when a shard dies, and live
//! re-routing after a shard-map version bump.
//!
//! Children are managed strictly through [`std::process::Child`]
//! handles (never `pkill`), so a crashed test cannot take unrelated
//! processes down with it.

use sdci::monitor::{ShardMap, StoreQuery, StoreReader};
use sdci::net::{add_shard, fetch_map, NetConfig, RemoteStore};
use sdci::types::Fid;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_sdcimon");

/// Events one collector run emits: one mkdir plus `--files` creates.
const EVENTS_PER_COLLECTOR: usize = 101;

/// A child process that is SIGKILLed when the test panics.
struct Reaped(Option<Child>);

impl Reaped {
    fn child(&mut self) -> &mut Child {
        self.0.as_mut().expect("child already consumed")
    }
}

impl Drop for Reaped {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn(args: &[&str]) -> Reaped {
    let child = Command::new(BIN)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn sdcimon");
    Reaped(Some(child))
}

/// Reads a role's readiness line and returns its base address.
fn wait_for_listen_addr(role: &mut Reaped) -> String {
    let stdout = role.child().stdout.take().expect("role stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    for line in &mut lines {
        let line = line.expect("read role stdout");
        if let Some(rest) = line.split("listening on ").nth(1) {
            let addr = rest.split_whitespace().next().expect("addr token");
            // Keep draining stdout in the background so the child can
            // never block on a full pipe.
            std::thread::spawn(move || for _ in lines {});
            return addr.to_string();
        }
    }
    panic!("role exited without printing a readiness line");
}

/// Scrapes a role's Prometheus endpoint (base port + 3).
fn scrape_metrics(base_addr: &str) -> String {
    use std::io::{Read, Write};
    let base: SocketAddr = base_addr.parse().expect("base addr");
    let metrics_addr = SocketAddr::new(base.ip(), base.port() + 3);
    let mut stream = std::net::TcpStream::connect(metrics_addr).expect("connect metrics endpoint");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: sdci\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read metrics response");
    assert!(response.starts_with("HTTP/1.1 200"), "unexpected scrape status: {response}");
    let body_at = response.find("\r\n\r\n").expect("header/body separator") + 4;
    response[body_at..].to_string()
}

/// Polls a role's scrape endpoint until `needle` appears in the body
/// (metrics sampled on a periodic tick can lag the pipeline), panicking
/// with the last body after ten seconds.
fn scrape_until(base_addr: &str, needle: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let body = scrape_metrics(base_addr);
        if body.contains(needle) {
            return body;
        }
        assert!(Instant::now() < deadline, "never scraped {needle:?}; last body:\n{body}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Runs one collector to completion, returning its stdout.
fn run_collector(mode: &str, addr: &str, client: &str) -> String {
    let out = Command::new(BIN)
        .args(["collector", mode, addr, "--client", client, "--files", "100"])
        .output()
        .expect("run collector");
    assert!(
        out.status.success(),
        "collector {client} failed: {:?}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Two client names whose path roots land on *different* shards of a
/// two-shard map — routing is by path-root hash, so this only depends
/// on the root string and the shard count.
fn split_clients() -> (String, String) {
    let map = ShardMap::new(["127.0.0.1:1", "127.0.0.1:2"]);
    let fid = Fid::new(1, 1, 0);
    let owner = |name: &str| map.route(Path::new(&format!("/{name}")), fid).id;
    let first = (0..32).map(|i| format!("c{i}")).find(|n| owner(n) == 0).expect("a shard-0 root");
    let second = (0..32).map(|i| format!("c{i}")).find(|n| owner(n) == 1).expect("a shard-1 root");
    (first, second)
}

/// Polls the store RPC at `base+2` until at least `min` events are
/// visible (ingest is async behind the push-leg ack) or the deadline
/// passes, returning the final result.
fn query_store(base_addr: &str, min: usize, timeout: Duration) -> Vec<(u64, PathBuf)> {
    let base: SocketAddr = base_addr.parse().expect("base addr");
    let store_addr = SocketAddr::new(base.ip(), base.port() + 2);
    let remote = RemoteStore::connect(store_addr, NetConfig::default());
    let deadline = Instant::now() + timeout;
    loop {
        let events = remote.query(&StoreQuery::after_seq(0));
        if events.len() >= min || Instant::now() >= deadline {
            return events.into_iter().map(|e| (e.seq, e.event.path)).collect();
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// The paths one collector's workload creates, in creation order.
fn expected_paths(client: &str) -> Vec<PathBuf> {
    std::iter::once(PathBuf::from(format!("/{client}")))
        .chain((0..100).map(|i| PathBuf::from(format!("/{client}/f{i}"))))
        .collect()
}

/// Asserts `events` holds each of `clients`' workloads exactly once,
/// in non-decreasing merged seq order with per-client creation order
/// preserved.
fn assert_scattered_exactly_once(events: &[(u64, PathBuf)], clients: &[&str]) {
    let mut counts: BTreeMap<&PathBuf, usize> = BTreeMap::new();
    for (_, path) in events {
        *counts.entry(path).or_default() += 1;
    }
    assert!(counts.values().all(|&n| n == 1), "duplicated events in the scatter result");
    assert_eq!(events.len(), clients.len() * EVENTS_PER_COLLECTOR, "missing events");
    assert!(
        events.windows(2).all(|w| w[0].0 <= w[1].0),
        "merged result is not seq-ordered: {events:?}"
    );
    for client in clients {
        let got: Vec<&PathBuf> = events
            .iter()
            .filter(|(_, p)| p.starts_with(format!("/{client}")))
            .map(|(_, p)| p)
            .collect();
        let want = expected_paths(client);
        assert_eq!(got, want.iter().collect::<Vec<_>>(), "client {client} order broken");
    }
}

#[test]
fn two_shard_pipeline_is_exactly_once_and_matches_the_single_store_baseline() {
    let mut shard0 = spawn(&["shard", "--shard-id", "0", "--bind", "127.0.0.1:0"]);
    let mut shard1 = spawn(&["shard", "--shard-id", "1", "--bind", "127.0.0.1:0"]);
    let addr0 = wait_for_listen_addr(&mut shard0);
    let addr1 = wait_for_listen_addr(&mut shard1);
    let shards = format!("{addr0},{addr1}");
    let mut front = spawn(&["front", "--bind", "127.0.0.1:0", "--shards", &shards]);
    let front_addr = wait_for_listen_addr(&mut front);

    // One collector per shard: the two roots hash to different owners,
    // so the scatter below genuinely merges two shards.
    let (c_zero, c_one) = split_clients();
    let out0 = run_collector("--cluster", &front_addr, &c_zero);
    let out1 = run_collector("--cluster", &front_addr, &c_one);
    assert!(out0.contains("drained: true"), "collector {c_zero} not drained:\n{out0}");
    assert!(out1.contains("drained: true"), "collector {c_one} not drained:\n{out1}");
    // The routing tallies prove single-shard affinity per root.
    assert!(
        out0.contains(&format!("s0={EVENTS_PER_COLLECTOR} s1=0")),
        "{c_zero} should route everything to shard 0:\n{out0}"
    );
    assert!(
        out1.contains(&format!("s0=0 s1={EVENTS_PER_COLLECTOR}")),
        "{c_one} should route everything to shard 1:\n{out1}"
    );

    let scattered = query_store(&front_addr, 2 * EVENTS_PER_COLLECTOR, Duration::from_secs(30));
    assert_scattered_exactly_once(&scattered, &[&c_zero, &c_one]);

    // Baseline: the same workload through one aggregator must yield the
    // same result set, and both must be seq-ordered (per-shard seq
    // spaces are independent, so only the *set* and per-client order
    // are comparable — and that is the contract RemoteStore consumers
    // rely on).
    let mut agg = spawn(&["aggregator", "--bind", "127.0.0.1:0"]);
    let agg_addr = wait_for_listen_addr(&mut agg);
    run_collector("--connect", &agg_addr, &c_zero);
    run_collector("--connect", &agg_addr, &c_one);
    let baseline = query_store(&agg_addr, 2 * EVENTS_PER_COLLECTOR, Duration::from_secs(30));
    assert_scattered_exactly_once(&baseline, &[&c_zero, &c_one]);
    let set = |evs: &[(u64, PathBuf)]| {
        evs.iter().map(|(_, p)| p.clone()).collect::<std::collections::BTreeSet<_>>()
    };
    assert_eq!(
        set(&scattered),
        set(&baseline),
        "scatter-gather result set differs from the single-store baseline"
    );

    // Per-shard series from the shard processes themselves. The shard
    // samples its store every 200ms, so poll: the pipeline can finish
    // well inside the first tick.
    scrape_until(&addr0, "sdci_shard_ingest_total{shard=\"0\"} 101");

    // Kill shard 1: the scatter query degrades but still answers with
    // shard 0's events, and the front attributes the failure.
    shard1.child().kill().expect("kill shard 1");
    shard1.child().wait().expect("reap shard 1");
    let degraded = query_store(&front_addr, EVENTS_PER_COLLECTOR, Duration::from_secs(30));
    assert_eq!(
        degraded.len(),
        EVENTS_PER_COLLECTOR,
        "the live shard's events must still be answered"
    );
    assert!(
        degraded.iter().all(|(_, p)| p.starts_with(format!("/{c_zero}"))),
        "degraded answer must hold exactly the live shard's events"
    );
    let front_metrics = scrape_metrics(&front_addr);
    let degraded_total = front_metrics
        .lines()
        .find_map(|l| l.strip_prefix("sdci_cluster_degraded_queries_total "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .expect("degraded-query counter exported");
    assert!(degraded_total >= 1, "degraded queries must be counted:\n{front_metrics}");
    let shard1_errors = front_metrics
        .lines()
        .find_map(|l| l.strip_prefix("sdci_cluster_shard_query_errors_total{shard=\"1\"} "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .expect("per-shard error counter exported");
    assert!(shard1_errors >= 1, "shard 1's failed legs must be attributed:\n{front_metrics}");
}

#[test]
fn adding_a_shard_bumps_the_map_and_reroutes_new_collectors() {
    let mut shard0 = spawn(&["shard", "--shard-id", "0", "--bind", "127.0.0.1:0"]);
    let addr0 = wait_for_listen_addr(&mut shard0);
    let mut front = spawn(&["front", "--bind", "127.0.0.1:0", "--shards", &addr0]);
    let front_addr = wait_for_listen_addr(&mut front);
    let front_sock: SocketAddr = front_addr.parse().expect("front addr");
    let cfg = NetConfig::default();

    // With one shard, everything routes to it.
    let (c_zero, c_one) = split_clients();
    let out0 = run_collector("--cluster", &front_addr, &c_zero);
    assert!(out0.contains("over map v1"), "first collector should route by v1:\n{out0}");

    // Grow the tier: a second shard joins, the front bumps the map, and
    // the scatter re-fans. Collectors starting afterwards route by v2.
    let mut shard1 = spawn(&["shard", "--shard-id", "1", "--bind", "127.0.0.1:0"]);
    let addr1 = wait_for_listen_addr(&mut shard1);
    let bumped = add_shard(front_sock, &addr1, &cfg).expect("add shard");
    assert_eq!(bumped.version(), 2);
    assert_eq!(fetch_map(front_sock, &cfg).expect("fetch map").version(), 2);

    let out1 = run_collector("--cluster", &front_addr, &c_one);
    assert!(out1.contains("over map v2"), "second collector should route by v2:\n{out1}");
    assert!(
        out1.contains(&format!("s0=0 s1={EVENTS_PER_COLLECTOR}")),
        "{c_one} should route everything to the new shard:\n{out1}"
    );

    // The scatter sees both shards' stores through one logical query.
    let merged = query_store(&front_addr, 2 * EVENTS_PER_COLLECTOR, Duration::from_secs(30));
    assert_scattered_exactly_once(&merged, &[&c_zero, &c_one]);
}
