//! End-to-end tests of the distributed monitor: three `sdcimon` OS
//! processes (collector → aggregator → consumer) wired over sdci-net's
//! TCP transport, plus the §5.2 fault story — kill the aggregator
//! mid-run and verify the collector's resend and the snapshot restore
//! hand every event to the consumer exactly once.
//!
//! Children are managed strictly through [`std::process::Child`]
//! handles (never `pkill`), so a crashed test cannot take unrelated
//! processes down with it.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_sdcimon");

/// Events one collector run emits: one mkdir plus `--files` creates.
const EVENTS_PER_COLLECTOR: usize = 101;

/// A child process that is SIGKILLed when the test panics.
struct Reaped(Option<Child>);

impl Reaped {
    fn child(&mut self) -> &mut Child {
        self.0.as_mut().expect("child already consumed")
    }

    /// Hands the child back for `wait_with_output`, disarming the reaper.
    fn into_child(mut self) -> Child {
        self.0.take().expect("child already consumed")
    }
}

impl Drop for Reaped {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn(args: &[&str]) -> Reaped {
    let child = Command::new(BIN)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn sdcimon");
    Reaped(Some(child))
}

/// Reads the aggregator's readiness line and returns the events address.
///
/// The line looks like:
/// `sdcimon aggregator listening on 127.0.0.1:40089 (feed ..., store ..., metrics ...)`
fn wait_for_listen_addr(agg: &mut Reaped) -> String {
    let stdout = agg.child().stdout.take().expect("aggregator stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    for line in &mut lines {
        let line = line.expect("read aggregator stdout");
        if let Some(rest) = line.split("listening on ").nth(1) {
            let addr = rest.split_whitespace().next().expect("addr token");
            // Keep draining stdout in the background so the child can
            // never block on a full pipe.
            std::thread::spawn(move || for _ in lines {});
            return addr.to_string();
        }
    }
    panic!("aggregator exited without printing a readiness line");
}

/// Scrapes the aggregator's Prometheus endpoint (events port + 3) and
/// returns the response body.
fn scrape_metrics(events_addr: &str) -> String {
    use std::io::{Read, Write};
    let base: std::net::SocketAddr = events_addr.parse().expect("events addr");
    let metrics_addr = std::net::SocketAddr::new(base.ip(), base.port() + 3);
    let mut stream = std::net::TcpStream::connect(metrics_addr).expect("connect metrics endpoint");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: sdci\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read metrics response");
    assert!(response.starts_with("HTTP/1.1 200"), "unexpected scrape status: {response}");
    let body_at = response.find("\r\n\r\n").expect("header/body separator") + 4;
    response[body_at..].to_string()
}

fn run_collector(addr: &str, client: &str) {
    let status = Command::new(BIN)
        .args(["collector", "--connect", addr, "--client", client, "--files", "100"])
        .status()
        .expect("run collector");
    assert!(status.success(), "collector {client} failed: {status:?}");
}

/// Asserts the per-client `event` lines are path-resolved and arrive in
/// creation order, and returns how many event lines were seen in total.
fn check_consumer_output(out: &str, clients: &[&str]) -> usize {
    for client in clients {
        let prefix = format!("/{client}/f");
        let indices: Vec<usize> = out
            .lines()
            .filter_map(|l| l.strip_prefix("event Created ")?.strip_prefix(&prefix)?.parse().ok())
            .collect();
        let expected: Vec<usize> = (0..100).collect();
        assert_eq!(indices, expected, "client {client}: file events out of order or missing");
    }
    out.lines().filter(|l| l.starts_with("event ")).count()
}

#[test]
fn three_processes_deliver_every_event_in_order() {
    let mut agg = spawn(&["aggregator", "--bind", "127.0.0.1:0"]);
    let addr = wait_for_listen_addr(&mut agg);

    let expect = (2 * EVENTS_PER_COLLECTOR).to_string();
    let consumer = spawn(&[
        "consumer",
        "--connect",
        &addr,
        "--verbose",
        "--expect",
        &expect,
        "--timeout",
        "60",
    ]);

    run_collector(&addr, "c1");
    run_collector(&addr, "c2");

    // With the full pipeline warm, the aggregator's scrape endpoint
    // must expose a broad registry (>= 15 series) including an
    // end-to-end latency histogram with real observations.
    let body = scrape_metrics(&addr);
    let series = body.lines().filter(|l| !l.is_empty() && !l.starts_with('#')).count();
    assert!(series >= 15, "expected >= 15 metric series, got {series}:\n{body}");
    let e2e_count = body
        .lines()
        .find_map(|l| l.strip_prefix("sdci_e2e_store_insert_latency_seconds_count "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .expect("e2e store-insert latency histogram exported");
    assert!(e2e_count > 0, "e2e latency histogram has no observations:\n{body}");
    assert!(
        body.contains("sdci_e2e_store_insert_latency_seconds_bucket"),
        "histogram buckets missing:\n{body}"
    );

    let out = consumer.into_child().wait_with_output().expect("wait for consumer");
    assert!(out.status.success(), "consumer failed: {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);

    let events = check_consumer_output(&stdout, &["c1", "c2"]);
    assert_eq!(events, 2 * EVENTS_PER_COLLECTOR, "wrong event count:\n{stdout}");
    let done = stdout.lines().last().unwrap_or_default();
    assert!(done.contains("lost 0"), "consumer reported loss: {done}");
}

#[test]
fn killed_aggregator_restarts_from_snapshot_without_losing_events() {
    let snapshot = std::env::temp_dir().join(format!("sdci-net-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snapshot);
    let snap = snapshot.to_str().expect("utf-8 temp path");

    let mut agg = spawn(&["aggregator", "--bind", "127.0.0.1:0", "--snapshot", snap]);
    let addr = wait_for_listen_addr(&mut agg);

    let expect = (2 * EVENTS_PER_COLLECTOR).to_string();
    let consumer = spawn(&[
        "consumer",
        "--connect",
        &addr,
        "--verbose",
        "--expect",
        &expect,
        "--timeout",
        "120",
    ]);

    run_collector(&addr, "c1");
    // Let the aggregator flush its 200ms-interval snapshot (and the
    // `.marks` dedup sidecar captured right after it) before killing it
    // hard — no graceful shutdown, exactly the §5.2 failure. Waiting
    // past the flush matters: the documented durability window is one
    // snapshot interval, so events acked between the last flush and the
    // kill are allowed to vanish, and this test asserts the stronger
    // "nothing lost" property that holds only for flushed state.
    std::thread::sleep(Duration::from_millis(600));
    agg.child().kill().expect("kill aggregator");
    agg.child().wait().expect("reap aggregator");

    // The second collector starts while the port is dead; its TcpPush
    // retries with backoff until the aggregator returns.
    let mut c2 = Reaped(Some(
        Command::new(BIN)
            .args(["collector", "--connect", &addr, "--client", "c2", "--files", "100"])
            .stdout(Stdio::inherit())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn collector c2"),
    ));
    std::thread::sleep(Duration::from_millis(500));

    let _agg2 = spawn(&["aggregator", "--bind", &addr, "--snapshot", snap]);

    let c2_status = c2.child().wait().expect("wait collector c2");
    assert!(c2_status.success(), "collector c2 failed: {c2_status:?}");

    let out = consumer.into_child().wait_with_output().expect("wait for consumer");
    assert!(out.status.success(), "consumer failed: {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);

    let events = check_consumer_output(&stdout, &["c1", "c2"]);
    assert_eq!(events, 2 * EVENTS_PER_COLLECTOR, "wrong event count:\n{stdout}");
    let done = stdout.lines().last().unwrap_or_default();
    assert!(done.contains("lost 0"), "consumer reported loss: {done}");

    // The snapshot is a directory now: manifest + per-segment files.
    assert!(snapshot.join("MANIFEST.json").is_file(), "snapshot directory has a manifest");

    let _ = std::fs::remove_dir_all(&snapshot);
}

#[test]
fn legacy_single_file_snapshot_is_restored_and_migrated() {
    // Seed a legacy-deployment snapshot: the single-file NDJSON form the
    // pre-segmented aggregator wrote. Build it from a real store so the
    // line format is exactly what an old deployment left behind.
    let snapshot =
        std::env::temp_dir().join(format!("sdci-net-legacy-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&snapshot);
    let _ = std::fs::remove_dir_all(&snapshot);
    {
        use sdci::monitor::{EventStore, SequencedEvent};
        use sdci::types::{ChangelogKind, EventKind, Fid, FileEvent, MdtIndex, SimTime};
        let store = EventStore::new(1000);
        for i in 1..=25u64 {
            store
                .insert(SequencedEvent {
                    seq: i,
                    event: FileEvent {
                        index: i,
                        mdt: MdtIndex::new(0),
                        changelog_kind: ChangelogKind::Create,
                        kind: EventKind::Created,
                        time: SimTime::from_secs(i),
                        path: format!("/old/f{i}").into(),
                        src_path: None,
                        target: Fid::new(1, i as u32, 0),
                        is_dir: false,
                        extracted_unix_ns: None,
                        trace: None,
                    },
                })
                .unwrap();
        }
        let mut buf = Vec::new();
        store.snapshot_to(&mut buf).expect("serialize legacy snapshot");
        std::fs::write(&snapshot, buf).expect("write legacy snapshot");
    }
    let snap = snapshot.to_str().expect("utf-8 temp path");

    let mut agg = spawn(&["aggregator", "--bind", "127.0.0.1:0", "--snapshot", snap]);
    let addr = wait_for_listen_addr(&mut agg);

    // The restored 25 events arrive via backfill, the fresh collector's
    // events via the live feed — sequence numbering continues across the
    // restart, so the consumer sees one dense stream.
    let expect = (25 + EVENTS_PER_COLLECTOR).to_string();
    let consumer = spawn(&[
        "consumer",
        "--connect",
        &addr,
        "--verbose",
        "--expect",
        &expect,
        "--timeout",
        "60",
    ]);
    run_collector(&addr, "c1");

    let out = consumer.into_child().wait_with_output().expect("wait for consumer");
    assert!(out.status.success(), "consumer failed: {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let events = check_consumer_output(&stdout, &["c1"]);
    assert_eq!(events, 25 + EVENTS_PER_COLLECTOR, "wrong event count:\n{stdout}");
    for i in 1..=25 {
        assert!(stdout.contains(&format!("/old/f{i}")), "legacy event /old/f{i} missing from feed");
    }
    let done = stdout.lines().last().unwrap_or_default();
    assert!(done.contains("lost 0"), "consumer reported loss: {done}");

    // The legacy file was migrated in place to the directory form.
    assert!(snapshot.is_dir(), "legacy snapshot migrated to a directory");
    assert!(snapshot.join("MANIFEST.json").is_file(), "migrated snapshot has a manifest");

    let _ = std::fs::remove_dir_all(&snapshot);
}
