//! Cross-crate integration tests: the full monitor + Ripple fabric over
//! the simulated Lustre deployment.

use parking_lot::Mutex;
use sdci::lustre::{DnePolicy, LustreConfig, LustreFs};
use sdci::monitor::MonitorClusterBuilder;
use sdci::ripple::{
    ActionKind, ActionSpec, AgentStorage, MonitorSource, RippleBuilder, Rule, Trigger,
};
use sdci::types::{AgentId, EventKind, MdtIndex, SimTime};
use sdci::workloads::{EventGenerator, OpMix};
use std::sync::Arc;
use std::time::Duration;

fn t(secs: u64) -> SimTime {
    SimTime::from_secs(secs)
}

#[test]
fn monitor_delivers_complete_ordered_stream_under_mixed_load() {
    let lfs = Arc::new(Mutex::new(LustreFs::new(LustreConfig::iota_testbed())));
    let cluster = MonitorClusterBuilder::new(Arc::clone(&lfs)).start();
    let mut feed = cluster.subscribe();

    let mut generator =
        EventGenerator::new(Arc::clone(&lfs), 8, OpMix::paper(), 99).expect("generator");
    let mut tick = 0u64;
    let report = generator
        .run(2_000, || {
            tick += 1;
            SimTime::from_nanos(tick * 1_000)
        })
        .expect("workload");
    assert_eq!(report.total_ops(), 2_000);
    // Plus the directories the generator created up front (/gen + 8).
    let total = lfs.lock().total_events();
    assert_eq!(total, report.events + 9);

    let mut received = 0u64;
    let mut last_seq = 0u64;
    while received < total {
        match feed.next_timeout(Duration::from_secs(10)) {
            Some(_event) => {
                received += 1;
                let seq = feed.next_seq() - 1;
                assert!(seq > last_seq, "sequence numbers strictly increase");
                last_seq = seq;
            }
            None => panic!("feed stalled at {received}/{total}"),
        }
    }
    assert_eq!(feed.stats().lost, 0);
    let stats = cluster.stats();
    assert_eq!(stats.total_processed(), total);
    assert_eq!(stats.aggregator.published, total);
    cluster.shutdown();
}

#[test]
fn multi_mdt_monitor_sees_every_mdt_and_purges_all_changelogs() {
    let lfs = Arc::new(Mutex::new(LustreFs::new(
        LustreConfig::builder("dne").mdt_count(4).dne_policy(DnePolicy::RoundRobinTopLevel).build(),
    )));
    let cluster = MonitorClusterBuilder::new(Arc::clone(&lfs)).start();
    {
        let mut fs = lfs.lock();
        for d in 0..12 {
            fs.mkdir(format!("/proj{d}"), t(0)).expect("mkdir");
            for f in 0..25 {
                fs.create(format!("/proj{d}/f{f}"), t(1)).expect("create");
            }
        }
    }
    let total = lfs.lock().total_events();
    assert_eq!(total, 12 + 12 * 25);
    assert!(cluster.wait_for_published(total, Duration::from_secs(10)));
    let stats = cluster.stats();
    for (i, c) in stats.collectors.iter().enumerate() {
        assert!(c.processed > 0, "collector {i} idle: {c:?}");
    }
    cluster.shutdown();
    let fs = lfs.lock();
    for m in 0..4 {
        assert!(fs.changelog(MdtIndex::new(m)).is_empty(), "MDT{m} changelog purged on shutdown");
    }
}

#[test]
fn lustre_backed_ripple_agent_runs_site_wide_rules() {
    let lfs = Arc::new(Mutex::new(LustreFs::new(LustreConfig::iota_testbed())));
    let cluster = MonitorClusterBuilder::new(Arc::clone(&lfs)).start();
    let mut ripple = RippleBuilder::new().build();
    ripple.add_agent(
        AgentId::new("hpc"),
        AgentStorage::Lustre(Arc::clone(&lfs)),
        MonitorSource::new(cluster.subscribe()),
    );
    ripple.add_rule(
        Rule::when(
            Trigger::on(AgentId::new("hpc")).under("/").kinds([EventKind::Created]).glob("*.core"),
        )
        .then(ActionSpec::purge()),
    );
    {
        let mut fs = lfs.lock();
        fs.mkdir_all("/a/b/c", t(0)).expect("mkdir");
        fs.create("/a/b/c/app.core", t(1)).expect("create");
        fs.create("/a/b/c/app.out", t(1)).expect("create");
        fs.create("/crash.core", t(2)).expect("create");
    }
    assert!(ripple.pump_until_idle(Duration::from_secs(20)));
    {
        let fs = lfs.lock();
        assert!(!fs.fs().exists("/a/b/c/app.core"));
        assert!(!fs.fs().exists("/crash.core"));
        assert!(fs.fs().exists("/a/b/c/app.out"));
    }
    ripple.shutdown();
    cluster.shutdown();
}

#[test]
fn mixed_fleet_local_and_lustre_agents_interoperate() {
    // A laptop (inotify) and a Lustre system (ChangeLog monitor) in one
    // fabric: files on Lustre replicate down to the laptop.
    let lfs = Arc::new(Mutex::new(LustreFs::new(LustreConfig::aws_testbed())));
    let cluster = MonitorClusterBuilder::new(Arc::clone(&lfs)).start();
    let mut ripple = RippleBuilder::new().build();
    let laptop = ripple.add_local_agent("laptop");
    ripple.add_agent(
        AgentId::new("lustre"),
        AgentStorage::Lustre(Arc::clone(&lfs)),
        MonitorSource::new(cluster.subscribe()),
    );
    ripple.add_rule(
        Rule::when(
            Trigger::on(AgentId::new("lustre"))
                .under("/published")
                .kinds([EventKind::Created])
                .glob("*.pdf"),
        )
        .then(ActionSpec::transfer(AgentId::new("laptop"), "/papers")),
    );
    {
        let mut fs = lfs.lock();
        fs.mkdir("/published", t(0)).expect("mkdir");
        fs.create("/published/monitor.pdf", t(1)).expect("create");
        fs.write("/published/monitor.pdf", 123_456, t(1)).expect("write");
    }
    assert!(ripple.pump_until_idle(Duration::from_secs(20)));
    let fs = laptop.fs();
    let stat = fs.lock().stat("/papers/monitor.pdf").expect("replicated file");
    assert_eq!(stat.size, 123_456);
    ripple.shutdown();
    cluster.shutdown();
}

#[test]
fn monitor_feed_and_robinhood_scanner_coexist_as_changelog_users() {
    // Both the paper's monitor and a Robinhood-style scanner register as
    // ChangeLog users; purging respects the slower of the two.
    let lfs = Arc::new(Mutex::new(LustreFs::new(LustreConfig::aws_testbed())));
    let mut scanner = sdci::baselines::RobinhoodScanner::new(Arc::clone(&lfs), 64);
    let cluster = MonitorClusterBuilder::new(Arc::clone(&lfs)).start();
    {
        let mut fs = lfs.lock();
        fs.mkdir("/shared", t(0)).expect("mkdir");
        for i in 0..50 {
            fs.create(format!("/shared/f{i}"), t(i)).expect("create");
        }
    }
    assert!(cluster.wait_for_published(51, Duration::from_secs(10)));
    // The monitor acked everything, but the scanner hasn't run: records
    // must still be available to it.
    let applied = scanner.scan_once();
    assert_eq!(applied, 51, "slow consumer still sees all records");
    assert_eq!(scanner.db().len(), 51);
    cluster.shutdown();
}

#[test]
fn ripple_survives_transient_failures_and_executes_exactly_once_per_event() {
    let mut ripple = RippleBuilder::new().report_fail_prob(0.3).seed(123).build();
    let agent = ripple.add_local_agent("node");
    ripple.add_rule(
        Rule::when(
            Trigger::on(AgentId::new("node")).under("/w").kinds([EventKind::Created]).glob("*.dat"),
        )
        .then(ActionSpec::email("ops@example.org")),
    );
    {
        let fs = agent.fs();
        let mut guard = fs.lock();
        guard.mkdir("/w", t(0)).expect("mkdir");
        for i in 0..40 {
            guard.create(format!("/w/f{i}.dat"), t(i)).expect("create");
        }
    }
    assert!(ripple.pump_until_idle(Duration::from_secs(30)));
    let emails =
        ripple.execution_log().successes_where(|r| matches!(r.kind, ActionKind::Email { .. }));
    assert_eq!(emails.len(), 40, "each event fires exactly one action");
    assert!(ripple.cloud_stats().rejected > 0, "failures were actually injected");
    ripple.shutdown();
}
