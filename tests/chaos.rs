//! Chaos harness: the three-OS-process pipeline under deterministic,
//! seed-reproducible fault schedules.
//!
//! Faults ride on the collector→aggregator push leg only (dropped,
//! duplicated, truncated, delayed frames on the pusher's sockets): the
//! push protocol is the lossless leg, so the invariant under chaos is
//! strict — every event delivered exactly once, in order, with the
//! aggregator's received/stored/published counters all agreeing. The
//! consumer's feed and backfill legs stay clean because a faulted
//! backfill reply is *allowed* to surface as loss (`EventConsumer`
//! counts an event lost once backfill cannot produce it); the chaos
//! the consumer must absorb is the aggregator dying, covered below by
//! a crash-point abort in the middle of a snapshot flush.
//!
//! Every schedule is reproducible: the seed is printed, and replaying
//! it is `sdcimon collector --faults "<printed spec>"` against a clean
//! aggregator. Children are managed strictly through
//! [`std::process::Child`] handles, so a crashed test cannot take
//! unrelated processes down with it.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_sdcimon");

/// Events one collector run emits: one mkdir plus `--files` creates.
const EVENTS_PER_COLLECTOR: usize = 101;

/// The push-leg schedule: aggressive enough that every seed injects
/// dozens of faults across a 101-event run, mild enough that the
/// bounded-retry drain (60 s) always converges.
fn chaos_spec(seed: u64) -> String {
    format!("seed={seed},drop=0.08,dup=0.06,trunc=0.04,delay=0.05:1ms")
}

/// A child process that is SIGKILLed when the test panics.
struct Reaped(Option<Child>);

impl Reaped {
    fn child(&mut self) -> &mut Child {
        self.0.as_mut().expect("child already consumed")
    }

    fn into_child(mut self) -> Child {
        self.0.take().expect("child already consumed")
    }
}

impl Drop for Reaped {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn_env(args: &[&str], envs: &[(&str, &str)]) -> Reaped {
    let mut cmd = Command::new(BIN);
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::inherit());
    for (key, value) in envs {
        cmd.env(key, value);
    }
    Reaped(Some(cmd.spawn().expect("spawn sdcimon")))
}

fn wait_for_listen_addr(agg: &mut Reaped) -> String {
    let stdout = agg.child().stdout.take().expect("aggregator stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    for line in &mut lines {
        let line = line.expect("read aggregator stdout");
        if let Some(rest) = line.split("listening on ").nth(1) {
            let addr = rest.split_whitespace().next().expect("addr token");
            std::thread::spawn(move || for _ in lines {});
            return addr.to_string();
        }
    }
    panic!("aggregator exited without printing a readiness line");
}

fn scrape_metrics(events_addr: &str) -> String {
    use std::io::{Read, Write};
    let base: std::net::SocketAddr = events_addr.parse().expect("events addr");
    let metrics_addr = std::net::SocketAddr::new(base.ip(), base.port() + 3);
    let mut stream = std::net::TcpStream::connect(metrics_addr).expect("connect metrics endpoint");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: sdci\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read metrics response");
    assert!(response.starts_with("HTTP/1.1 200"), "unexpected scrape status: {response}");
    let body_at = response.find("\r\n\r\n").expect("header/body separator") + 4;
    response[body_at..].to_string()
}

/// Reads one counter from a scrape body; a counter that never fired is
/// absent from the registry and reads as 0.
fn metric_value(body: &str, name: &str) -> u64 {
    let prefix = format!("{name} ");
    body.lines()
        .find_map(|l| l.strip_prefix(&prefix).and_then(|v| v.trim().parse().ok()))
        .unwrap_or(0)
}

/// Runs a collector to completion, its push sockets under `faults`.
fn run_collector(addr: &str, client: &str, faults: Option<&str>) {
    let mut args = vec!["collector", "--connect", addr, "--client", client, "--files", "100"];
    if let Some(spec) = faults {
        args.extend_from_slice(&["--faults", spec]);
    }
    let status = Command::new(BIN).args(&args).status().expect("run collector");
    assert!(status.success(), "collector {client} failed: {status:?}");
}

/// Asserts the per-client `event` lines are path-resolved and arrive in
/// creation order, and returns how many event lines were seen in total.
fn check_consumer_output(out: &str, clients: &[&str]) -> usize {
    for client in clients {
        let prefix = format!("/{client}/f");
        let indices: Vec<usize> = out
            .lines()
            .filter_map(|l| l.strip_prefix("event Created ")?.strip_prefix(&prefix)?.parse().ok())
            .collect();
        let expected: Vec<usize> = (0..100).collect();
        assert_eq!(indices, expected, "client {client}: file events out of order or missing");
    }
    out.lines().filter(|l| l.starts_with("event ")).count()
}

/// Exactly-once delivery under a hostile push leg, across three seeds.
/// Dedup marks, gap rejection, and resend-on-reconnect must absorb
/// every injected drop/duplicate/truncation, and the aggregator's
/// counters must reconcile exactly: received == stored == published ==
/// the number of source events, with zero insert errors.
#[test]
fn faulted_push_legs_deliver_exactly_once_across_seeds() {
    for seed in [11u64, 313, 97031] {
        let spec_c1 = chaos_spec(seed);
        let spec_c2 = chaos_spec(seed + 1);
        println!("chaos schedule: seed {seed} (c1 spec {spec_c1}, c2 spec {spec_c2})");

        let mut agg = spawn_env(&["aggregator", "--bind", "127.0.0.1:0"], &[]);
        let addr = wait_for_listen_addr(&mut agg);
        let expect = (2 * EVENTS_PER_COLLECTOR).to_string();
        let consumer = spawn_env(
            &["consumer", "--connect", &addr, "--verbose", "--expect", &expect, "--timeout", "120"],
            &[],
        );

        run_collector(&addr, "c1", Some(&spec_c1));
        run_collector(&addr, "c2", Some(&spec_c2));

        let out = consumer.into_child().wait_with_output().expect("wait for consumer");
        assert!(out.status.success(), "seed {seed}: consumer failed: {:?}", out.status);
        let stdout = String::from_utf8_lossy(&out.stdout);
        let events = check_consumer_output(&stdout, &["c1", "c2"]);
        assert_eq!(events, 2 * EVENTS_PER_COLLECTOR, "seed {seed}: wrong count:\n{stdout}");
        let done = stdout.lines().last().unwrap_or_default();
        assert!(done.contains("lost 0"), "seed {seed}: consumer reported loss: {done}");

        // Counter reconciliation: the pipeline agrees with itself end to
        // end. A duplicate the dedup marks missed would inflate
        // `received`; a gap the server accepted would show up as a
        // `stored`/`published` shortfall against the consumer's 202.
        let body = scrape_metrics(&addr);
        let received = metric_value(&body, "sdci_aggregator_received_total");
        let stored = metric_value(&body, "sdci_aggregator_stored_total");
        let published = metric_value(&body, "sdci_aggregator_published_total");
        let expected = 2 * EVENTS_PER_COLLECTOR as u64;
        assert_eq!(received, expected, "seed {seed}: duplicate or lost frames reached ingest");
        assert_eq!(stored, expected, "seed {seed}: store insert count drifted");
        assert_eq!(published, expected, "seed {seed}: feed publish count drifted");
        assert_eq!(
            metric_value(&body, "sdci_aggregator_insert_errors_total"),
            0,
            "seed {seed}: ingest halted on a store insert error"
        );
    }
}

/// The mirror image of the faulted-push test: producers are clean, and
/// the randomized schedule rides the *consumer's* legs instead — its
/// feed subscription (dropped/duplicated/truncated `Deliver` frames,
/// killed subscriptions) and its backfill RPC (faulted queries and
/// replies). The feed is lossy by contract, but every feed loss is
/// recoverable from the store, so the end-to-end invariant stays
/// strict: every event delivered exactly once, in order, zero counted
/// loss. This is the schedule that flushed out stale-reply
/// mis-correlation on the store RPC — a duplicated `Batch` reply
/// answering the *next* query's range — which surfaced as phantom loss
/// in the consumer's gap accounting.
#[test]
fn faulted_consumer_legs_still_deliver_exactly_once() {
    for seed in [29u64, 7177] {
        let spec = chaos_spec(seed);
        println!("consumer-leg chaos schedule: seed {seed} (spec {spec})");

        let mut agg = spawn_env(&["aggregator", "--bind", "127.0.0.1:0"], &[]);
        let addr = wait_for_listen_addr(&mut agg);
        let expect = (2 * EVENTS_PER_COLLECTOR).to_string();
        let consumer = spawn_env(
            &[
                "consumer",
                "--connect",
                &addr,
                "--verbose",
                "--expect",
                &expect,
                "--timeout",
                "120",
                "--faults",
                &spec,
            ],
            &[],
        );

        run_collector(&addr, "c1", None);
        run_collector(&addr, "c2", None);

        let out = consumer.into_child().wait_with_output().expect("wait for consumer");
        assert!(out.status.success(), "seed {seed}: consumer failed: {:?}", out.status);
        let stdout = String::from_utf8_lossy(&out.stdout);
        let events = check_consumer_output(&stdout, &["c1", "c2"]);
        assert_eq!(events, 2 * EVENTS_PER_COLLECTOR, "seed {seed}: wrong count:\n{stdout}");
        let done = stdout.lines().last().unwrap_or_default();
        assert!(done.contains("lost 0"), "seed {seed}: consumer reported loss: {done}");

        // The producers ran clean, so the pipeline's own counters must
        // be exact — consumer-side faults must not reflect back into
        // ingest.
        let body = scrape_metrics(&addr);
        let expected = 2 * EVENTS_PER_COLLECTOR as u64;
        assert_eq!(metric_value(&body, "sdci_aggregator_received_total"), expected);
        assert_eq!(metric_value(&body, "sdci_aggregator_stored_total"), expected);
        assert_eq!(metric_value(&body, "sdci_aggregator_published_total"), expected);
    }
}

/// The §5.2 fault story under crash-point injection: the aggregator
/// aborts *between* writing the new head generation and renaming the
/// manifest — the exact window where the pre-versioned-head snapshot
/// layout corrupted itself — and the restarted process must restore
/// every flushed event and hand the consumer a loss-free stream.
///
/// The abort is scheduled on the 25th flush (~5 s in, flushes tick
/// every 200 ms), leaving collector c1 ample room to finish and be
/// covered by a committed flush plus the marks sidecar that follows it.
#[test]
fn aggregator_aborted_mid_manifest_commit_restarts_without_losing_events() {
    let snapshot = std::env::temp_dir().join(format!("sdci-chaos-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snapshot);
    let snap = snapshot.to_str().expect("utf-8 temp path");

    let mut agg = spawn_env(
        &["aggregator", "--bind", "127.0.0.1:0", "--snapshot", snap],
        &[("SDCI_CRASH_POINTS", "store.flush.manifest_commit:25:abort")],
    );
    let addr = wait_for_listen_addr(&mut agg);

    let expect = (2 * EVENTS_PER_COLLECTOR).to_string();
    let consumer = spawn_env(
        &["consumer", "--connect", &addr, "--verbose", "--expect", &expect, "--timeout", "120"],
        &[],
    );

    run_collector(&addr, "c1", Some(&chaos_spec(501)));

    // The armed crash point fires mid-flush and aborts the process; no
    // kill from the test, the injected schedule is the whole fault.
    let status = agg.child().wait().expect("wait for aborted aggregator");
    assert!(!status.success(), "the armed crash point should have aborted the aggregator");

    // The snapshot directory must be restorable *right now*, with the
    // interrupted flush's head generation left orphaned and the prior
    // manifest still the commit point. (Before head files were
    // generation-named, this exact crash left the committed manifest
    // pointing at a disagreeing head — an unrestorable snapshot.)
    let restored = sdci::monitor::restore_snapshot(&snapshot, 1_000_000)
        .expect("snapshot must restore after a mid-commit abort");
    assert_eq!(
        restored.len(),
        EVENTS_PER_COLLECTOR,
        "the committed manifest should cover all of c1's flushed events"
    );

    // The second collector starts into the dead port and retries with
    // backoff until the aggregator returns — under its own fault
    // schedule on top.
    let spec_c2 = chaos_spec(502);
    let mut c2 = Reaped(Some(
        Command::new(BIN)
            .args([
                "collector",
                "--connect",
                &addr,
                "--client",
                "c2",
                "--files",
                "100",
                "--faults",
                &spec_c2,
            ])
            .stdout(Stdio::inherit())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn collector c2"),
    ));
    std::thread::sleep(Duration::from_millis(500));

    let _agg2 = spawn_env(&["aggregator", "--bind", &addr, "--snapshot", snap], &[]);

    let c2_status = c2.child().wait().expect("wait collector c2");
    assert!(c2_status.success(), "collector c2 failed: {c2_status:?}");

    let out = consumer.into_child().wait_with_output().expect("wait for consumer");
    assert!(out.status.success(), "consumer failed: {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let events = check_consumer_output(&stdout, &["c1", "c2"]);
    assert_eq!(events, 2 * EVENTS_PER_COLLECTOR, "wrong event count:\n{stdout}");
    let done = stdout.lines().last().unwrap_or_default();
    assert!(done.contains("lost 0"), "consumer reported loss: {done}");

    assert!(snapshot.join("MANIFEST.json").is_file(), "snapshot directory has a manifest");
    let _ = std::fs::remove_dir_all(&snapshot);
}

/// The store-RPC server killed mid-reply: a crash point aborts the
/// aggregator *after* the query ran server-side but *before* the reply
/// frame is written. The client must surface a clean empty result
/// within its bounded retries (no hang on the dead socket), and an
/// aggregator restarted from the snapshot must answer the exact query
/// the abort killed, in full.
#[test]
fn store_rpc_server_aborted_mid_reply_recovers_on_restart() {
    use sdci::monitor::{StoreQuery, StoreReader};
    use sdci::net::{NetConfig, RemoteStore, RetryPolicy};

    let snapshot = std::env::temp_dir().join(format!("sdci-chaos-reply-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snapshot);
    let snap = snapshot.to_str().expect("utf-8 temp path");

    let mut agg = spawn_env(
        &["aggregator", "--bind", "127.0.0.1:0", "--snapshot", snap],
        &[("SDCI_CRASH_POINTS", "net.store_rpc.reply:1:abort")],
    );
    let addr = wait_for_listen_addr(&mut agg);
    run_collector(&addr, "c1", None);

    // Give the 200 ms flush loop time to commit a snapshot covering
    // every acked event — the abort below takes the whole process.
    std::thread::sleep(Duration::from_millis(1500));

    let base: std::net::SocketAddr = addr.parse().expect("events addr");
    let store_addr = std::net::SocketAddr::new(base.ip(), base.port() + 2);
    let cfg = NetConfig {
        retry: RetryPolicy { base: Duration::from_millis(10), max: Duration::from_millis(100) },
        ..NetConfig::default()
    };
    let remote = RemoteStore::connect(store_addr, cfg);

    // The armed point fires between running the query and writing the
    // reply; the retry redials a process that no longer exists, so the
    // query must come back empty, not wedge the caller.
    let events = remote.query(&StoreQuery::after_seq(0));
    assert!(events.is_empty(), "a reply the abort killed must not deliver events");
    let status = agg.child().wait().expect("wait for aborted aggregator");
    assert!(!status.success(), "the armed crash point should have aborted the aggregator");

    // Restart on the same address from the same snapshot (no crash
    // points this time): the killed query must now be answered in full.
    let _agg2 = spawn_env(&["aggregator", "--bind", &addr, "--snapshot", snap], &[]);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let recovered = loop {
        let events = remote.query(&StoreQuery::after_seq(0));
        if events.len() >= EVENTS_PER_COLLECTOR || std::time::Instant::now() >= deadline {
            break events;
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    assert_eq!(
        recovered.len(),
        EVENTS_PER_COLLECTOR,
        "the restarted aggregator must answer the killed query from its snapshot"
    );
    let _ = std::fs::remove_dir_all(&snapshot);
}

/// The aggregator killed *mid-fanout*: the `net.pubsub.fanout` crash
/// point aborts the process between dequeuing a feed message for a
/// subscriber and writing it to the socket — the exact window where a
/// broker death takes an in-flight delivery with it. The in-flight
/// frame is gone (the lossy feed contract), but nothing the consumer
/// ultimately sees may be: c1's events were flushed before the abort,
/// so after a restart from the snapshot the consumer must recover all
/// of them through backfill and still end at exactly-once, zero-loss
/// delivery.
#[test]
fn aggregator_aborted_mid_fanout_recovers_without_consumer_loss() {
    let snapshot = std::env::temp_dir().join(format!("sdci-chaos-fanout-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snapshot);
    let snap = snapshot.to_str().expect("utf-8 temp path");

    let mut agg = spawn_env(
        &["aggregator", "--bind", "127.0.0.1:0", "--snapshot", snap],
        &[("SDCI_CRASH_POINTS", "net.pubsub.fanout:1:abort")],
    );
    let addr = wait_for_listen_addr(&mut agg);

    // No subscriber is connected yet, so nothing fans out and the armed
    // point stays cold while c1 pushes its events; the flush loop then
    // gets time to commit a snapshot covering all of them.
    run_collector(&addr, "c1", None);
    std::thread::sleep(Duration::from_millis(1500));

    // The consumer subscribes into the armed broker: the first feed
    // message fanned out to it (the idle loop heartbeats every ~20 ms)
    // dies between dequeue and write, taking the aggregator with it.
    let expect = (2 * EVENTS_PER_COLLECTOR).to_string();
    let consumer = spawn_env(
        &["consumer", "--connect", &addr, "--verbose", "--expect", &expect, "--timeout", "120"],
        &[],
    );
    let status = agg.child().wait().expect("wait for fanout-aborted aggregator");
    assert!(!status.success(), "the fanout crash point should have aborted the aggregator");

    // Restart from the snapshot on the same address, then run c2 clean.
    // The consumer's first live event (seq 102+) exposes the gap back
    // to seq 1; backfill against the restored store must close it.
    let _agg2 = spawn_env(&["aggregator", "--bind", &addr, "--snapshot", snap], &[]);
    run_collector(&addr, "c2", None);

    let out = consumer.into_child().wait_with_output().expect("wait for consumer");
    assert!(out.status.success(), "consumer failed: {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let events = check_consumer_output(&stdout, &["c1", "c2"]);
    assert_eq!(events, 2 * EVENTS_PER_COLLECTOR, "wrong event count:\n{stdout}");
    let done = stdout.lines().last().unwrap_or_default();
    assert!(done.contains("lost 0"), "consumer reported loss: {done}");
    let _ = std::fs::remove_dir_all(&snapshot);
}

/// The PUB/SUB server path killed by abort-mode crash points: one
/// aggregator dies greeting a remote publisher, its replacement dies
/// dispatching the first publish, and the third runs clean. The
/// supervised client endpoints (publisher and subscriber both
/// reconnect forever with backoff) must resubscribe across each
/// restart, ending with a message flowing end to end — the feed leg is
/// lossy by contract, so the invariant is recovery, not delivery of
/// the frames each abort swallowed.
#[test]
fn pubsub_server_aborted_on_greet_and_dispatch_recovers_after_restarts() {
    use sdci::monitor::FeedMessage;
    use sdci::mq::transport::Subscribe;
    use sdci::net::{NetConfig, RetryPolicy, TcpPublisher, TcpSubscriber};

    let mut agg = spawn_env(
        &["aggregator", "--bind", "127.0.0.1:0"],
        &[("SDCI_CRASH_POINTS", "net.pubsub.greet:1:abort")],
    );
    let addr = wait_for_listen_addr(&mut agg);
    let base: std::net::SocketAddr = addr.parse().expect("events addr");
    let feed_addr = std::net::SocketAddr::new(base.ip(), base.port() + 1);
    let cfg = NetConfig {
        retry: RetryPolicy { base: Duration::from_millis(10), max: Duration::from_millis(100) },
        heartbeat: Duration::from_millis(20),
        liveness: Duration::from_millis(500),
        ..NetConfig::default()
    };

    // The subscriber rides along through every restart below.
    let subscriber = TcpSubscriber::<FeedMessage>::connect(feed_addr, &["chaos/"], cfg.clone());
    // The publisher's very first connection greets the broker, which
    // aborts before acking — taking the whole aggregator down.
    let publisher = TcpPublisher::<FeedMessage>::connect(feed_addr, cfg.clone());
    let status = agg.child().wait().expect("wait for greet-aborted aggregator");
    assert!(!status.success(), "the greet crash point should have aborted the aggregator");

    // Restart #1, armed to abort on the first publish dispatch instead.
    let mut agg2 = spawn_env(
        &["aggregator", "--bind", &addr],
        &[("SDCI_CRASH_POINTS", "net.pubsub.dispatch:1:abort")],
    );
    wait_for_listen_addr(&mut agg2);
    // Publish until the reconnected session's first dispatched frame
    // fires the point; the fire disarms it, so the child must die.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let status = loop {
        publisher.publish("chaos/x", FeedMessage::Heartbeat { last_seq: 1 });
        if let Some(status) = agg2.child().try_wait().expect("poll dispatch-aborted aggregator") {
            break status;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the dispatch crash point never fired (publisher reconnects: {})",
            publisher.connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(!status.success(), "the dispatch crash point should have aborted the aggregator");

    // Restart #2 runs clean: both supervised endpoints must reconnect
    // and a published message must reach the resubscribed consumer.
    let mut agg3 = spawn_env(&["aggregator", "--bind", &addr], &[]);
    wait_for_listen_addr(&mut agg3);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        publisher.publish("chaos/x", FeedMessage::Heartbeat { last_seq: 2 });
        if let Some(msg) = subscriber.recv_timeout(Duration::from_millis(50)) {
            assert!(msg.topic.starts_with("chaos/"), "unexpected topic {}", msg.topic);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no message flowed after the clean restart (subscriber reconnects: {})",
            subscriber.connections()
        );
    }
    assert!(publisher.connections() >= 2, "the publisher should have reconnected at least once");
}

/// The durable-cursor contract, pinned kill-to-restart: a consumer
/// checkpointing `--cursor` is aborted at the checkpoint boundary (the
/// `consumer.cursor.checkpoint` point fires *after* the event is
/// printed and the cursor saved), and its replacement — same cursor
/// file, no crash schedule — must resume from the checkpointed
/// *sequence*, not from "now". The union of the two runs' event lines
/// must cover every source event exactly once: zero loss, zero
/// duplication, order preserved across the kill.
#[test]
fn killed_consumer_resumes_from_durable_cursor_without_loss_or_duplication() {
    let dir = std::env::temp_dir().join(format!("sdci-chaos-cursor-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create cursor dir");
    let cursor = dir.join("consumer.cursor");
    let cursor_arg = cursor.to_str().expect("utf-8 temp path");

    let mut agg = spawn_env(&["aggregator", "--bind", "127.0.0.1:0"], &[]);
    let addr = wait_for_listen_addr(&mut agg);

    // Run #1 dies on its 40th checkpoint — deterministically 40 events
    // printed, cursor file committed at seq 40 by write-tmp-rename.
    let expect = EVENTS_PER_COLLECTOR.to_string();
    let consumer1 = spawn_env(
        &[
            "consumer",
            "--connect",
            &addr,
            "--verbose",
            "--expect",
            &expect,
            "--timeout",
            "120",
            "--cursor",
            cursor_arg,
        ],
        &[("SDCI_CRASH_POINTS", "consumer.cursor.checkpoint:40:abort")],
    );
    run_collector(&addr, "c1", None);

    let out1 = consumer1.into_child().wait_with_output().expect("wait for aborted consumer");
    assert!(!out1.status.success(), "the armed checkpoint abort should have killed run #1");
    let stdout1 = String::from_utf8_lossy(&out1.stdout);
    let seen1 = stdout1.lines().filter(|l| l.starts_with("event ")).count();
    assert_eq!(seen1, 40, "run #1 should print exactly the checkpointed prefix:\n{stdout1}");
    let committed: u64 = std::fs::read_to_string(&cursor)
        .expect("cursor file survives the abort")
        .trim()
        .parse()
        .expect("cursor file holds a sequence");
    assert_eq!(committed, 40, "cursor must sit exactly at the last printed event");

    // Run #2 resumes from the cursor. Everything past seq 40 backfills
    // from the store — the feed's live edge is long gone by now.
    let expect2 = (EVENTS_PER_COLLECTOR - seen1).to_string();
    let consumer2 = spawn_env(
        &[
            "consumer",
            "--connect",
            &addr,
            "--verbose",
            "--expect",
            &expect2,
            "--timeout",
            "120",
            "--cursor",
            cursor_arg,
        ],
        &[],
    );
    let out2 = consumer2.into_child().wait_with_output().expect("wait for resumed consumer");
    assert!(out2.status.success(), "resumed consumer failed: {:?}", out2.status);
    let stdout2 = String::from_utf8_lossy(&out2.stdout);
    assert!(
        stdout2.contains("from seq 41"),
        "run #2 must announce resumption from the checkpointed sequence:\n{stdout2}"
    );
    let done = stdout2.lines().rfind(|l| l.starts_with("sdcimon consumer done"));
    assert!(done.is_some_and(|l| l.contains("lost 0")), "resumed consumer reported loss: {done:?}");

    // The two runs splice into one exactly-once stream: per-client file
    // events f0..f99 in order, no seam artifacts, 101 lines total.
    let combined = format!("{stdout1}{stdout2}");
    let events = check_consumer_output(&combined, &["c1"]);
    assert_eq!(
        events, EVENTS_PER_COLLECTOR,
        "the union of both runs must cover every event exactly once:\n{combined}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
