//! End-to-end distributed tracing across the sharded pipeline: a
//! collector routing over a two-shard tier, a scatter-gather front, and
//! a consumer — every role sampling at 1/1 — must yield *complete*
//! traces when their per-process `/tracez` buffers (and the
//! run-to-completion roles' `--trace-out` dumps) are merged by the
//! `sdci-bench` trace collector. Complete means: every non-root span's
//! parent is present somewhere in the merged set, i.e. causal links
//! survive each process boundary.
//!
//! This is also the CI distributed-tracing smoke: the assembled query
//! trace is written to `TRACE_distributed_smoke.json` for upload.
//!
//! Children are managed strictly through [`std::process::Child`]
//! handles (never `pkill`), so a crashed test cannot take unrelated
//! processes down with it.

use sdci::monitor::{ShardMap, StoreQuery, StoreReader};
use sdci::net::{NetConfig, RemoteStore};
use sdci::types::Fid;
use sdci_bench::trace::TraceCollector;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_sdcimon");

/// Events one collector run emits: one mkdir plus `--files` creates.
const EVENTS_PER_COLLECTOR: usize = 101;

/// A child process that is SIGKILLed when the test panics.
struct Reaped(Option<Child>);

impl Reaped {
    fn child(&mut self) -> &mut Child {
        self.0.as_mut().expect("child already consumed")
    }
}

impl Drop for Reaped {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn(args: &[&str]) -> Reaped {
    let child = Command::new(BIN)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn sdcimon");
    Reaped(Some(child))
}

/// Reads a role's readiness line and returns its base address.
fn wait_for_listen_addr(role: &mut Reaped) -> String {
    let stdout = role.child().stdout.take().expect("role stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    for line in &mut lines {
        let line = line.expect("read role stdout");
        if let Some(rest) = line.split("listening on ").nth(1) {
            let addr = rest.split_whitespace().next().expect("addr token");
            std::thread::spawn(move || for _ in lines {});
            return addr.to_string();
        }
    }
    panic!("role exited without printing a readiness line");
}

/// The `/tracez` endpoint lives on the metrics listener at base+3.
fn tracez_addr(base_addr: &str) -> SocketAddr {
    let base: SocketAddr = base_addr.parse().expect("base addr");
    SocketAddr::new(base.ip(), base.port() + 3)
}

/// Two client names whose path roots land on *different* shards of a
/// two-shard map.
fn split_clients() -> (String, String) {
    let map = ShardMap::new(["127.0.0.1:1", "127.0.0.1:2"]);
    let fid = Fid::new(1, 1, 0);
    let owner = |name: &str| map.route(Path::new(&format!("/{name}")), fid).id;
    let first = (0..32).map(|i| format!("c{i}")).find(|n| owner(n) == 0).expect("a shard-0 root");
    let second = (0..32).map(|i| format!("c{i}")).find(|n| owner(n) == 1).expect("a shard-1 root");
    (first, second)
}

/// Polls the front's scatter RPC until both collectors' events are
/// visible (ingest is async behind the push-leg ack).
fn wait_for_ingest(front_addr: &str, min: usize) {
    let base: SocketAddr = front_addr.parse().expect("front addr");
    let store_addr = SocketAddr::new(base.ip(), base.port() + 2);
    let remote = RemoteStore::connect(store_addr, NetConfig::default());
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let got = remote.query(&StoreQuery::after_seq(0)).len();
        if got >= min {
            return;
        }
        assert!(Instant::now() < deadline, "only {got}/{min} events ingested before deadline");
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn sharded_pipeline_traces_link_across_every_process_boundary() {
    let tmp = std::env::temp_dir().join(format!("sdci_trace_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("mkdir trace tmp");

    let mut shard0 =
        spawn(&["shard", "--shard-id", "0", "--bind", "127.0.0.1:0", "--trace-sample", "1"]);
    let mut shard1 =
        spawn(&["shard", "--shard-id", "1", "--bind", "127.0.0.1:0", "--trace-sample", "1"]);
    let addr0 = wait_for_listen_addr(&mut shard0);
    let addr1 = wait_for_listen_addr(&mut shard1);
    let shards = format!("{addr0},{addr1}");
    let mut front =
        spawn(&["front", "--bind", "127.0.0.1:0", "--shards", &shards, "--trace-sample", "1"]);
    let front_addr = wait_for_listen_addr(&mut front);

    // One collector per shard (their roots hash to different owners),
    // each sampling everything and dumping its buffers at exit.
    let (c_zero, c_one) = split_clients();
    let mut dumps = Vec::new();
    for client in [&c_zero, &c_one] {
        let dump = tmp.join(format!("collector_{client}.json"));
        let out = Command::new(BIN)
            .args([
                "collector",
                "--cluster",
                &front_addr,
                "--client",
                client,
                "--files",
                "100",
                "--trace-sample",
                "1",
                "--trace-out",
                dump.to_str().unwrap(),
            ])
            .output()
            .expect("run collector");
        assert!(
            out.status.success(),
            "collector {client} failed:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
        dumps.push(dump);
    }
    wait_for_ingest(&front_addr, 2 * EVENTS_PER_COLLECTOR);

    // A consumer drains shard 0's feed (live + backfill) to completion.
    let consumer_dump = tmp.join("consumer.json");
    let out = Command::new(BIN)
        .args([
            "consumer",
            "--connect",
            &addr0,
            "--expect",
            &EVENTS_PER_COLLECTOR.to_string(),
            "--timeout",
            "60",
            "--trace-sample",
            "1",
            "--trace-out",
            consumer_dump.to_str().unwrap(),
        ])
        .output()
        .expect("run consumer");
    assert!(out.status.success(), "consumer failed:\n{}", String::from_utf8_lossy(&out.stdout));
    dumps.push(consumer_dump);

    // The test process issues a traced scatter query of its own: this
    // is the trace the acceptance bar measures, rooted here and fanned
    // through the front to both shards.
    sdci_obs::trace::set_sample_every(1);
    sdci_obs::trace::set_process("query-client");
    let query_trace_id = {
        let base: SocketAddr = front_addr.parse().expect("front addr");
        let store_addr = SocketAddr::new(base.ip(), base.port() + 2);
        let remote = RemoteStore::connect(store_addr, NetConfig::default());
        let root = sdci_obs::trace::root("test.query");
        let ctx = root.context().expect("1/1 sampling samples the root");
        let events = remote.query(&StoreQuery::after_seq(0));
        assert_eq!(events.len(), 2 * EVENTS_PER_COLLECTOR, "scatter query shed events");
        ctx.trace_id
    };

    // Assemble: scrape the three live servers, read the three dump
    // files, and fold in this process's own buffer.
    let mut tc = TraceCollector::new();
    tc.scrape(tracez_addr(&addr0)).expect("scrape shard 0 /tracez");
    tc.scrape(tracez_addr(&addr1)).expect("scrape shard 1 /tracez");
    tc.scrape(tracez_addr(&front_addr)).expect("scrape front /tracez");
    for dump in &dumps {
        tc.ingest_file(dump).expect("read trace dump");
    }
    tc.ingest_current_process().expect("merge own buffers");

    // --- The query trace: one trace spanning four processes. ---
    let query_trace = tc.trace(query_trace_id);
    let names: Vec<&str> = query_trace.iter().map(|s| s.name.as_str()).collect();
    assert!(
        query_trace.len() >= 6,
        "expected >= 6 spans in the scatter query trace, got {names:?}"
    );
    assert!(
        tc.broken_links(query_trace_id).is_empty(),
        "broken parent links in the query trace: {:?}",
        tc.broken_links(query_trace_id)
    );
    for required in ["test.query", "store_rpc.serve", "scatter.query", "scatter.shard"] {
        assert!(names.contains(&required), "query trace is missing {required}: {names:?}");
    }
    let scatter_children: Vec<&&sdci_bench::trace::SpanRec> =
        query_trace.iter().filter(|s| s.name == "scatter.shard").collect();
    assert_eq!(scatter_children.len(), 2, "one scatter child per shard: {names:?}");
    let mut legs: Vec<&str> = scatter_children.iter().map(|s| s.detail.as_str()).collect();
    legs.sort_unstable();
    assert_eq!(legs, ["shard 0", "shard 1"], "per-shard children must name their legs");
    let processes = tc.processes(query_trace_id);
    for proc in ["query-client", "front", "shard0", "shard1"] {
        assert!(processes.contains(proc), "no spans from {proc}: {processes:?}");
    }
    // The shard-side store middleware must be visible inside the same
    // trace (the serve span is current while the stack runs).
    assert!(
        names.iter().any(|n| n.starts_with("store.")),
        "store middleware spans missing from the query trace: {names:?}"
    );

    // --- The ingest traces: extraction through delivery. ---
    // Each extracted event roots its own trace in the collector; find
    // one that reached the consumer and check its chain end to end.
    let delivered: Vec<u64> =
        tc.spans().iter().filter(|s| s.name == "consumer.delivery").map(|s| s.trace_id).collect();
    assert!(!delivered.is_empty(), "no consumer.delivery spans collected");
    let linked = delivered
        .iter()
        .find(|&&id| {
            let names: Vec<&str> = tc.trace(id).iter().map(|s| s.name.as_str()).collect();
            names.contains(&"collector.extract")
                && names.contains(&"router.publish")
                && tc.broken_links(id).is_empty()
        })
        .unwrap_or_else(|| {
            panic!(
                "no delivery trace links back to its extraction; example: {:?}",
                tc.trace(delivered[0])
            )
        });
    let ingest_procs = tc.processes(*linked);
    assert!(
        ingest_procs.len() >= 3,
        "an ingest trace should span collector, shard, and consumer: {ingest_procs:?}"
    );
    // Somewhere across the ingest traces the aggregator's store layers
    // must have recorded under the adopted event context.
    assert!(
        tc.spans().iter().any(|s| s.name == "aggregator.ingest"),
        "no aggregator.ingest spans collected"
    );
    assert!(
        tc.spans().iter().any(|s| s.name == "store.seg.insert" || s.name == "store.mem.insert"),
        "no backend insert spans collected"
    );

    // CI artifact: the fully-assembled query trace as JSON.
    let artifact = Path::new(env!("CARGO_MANIFEST_DIR")).join("TRACE_distributed_smoke.json");
    std::fs::write(&artifact, tc.render_trace(query_trace_id)).expect("write trace artifact");

    let _ = std::fs::remove_dir_all(&tmp);
}
