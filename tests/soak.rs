//! A combined soak test: sustained mixed workload through the full
//! stack — generator → Lustre → monitor → Ripple agent → actions — with
//! invariant checks at every seam.

use parking_lot::Mutex;
use sdci::lustre::{DnePolicy, LustreConfig, LustreFs};
use sdci::monitor::{MetricsRecorder, MonitorClusterBuilder, MonitorConfig};
use sdci::ripple::{
    ActionKind, ActionSpec, AgentStorage, MonitorSource, RippleBuilder, Rule, Trigger,
};
use sdci::types::{AgentId, EventKind, MdtIndex, SimTime};
use sdci::workloads::{EventGenerator, OpMix};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn sustained_mixed_load_full_stack() {
    let lfs = Arc::new(Mutex::new(LustreFs::new(
        LustreConfig::builder("soak")
            .mdt_count(4)
            .ost_count(8)
            .dne_policy(DnePolicy::HashByName)
            .build(),
    )));
    let cluster = MonitorClusterBuilder::new(Arc::clone(&lfs))
        .config(MonitorConfig { store_capacity: 200_000, ..MonitorConfig::default() })
        .start();

    // A Ripple agent consuming the site-wide feed, emailing on every
    // created `.dat` file anywhere.
    let mut ripple = RippleBuilder::new().workers(4).build();
    ripple.add_agent(
        AgentId::new("site"),
        AgentStorage::Lustre(Arc::clone(&lfs)),
        MonitorSource::new(cluster.subscribe()),
    );
    ripple.add_rule(
        Rule::when(
            Trigger::on(AgentId::new("site")).under("/gen").kinds([EventKind::Created]).glob("f8?"), // a narrow slice: files f80..f89 of each dir
        )
        .then(ActionSpec::email("soak@example.org")),
    );

    let mut metrics = MetricsRecorder::new();
    metrics.record(cluster.stats());

    // Three waves of mixed workload, checking between waves.
    let mut generator =
        EventGenerator::new(Arc::clone(&lfs), 6, OpMix::full(), 2024).expect("generator");
    let mut tick = 0u64;
    for wave in 0..3 {
        let report = generator
            .run(1_500, || {
                tick += 1;
                SimTime::from_nanos(tick * 500)
            })
            .expect("workload");
        assert_eq!(report.total_ops(), 1_500, "wave {wave}");
        let total = lfs.lock().total_events();
        assert!(
            cluster.wait_for_published(total, Duration::from_secs(15)),
            "wave {wave}: monitor fell behind"
        );
        metrics.record(cluster.stats());
        let rates = metrics.latest_rates().expect("rates");
        assert!(rates.process_rate.per_sec() > 0.0, "wave {wave}");
    }

    // End-to-end accounting.
    let total = lfs.lock().total_events();
    let stats = cluster.stats();
    assert_eq!(stats.total_processed(), total);
    assert_eq!(stats.aggregator.published, total);
    assert_eq!(
        stats.collectors.iter().map(|c| c.resolution_failures).sum::<u64>(),
        0,
        "prompt processing never fails to resolve"
    );
    let busy = stats.collectors.iter().filter(|c| c.processed > 0).count();
    assert!(busy >= 2, "hash-distributed dirs should keep several collectors busy ({busy})");
    assert!(metrics.cache_hit_rate() > 0.5, "siblings should mostly hit the cache");

    // Ripple executed exactly one email per matching create.
    assert!(ripple.pump_until_idle(Duration::from_secs(20)));
    let emails =
        ripple.execution_log().successes_where(|r| matches!(r.kind, ActionKind::Email { .. }));
    let expected = lfs
        .lock()
        .fs()
        .walk()
        .iter()
        .filter(|(p, _)| {
            let name = p.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
            p.starts_with("/gen") && name.starts_with("f8") && name.len() == 3
        })
        .count();
    // Every matching created file got an email; deleted ones did too
    // (their create preceded the delete), so emails >= surviving count.
    assert!(emails.len() >= expected, "emails {} < surviving matches {expected}", emails.len());

    // OST accounting stays conservative: used bytes equal the sum of
    // live file sizes.
    {
        let fs = lfs.lock();
        let live_bytes: u64 = fs
            .fs()
            .walk()
            .iter()
            .filter(|(_, s)| s.file_type != sdci::simfs::FileType::Directory)
            .map(|(_, s)| s.size)
            .sum();
        assert_eq!(fs.ost_report().used.as_bytes(), live_bytes);
    }

    ripple.shutdown();
    cluster.shutdown();
    // All ChangeLogs fully purged on clean shutdown.
    let fs = lfs.lock();
    for m in 0..4 {
        assert!(fs.changelog(MdtIndex::new(m)).is_empty());
    }
}
