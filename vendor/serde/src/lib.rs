// Vendored shim: exempt from workspace lint gates.
#![allow(clippy::all)]
//! Minimal, API-compatible subset of `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! a simplified serialization framework under the upstream names the
//! workspace imports: `serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` via the vendored `serde_derive`.
//!
//! Instead of upstream's visitor architecture, both traits go through a
//! self-describing [`Value`] tree. `serde_json` (also vendored) renders
//! `Value` to JSON text and parses it back. The data model and derive
//! output match upstream `serde_json` conventions (externally-tagged
//! enums, structs as maps, tuples as arrays), so snapshots written by
//! this shim are byte-compatible with what real serde_json would emit
//! for the types in this workspace.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::path::PathBuf;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing intermediate representation for serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (array).
    Seq(Vec<Value>),
    /// Map with string keys. A `Vec` keeps insertion order so output is
    /// deterministic and matches field declaration order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with the given message.
    pub fn msg(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Creates a "expected X, found Y"-style mismatch error.
    pub fn mismatch(expected: &str, found: &Value) -> Self {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        };
        DeError(format!("expected {expected}, found {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted to a [`Value`].
pub trait Serialize {
    /// Converts `self` into the intermediate representation.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, or explains why the value doesn't fit.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::mismatch("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(DeError::mismatch("unsigned integer", other)),
                };
                <$ty>::try_from(raw)
                    .map_err(|_| DeError::msg(format!("{raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }

        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw: i64 = match value {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of range for i64")))?,
                    other => return Err(DeError::mismatch("integer", other)),
                };
                <$ty>::try_from(raw)
                    .map_err(|_| DeError::msg(format!("{raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(n) => Ok(*n),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::mismatch("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|n| n as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::mismatch("single-char string", other)),
        }
    }
}

impl Serialize for PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for PathBuf {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        String::from_value(value).map(PathBuf::from)
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::mismatch("null", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::mismatch("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(value).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(DeError::mismatch("map", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(DeError::mismatch("map", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Seq(items) => {
                        let expected = [$(stringify!($idx)),+].len();
                        if items.len() != expected {
                            return Err(DeError::msg(format!(
                                "expected tuple of {expected}, found sequence of {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::mismatch("tuple", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_string().to_value()), Ok("hi".to_string()));
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Some(3);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&some.to_value()), Ok(Some(3)));
        assert_eq!(Option::<u32>::from_value(&none.to_value()), Ok(None));
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let val = v.to_value();
        let back = Vec::<(u32, String)>::from_value(&val).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn mismatch_reports_kinds() {
        let err = bool::from_value(&Value::U64(1)).unwrap_err();
        assert!(err.0.contains("expected bool"));
    }
}
