// Vendored shim: exempt from workspace lint gates.
#![allow(clippy::all)]
//! Minimal `#[derive(Serialize, Deserialize)]` for the vendored `serde`.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; this crate walks the raw `proc_macro::TokenStream` by
//! hand. It supports exactly the shapes this workspace derives on:
//! non-generic structs (unit / newtype / tuple / named-field) and
//! non-generic enums (unit / newtype / tuple / struct variants), with
//! no `#[serde(...)]` attributes. Anything fancier panics with a clear
//! message at compile time rather than silently mis-serializing.
//!
//! Output follows upstream `serde_json` conventions: named structs are
//! maps, newtype structs are transparent, tuples are arrays, and enums
//! are externally tagged (`"Variant"` / `{"Variant": payload}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    UnitStruct,
    NewtypeStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives `serde::Serialize` (the vendored Value-based trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_serialize(&name, &shape)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` (the vendored Value-based trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_deserialize(&name, &shape)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);

    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the vendored derive");
        }
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.next() {
            // `struct Foo;`
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match count_tuple_fields(g.stream()) {
                    1 => Shape::NewtypeStruct,
                    n => Shape::TupleStruct(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(named_field_names(g.stream()))
            }
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    (name, shape)
}

fn skip_attrs_and_vis<I: Iterator<Item = TokenTree>>(tokens: &mut std::iter::Peekable<I>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // `(crate)` / `(super)` / ...
                    }
                }
            }
            _ => return,
        }
    }
}

/// Counts the fields of a tuple struct / tuple variant: top-level commas
/// at angle-bracket depth zero delimit fields.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for token in stream {
        match &token {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    angle_depth += 1;
                    saw_tokens = true;
                }
                '>' => {
                    angle_depth -= 1;
                    saw_tokens = true;
                }
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_tokens = false;
                }
                _ => saw_tokens = true,
            },
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1; // no trailing comma after the last field
    }
    count
}

/// Extracts the field names of a named-field struct body or struct
/// variant body.
fn named_field_names(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        names.push(name);
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for token in tokens.by_ref() {
            if let TokenTree::Punct(p) = &token {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    names
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                if arity == 1 {
                    VariantKind::Newtype
                } else {
                    VariantKind::Tuple(arity)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_field_names(g.stream());
                tokens.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '=' {
                panic!("serde_derive: explicit enum discriminants are not supported");
            }
            if p.as_char() == ',' {
                tokens.next();
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen (generated as source text, then re-parsed)
// ---------------------------------------------------------------------------

const VALUE: &str = "::serde::Value";
const SER: &str = "::serde::Serialize";
const DE: &str = "::serde::Deserialize";
const ERR: &str = "::serde::DeError";

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!("{VALUE}::Null"),
        Shape::NewtypeStruct => format!("{SER}::to_value(&self.0)"),
        Shape::TupleStruct(arity) => {
            let items: Vec<String> =
                (0..*arity).map(|i| format!("{SER}::to_value(&self.{i})")).collect();
            format!("{VALUE}::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(::std::string::String::from(\"{f}\"), {SER}::to_value(&self.{f}))")
                })
                .collect();
            format!("{VALUE}::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!("impl {SER} for {name} {{ fn to_value(&self) -> {VALUE} {{ {body} }} }}")
}

fn ser_variant_arm(name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    let tag = format!("::std::string::String::from(\"{v}\")");
    match &variant.kind {
        VariantKind::Unit => format!("{name}::{v} => {VALUE}::Str({tag}),"),
        VariantKind::Newtype => format!(
            "{name}::{v}(__f0) => {VALUE}::Map(::std::vec![({tag}, {SER}::to_value(__f0))]),"
        ),
        VariantKind::Tuple(arity) => {
            let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
            let items: Vec<String> =
                binds.iter().map(|b| format!("{SER}::to_value({b})")).collect();
            format!(
                "{name}::{v}({}) => {VALUE}::Map(::std::vec![({tag}, {VALUE}::Seq(::std::vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        VariantKind::Struct(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(::std::string::String::from(\"{f}\"), {SER}::to_value({f}))"))
                .collect();
            format!(
                "{name}::{v} {{ {binds} }} => {VALUE}::Map(::std::vec![({tag}, {VALUE}::Map(::std::vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!(
            "match value {{ {VALUE}::Null => ::std::result::Result::Ok({name}), \
             other => ::std::result::Result::Err({ERR}::mismatch(\"unit struct {name}\", other)) }}"
        ),
        Shape::NewtypeStruct => {
            format!("::std::result::Result::Ok({name}({DE}::from_value(value)?))")
        }
        Shape::TupleStruct(arity) => {
            let items: Vec<String> =
                (0..*arity).map(|i| format!("{DE}::from_value(&__items[{i}])?")).collect();
            format!(
                "match value {{ \
                 {VALUE}::Seq(__items) if __items.len() == {arity} => \
                 ::std::result::Result::Ok({name}({})), \
                 other => ::std::result::Result::Err({ERR}::mismatch(\"tuple struct {name}\", other)) }}",
                items.join(", ")
            )
        }
        Shape::NamedStruct(fields) => {
            let inits = named_field_inits(fields);
            format!(
                "match value {{ \
                 {VALUE}::Map(_) => ::std::result::Result::Ok({name} {{ {inits} }}), \
                 other => ::std::result::Result::Err({ERR}::mismatch(\"struct {name}\", other)) }}"
            )
        }
        Shape::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "impl {DE} for {name} {{ \
         fn from_value(value: &{VALUE}) -> ::std::result::Result<Self, {ERR}> {{ {body} }} }}"
    )
}

/// `field: Deserialize::from_value(value.get("field").unwrap_or(&Null))?`
/// for each field. A missing key reads as `Null`, so `Option` fields
/// tolerate omission exactly like upstream's `default` for options.
fn named_field_inits(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: {DE}::from_value(value.get(\"{f}\").unwrap_or(&{VALUE}::Null))\
                 .map_err(|e| {ERR}::msg(::std::format!(\"field `{f}`: {{e}}\")))?,"
            )
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    // `"Variant"` string form — unit variants only.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),", v = v.name))
        .collect();

    // `{"Variant": payload}` map form — payload-carrying variants (and
    // unit variants with a null payload, which upstream also accepts).
    let tagged_arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            let decode = match &v.kind {
                VariantKind::Unit => format!("::std::result::Result::Ok({name}::{vn})"),
                VariantKind::Newtype => format!(
                    "::std::result::Result::Ok({name}::{vn}({DE}::from_value(__payload)?))"
                ),
                VariantKind::Tuple(arity) => {
                    let items: Vec<String> = (0..*arity)
                        .map(|i| format!("{DE}::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "match __payload {{ \
                         {VALUE}::Seq(__items) if __items.len() == {arity} => \
                         ::std::result::Result::Ok({name}::{vn}({})), \
                         other => ::std::result::Result::Err({ERR}::mismatch(\"variant {name}::{vn}\", other)) }}",
                        items.join(", ")
                    )
                }
                VariantKind::Struct(fields) => {
                    let inits = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: {DE}::from_value(__payload.get(\"{f}\").unwrap_or(&{VALUE}::Null))\
                                 .map_err(|e| {ERR}::msg(::std::format!(\"field `{f}`: {{e}}\")))?,"
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(" ");
                    format!(
                        "match __payload {{ \
                         {VALUE}::Map(_) => ::std::result::Result::Ok({name}::{vn} {{ {inits} }}), \
                         other => ::std::result::Result::Err({ERR}::mismatch(\"variant {name}::{vn}\", other)) }}"
                    )
                }
            };
            format!("\"{vn}\" => {{ {decode} }}")
        })
        .collect();

    format!(
        "match value {{ \
         {VALUE}::Str(__s) => match __s.as_str() {{ \
             {unit} \
             other => ::std::result::Result::Err({ERR}::msg(::std::format!(\
                 \"unknown variant `{{other}}` for {name}\"))), \
         }}, \
         {VALUE}::Map(__entries) if __entries.len() == 1 => {{ \
             let (__tag, __payload) = &__entries[0]; \
             let _ = __payload; \
             match __tag.as_str() {{ \
                 {tagged} \
                 other => ::std::result::Result::Err({ERR}::msg(::std::format!(\
                     \"unknown variant `{{other}}` for {name}\"))), \
             }} \
         }}, \
         other => ::std::result::Result::Err({ERR}::mismatch(\"enum {name}\", other)), \
         }}",
        unit = unit_arms.join(" "),
        tagged = tagged_arms.join(" ")
    )
}
