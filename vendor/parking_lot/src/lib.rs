// Vendored shim: exempt from workspace lint gates.
#![allow(clippy::all)]
//! Minimal, API-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! The build environment for this repository has no crates.io access, so
//! the workspace vendors the small slice of `parking_lot` it uses:
//! [`Mutex`] / [`RwLock`] whose guards are returned without a poison
//! `Result`. Lock poisoning is ignored, matching `parking_lot` semantics
//! (a panicked critical section does not poison the lock).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{PoisonError, TryLockError};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access to the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose guards are returned without a poison
/// `Result`.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access to the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
