// Vendored shim: exempt from workspace lint gates.
#![allow(clippy::all)]
//! Minimal, API-compatible subset of `crossbeam-channel`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of `crossbeam-channel` the workspace uses: a bounded MPMC
//! channel with cloneable senders *and* receivers, `try_send` /
//! `recv_timeout`, and queue-length introspection. Implementation is a
//! `Mutex<VecDeque>` + two `Condvar`s — not lock-free like the real
//! crate, but semantically equivalent and fast enough for the simulator.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> SendError<T> {
    /// Unwraps the message that could not be sent.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers have been dropped.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Unwraps the message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(t) | TrySendError::Disconnected(t) => t,
        }
    }

    /// Returns `true` if the failure was due to a full channel.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }

    /// Returns `true` if the failure was due to disconnection.
    pub fn is_disconnected(&self) -> bool {
        matches!(self, TrySendError::Disconnected(_))
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders have been dropped and the channel is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message available.
    Timeout,
    /// All senders have been dropped and the channel is drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// `None` means unbounded.
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn disconnected_senders(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }

    fn disconnected_receivers(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }
}

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel with the given capacity.
///
/// Capacity 0 is treated as capacity 1 (the real crate implements
/// rendezvous channels; the workspace never uses capacity 0).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(capacity.max(1)))
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake all blocked receivers.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last receiver gone: wake all blocked senders.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends a message, blocking while the channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut queue = match self.shared.queue.lock() {
            Ok(q) => q,
            Err(p) => p.into_inner(),
        };
        loop {
            if self.shared.disconnected_receivers() {
                return Err(SendError(msg));
            }
            match self.shared.capacity {
                Some(cap) if queue.len() >= cap => {
                    queue = match self.shared.not_full.wait(queue) {
                        Ok(q) => q,
                        Err(p) => p.into_inner(),
                    };
                    // Loop re-checks capacity and disconnection.
                }
                _ => {
                    queue.push_back(msg);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Attempts to send without blocking.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut queue = match self.shared.queue.lock() {
            Ok(q) => q,
            Err(p) => p.into_inner(),
        };
        if self.shared.disconnected_receivers() {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.shared.capacity {
            if queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        queue.push_back(msg);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        match self.shared.queue.lock() {
            Ok(q) => q.len(),
            Err(p) => p.into_inner().len(),
        }
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's capacity (`None` if unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking while the channel is empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = match self.shared.queue.lock() {
            Ok(q) => q,
            Err(p) => p.into_inner(),
        };
        loop {
            if let Some(msg) = queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.disconnected_senders() {
                return Err(RecvError);
            }
            queue = match self.shared.not_empty.wait(queue) {
                Ok(q) => q,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Attempts to receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = match self.shared.queue.lock() {
            Ok(q) => q,
            Err(p) => p.into_inner(),
        };
        if let Some(msg) = queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if self.shared.disconnected_senders() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receives a message, blocking for at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = match self.shared.queue.lock() {
            Ok(q) => q,
            Err(p) => p.into_inner(),
        };
        loop {
            if let Some(msg) = queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.disconnected_senders() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, result) = match self.shared.not_empty.wait_timeout(queue, deadline - now) {
                Ok((q, r)) => (q, r),
                Err(p) => {
                    let (q, r) = p.into_inner();
                    (q, r)
                }
            };
            queue = q;
            if result.timed_out() && queue.is_empty() {
                if self.shared.disconnected_senders() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        match self.shared.queue.lock() {
            Ok(q) => q.len(),
            Err(p) => p.into_inner().len(),
        }
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's capacity (`None` if unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn try_send_full() {
        let (tx, _rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(tx.len(), 1);
    }

    #[test]
    fn disconnect_sender_side() {
        let (tx, rx) = bounded::<i32>(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn disconnect_receiver_side() {
        let (tx, rx) = bounded(4);
        drop(rx);
        assert!(matches!(tx.send(1), Err(SendError(1))));
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<i32>(4);
        let err = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(err, Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn blocking_send_unblocks() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        handle.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn mpmc_all_delivered() {
        let (tx, rx) = bounded(8);
        let mut handles = Vec::new();
        for p in 0..4 {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut n = 0;
                while rx.recv().is_ok() {
                    n += 1;
                }
                n
            }));
        }
        drop(rx);
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }
}
