// Vendored shim: exempt from workspace lint gates.
#![allow(clippy::all)]
//! Minimal, API-compatible subset of `rand`.
//!
//! Provides the slice of `rand` 0.8 this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `gen`, `gen_range`, `gen_bool`. The generator is
//! xoshiro256++ seeded via splitmix64 — not the ChaCha12 upstream
//! `StdRng` uses, so sequences differ from real `rand`, but they are
//! deterministic per seed, which is all the simulator requires.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seeding constructors, reduced to the one entry point the workspace
/// uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniformly random value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }

        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + (rng.next_u64() % (span + 1)) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $ty
            }
        }
    )*};
}

impl_signed_range!(i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard against rounding ever landing exactly on the excluded
        // upper bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Maps a random `u64` to a uniform `f64` in `[0, 1)` with 53 bits of
/// precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (upstream's `StdRng` is
    /// ChaCha12; sequences differ but determinism per seed holds).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = rng.gen_range(3u64..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(0..5usize);
            assert!(i < 5);
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn works_through_impl_rng() {
        fn draw(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 10);
    }
}
