// Vendored shim: exempt from workspace lint gates.
#![allow(clippy::all)]
//! Minimal, API-compatible subset of `serde_json`.
//!
//! Renders the vendored `serde::Value` tree to JSON text and parses it
//! back. Supports everything the workspace's derived types produce:
//! null, bools, integers, floats (emitted via `{:?}` so they round-trip
//! exactly), strings with full escaping incl. `\uXXXX`, arrays, and
//! objects.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(err: DeError) -> Self {
        Error(err.0)
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // `{:?}` prints the shortest representation that parses
                // back to the same f64 (and always includes `.0` for
                // integral values), matching serde_json.
                out.push_str(&format!("{n:?}"));
            } else {
                // serde_json emits null for non-finite floats.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", byte as char, self.pos)))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let first = self.parse_hex4()?;
                        let scalar = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: a `\uXXXX` low surrogate
                            // must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::new("unpaired surrogate in string"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::new("invalid low surrogate in string"));
                            }
                            0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(scalar)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    other => {
                        return Err(Error::new(format!(
                            "invalid escape {:?} at byte {}",
                            other.map(|b| b as char),
                            self.pos
                        )))
                    }
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8 in string"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut n = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error::new("truncated unicode escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in unicode escape"))?;
            n = n * 16 + digit;
        }
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::new(format!("invalid float `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error::new(format!("invalid integer `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::new(format!("invalid integer `{text}`: {e}")))
        }
    }
}

fn utf8_width(first_byte: u8) -> usize {
    match first_byte {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<bool>("true").unwrap(), true);
    }

    #[test]
    fn string_escaping_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\slash\u{0}snow\u{2603}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(from_str::<String>(r#""\u2603""#).unwrap(), "\u{2603}");
        assert_eq!(from_str::<String>(r#""\ud83d\ude00""#).unwrap(), "\u{1F600}");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_has_indentation() {
        let v = vec![1u32, 2];
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "[\n  1,\n  2\n]");
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }

    #[test]
    fn float_fidelity() {
        let vals = [0.1f64, 1e300, -2.5e-10, f64::MAX];
        for v in vals {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), v);
        }
    }
}
