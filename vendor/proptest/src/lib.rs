// Vendored shim: exempt from workspace lint gates.
#![allow(clippy::all)]
//! Minimal, API-compatible subset of `proptest`.
//!
//! Implements the slice of proptest this workspace's property tests
//! use: the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_oneof!` macros, `Strategy` + `Just` + `any`, range strategies,
//! tuple strategies, `prop_map`, and the `prop::{collection, sample,
//! option}` helpers. Cases are drawn from a deterministic seeded RNG.
//!
//! The one upstream feature deliberately missing is shrinking: a failing
//! case reports the exact generated inputs (via the panic message from
//! `prop_assert!`), but is not minimized.

#![forbid(unsafe_code)]

/// Core strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, map }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.sample(rng))
        }
    }

    /// A type-erased strategy (object-safe because combinators require
    /// `Self: Sized`).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Boxes a strategy — used by `prop_oneof!` to mix strategy types.
    pub fn boxed<S>(strategy: S) -> BoxedStrategy<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    /// Weighted choice between boxed strategies of one value type.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof!: all weights are zero");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total_weight);
            for (weight, strategy) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return strategy.sample(rng);
                }
                pick -= weight;
            }
            unreachable!("prop_oneof!: weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

    macro_rules! impl_range_inclusive_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_inclusive_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// `any::<T>()` — uniform values of primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, Standard};
    use std::marker::PhantomData;

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// Uniform strategy over all values of `T`.
    pub fn any<T: Standard>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Standard> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen()
        }
    }
}

/// `prop::collection` — collections of generated elements.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Number-of-elements specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { min: exact, max_inclusive: exact }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange { min: range.start, max_inclusive: range.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *range.start(), max_inclusive: *range.end() }
        }
    }

    /// Strategy producing `Vec`s of elements drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::sample` — choosing among fixed alternatives.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Picks uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "prop::sample::select: empty options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// `prop::option` — optional values.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Yields `None` a quarter of the time, `Some` otherwise (matching
    /// upstream's default Some-biased weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Test-case execution plumbing used by the `proptest!` macro.
pub mod test_runner {
    use rand::SeedableRng;
    use std::fmt;

    /// The RNG all strategies draw from.
    pub type TestRng = rand::rngs::StdRng;

    /// Builds the per-test RNG. Deterministic so CI failures reproduce.
    pub fn new_rng() -> TestRng {
        TestRng::seed_from_u64(0x5DC1_C0DE)
    }

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed `prop_assert!` — carried as an error so the runner can
    /// report which case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.fmt(f)
        }
    }
}

/// Everything tests conventionally glob-import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace mirror of upstream's `prop::` re-exports.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::new_rng();
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(failure) = outcome {
                    panic!("proptest: case {case} of {}: {failure}", config.cases);
                }
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    (config = ($config:expr);) => {};
}

/// Asserts inside a `proptest!` body; failure aborts only this case
/// with a report instead of panicking the whole process immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Weighted (`w => strategy`) or uniform choice among strategies that
/// share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::boxed($strategy))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A,
        B(u8),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            1 => Just(Op::A),
            3 => any::<u8>().prop_map(Op::B),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 1usize..4,) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y >= 1 && y < 4);
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u8>(), 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5, "bad len {}", v.len());
        }

        #[test]
        fn select_and_option(s in prop::sample::select(vec!["a", "b"]),
                             o in prop::option::of(0u64..3)) {
            prop_assert!(s == "a" || s == "b");
            if let Some(n) = o {
                prop_assert!(n < 3);
            }
        }

        #[test]
        fn oneof_produces_both(ops in prop::collection::vec(op(), 1..50)) {
            for op in &ops {
                match op {
                    Op::A => {}
                    Op::B(_) => {}
                }
            }
            prop_assert_eq!(ops.len(), ops.len());
        }
    }

    #[test]
    #[should_panic(expected = "proptest: case")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
