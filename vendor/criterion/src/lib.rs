// Vendored shim: exempt from workspace lint gates.
#![allow(clippy::all)]
//! Minimal, API-compatible subset of `criterion`.
//!
//! Times each benchmark with `std::time::Instant` over a fixed batch of
//! iterations and prints a one-line mean. No warm-up tuning, outlier
//! statistics, or HTML reports — just enough for the `--bench` targets
//! in this workspace to compile, run quickly, and print comparable
//! numbers.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so call sites may use `criterion::black_box` (the
/// workspace mostly uses `std::hint::black_box` directly).
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("func", param)` — renders as `func/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), throughput: None, sample_size: 10 }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.name, &mut routine);
        self
    }

    /// Runs one benchmark that closes over an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.name, &mut |bencher: &mut Bencher| routine(bencher, input));
        self
    }

    /// Ends the group (upstream renders summary reports here).
    pub fn finish(self) {}

    fn run(&self, bench_name: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher { iters: 0, elapsed: Duration::ZERO };
        // One untimed warm-up pass, then the timed samples.
        routine(&mut bencher);
        bencher.iters = 0;
        bencher.elapsed = Duration::ZERO;
        for _ in 0..self.sample_size {
            routine(&mut bencher);
        }
        let mean_ns = if bencher.iters == 0 {
            0.0
        } else {
            bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!(" ({:.3} Melem/s)", n as f64 * 1e3 / mean_ns)
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                format!(" ({:.3} MiB/s)", n as f64 * 1e9 / mean_ns / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("{}/{:<32} time: [{:>12.1} ns/iter]{}", self.name, bench_name, mean_ns, rate);
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a small fixed batch and accumulates the
    /// result into this sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        const BATCH: u64 = 16;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        group.sample_size(2);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            calls += 1;
            b.iter(|| 1 + 1);
        });
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, n| {
            b.iter(|| n * 2);
        });
        group.finish();
        // warm-up + 2 samples
        assert_eq!(calls, 3);
    }
}
