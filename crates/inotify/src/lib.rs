//! An inotify-semantics file monitor for [`simfs`] filesystems.
//!
//! Ripple's original event detection uses the Python Watchdog module over
//! inotify/kqueue (§3 of the paper). The paper's motivation for building a
//! ChangeLog-based monitor is precisely the *limitations* of this
//! approach, which this crate reproduces faithfully so they can be
//! measured (bench `a5_inotify_limits`):
//!
//! * watches are **per-directory** — monitoring a tree requires crawling
//!   it and placing one watch per directory;
//! * each watch pins ~1 KiB of unswappable kernel memory on a 64-bit
//!   machine, and at the default limit of 524,288 watches that is >512 MiB
//!   (§3 "Limitations");
//! * the event queue is bounded; overruns drop events and surface only a
//!   queue-overflow marker;
//! * newly created subdirectories are not watched until user space reacts
//!   (the race Watchdog papers over).
//!
//! [`Inotify`] is the kernel-side instance; [`RecursiveWatcher`] is the
//! Watchdog-style recursive observer built on top of it.
//!
//! # Example
//!
//! ```
//! use inotify_sim::Inotify;
//! use sdci_types::{EventKind, SimTime};
//! use simfs::SimFs;
//!
//! let mut fs = SimFs::new();
//! fs.mkdir("/inbox", SimTime::EPOCH)?;
//!
//! let inotify = Inotify::attach(&mut fs);
//! let wd = inotify.add_watch(&fs, "/inbox")?;
//!
//! fs.create("/inbox/new.dat", SimTime::from_secs(1))?;
//! let events = inotify.read_events();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].wd, wd);
//! assert_eq!(events[0].kind, EventKind::Created);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod instance;
mod recursive;

pub use error::InotifyError;
pub use instance::{Inotify, InotifyEvent, InotifyLimits, InotifyStats, WatchDescriptor};
pub use recursive::{CrawlStats, RecursiveWatcher};
