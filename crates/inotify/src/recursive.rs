//! A Watchdog-style recursive watcher.
//!
//! Python Watchdog (which Ripple's agent uses, §3) presents a recursive
//! observer API on top of inotify's per-directory watches. Doing so
//! requires crawling the tree at setup time to place a watch on every
//! directory — the "large setup cost" the paper calls out — and reacting
//! to directory creations at runtime to extend coverage.

use crate::{Inotify, InotifyError, InotifyEvent};
use sdci_types::{ByteSize, EventKind};
use simfs::{FileType, SimFs};
use std::path::{Path, PathBuf};

/// What it cost to set up (and extend) recursive coverage.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CrawlStats {
    /// Directories visited during crawls (each is a `readdir` plus an
    /// `inotify_add_watch`).
    pub directories_crawled: u64,
    /// Non-directory entries enumerated during crawls.
    pub files_enumerated: u64,
    /// Watches placed.
    pub watches_placed: u64,
}

impl CrawlStats {
    /// Kernel memory implied by the placed watches at ~1 KiB each.
    pub fn kernel_memory(&self) -> ByteSize {
        ByteSize::from_kib(1).saturating_mul(self.watches_placed)
    }
}

/// Watches a directory tree by crawling it and placing per-directory
/// watches, extending coverage as directories appear.
#[derive(Debug)]
pub struct RecursiveWatcher {
    inotify: Inotify,
    roots: Vec<PathBuf>,
    stats: CrawlStats,
}

impl RecursiveWatcher {
    /// Creates a recursive watcher over an existing instance.
    pub fn new(inotify: Inotify) -> Self {
        RecursiveWatcher { inotify, roots: Vec::new(), stats: CrawlStats::default() }
    }

    /// Recursively watches the tree rooted at `path`, crawling every
    /// directory beneath it.
    ///
    /// # Errors
    ///
    /// Propagates watch-limit and lookup failures; on failure, watches
    /// placed so far remain (as with a partially initialized Watchdog
    /// observer).
    pub fn watch_tree(&mut self, fs: &SimFs, path: impl AsRef<Path>) -> Result<(), InotifyError> {
        let norm = simfs::normalize_path(path.as_ref())?;
        self.crawl(fs, &norm)?;
        if !self.roots.contains(&norm) {
            self.roots.push(norm);
        }
        Ok(())
    }

    fn crawl(&mut self, fs: &SimFs, dir: &Path) -> Result<(), InotifyError> {
        self.inotify.add_watch(fs, dir)?;
        self.stats.directories_crawled += 1;
        self.stats.watches_placed += 1;
        for entry in fs.read_dir(dir)? {
            if entry.file_type == FileType::Directory {
                let child = simfs::join_path(dir, &entry.name);
                self.crawl(fs, &child)?;
            } else {
                self.stats.files_enumerated += 1;
            }
        }
        Ok(())
    }

    /// Drains pending events, transparently placing watches on newly
    /// created directories under a watched root — and, like Watchdog's
    /// catch-up scan, synthesizing `Created` events for entries that
    /// appeared inside a new directory before its watch landed (the
    /// inotify race window).
    ///
    /// Raw events are returned in order, with synthetic catch-up events
    /// inserted directly after the directory-creation event that
    /// prompted the scan. The overflow marker passes through unchanged.
    pub fn poll(&mut self, fs: &SimFs) -> Vec<InotifyEvent> {
        let events = self.inotify.read_events();
        let mut out = Vec::with_capacity(events.len());
        for ev in events {
            let rescan = ev.is_dir
                && (ev.kind == EventKind::Created || ev.kind == EventKind::Moved)
                && self.under_root(&ev.path);
            let path = ev.path.clone();
            let time = ev.time;
            out.push(ev);
            if rescan {
                // The directory may already have been deleted again; a
                // failed crawl is then simply skipped.
                let mut found = Vec::new();
                let _ = self.crawl_and_collect(fs, &path, time, &mut found);
                out.extend(found);
            }
        }
        out
    }

    /// Crawls a newly visible directory, watching it and synthesizing
    /// `Created` events for its pre-existing contents.
    fn crawl_and_collect(
        &mut self,
        fs: &SimFs,
        dir: &Path,
        time: sdci_types::SimTime,
        out: &mut Vec<InotifyEvent>,
    ) -> Result<(), InotifyError> {
        let wd = self.inotify.add_watch(fs, dir)?;
        self.stats.directories_crawled += 1;
        self.stats.watches_placed += 1;
        for entry in fs.read_dir(dir)? {
            let child = simfs::join_path(dir, &entry.name);
            let is_dir = entry.file_type == FileType::Directory;
            out.push(InotifyEvent {
                wd,
                kind: EventKind::Created,
                name: entry.name.clone(),
                path: child.clone(),
                is_dir,
                time,
                cookie: 0,
                overflow: false,
            });
            if is_dir {
                self.crawl_and_collect(fs, &child, time, out)?;
            } else {
                self.stats.files_enumerated += 1;
            }
        }
        Ok(())
    }

    fn under_root(&self, path: &Path) -> bool {
        self.roots.iter().any(|r| path.starts_with(r))
    }

    /// Crawl/setup statistics so far.
    pub fn stats(&self) -> CrawlStats {
        self.stats
    }

    /// The underlying instance (for watch counts and kernel memory).
    pub fn inotify(&self) -> &Inotify {
        &self.inotify
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdci_types::SimTime;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn tree() -> SimFs {
        let mut fs = SimFs::new();
        fs.mkdir_all("/data/a/x", SimTime::EPOCH).unwrap();
        fs.mkdir_all("/data/b", SimTime::EPOCH).unwrap();
        fs.create("/data/a/f1", SimTime::EPOCH).unwrap();
        fs.create("/data/a/x/f2", SimTime::EPOCH).unwrap();
        fs
    }

    #[test]
    fn watch_tree_crawls_every_directory() {
        let mut fs = tree();
        let ino = Inotify::attach(&mut fs);
        let mut rw = RecursiveWatcher::new(ino);
        rw.watch_tree(&fs, "/data").unwrap();
        // /data, /data/a, /data/a/x, /data/b
        assert_eq!(rw.stats().directories_crawled, 4);
        assert_eq!(rw.stats().files_enumerated, 2);
        assert_eq!(rw.inotify().watch_count(), 4);
        assert_eq!(rw.stats().kernel_memory(), ByteSize::from_kib(4));
    }

    #[test]
    fn deep_events_are_seen_after_setup() {
        let mut fs = tree();
        let ino = Inotify::attach(&mut fs);
        let mut rw = RecursiveWatcher::new(ino);
        rw.watch_tree(&fs, "/data").unwrap();
        fs.create("/data/a/x/new", t(1)).unwrap();
        let evs = rw.poll(&fs);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].path, PathBuf::from("/data/a/x/new"));
    }

    #[test]
    fn new_directories_get_watched_on_poll() {
        let mut fs = tree();
        let ino = Inotify::attach(&mut fs);
        let mut rw = RecursiveWatcher::new(ino);
        rw.watch_tree(&fs, "/data").unwrap();
        fs.mkdir("/data/b/fresh", t(1)).unwrap();
        rw.poll(&fs);
        assert_eq!(rw.inotify().watch_count(), 5);
        fs.create("/data/b/fresh/inside", t(2)).unwrap();
        let evs = rw.poll(&fs);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].path, PathBuf::from("/data/b/fresh/inside"));
    }

    #[test]
    fn race_window_is_covered_by_catch_up_scan() {
        // The inotify race: files created inside a brand-new directory
        // before userspace reacts produce no kernel events. Watchdog
        // (and this watcher) paper over it by scanning the new directory
        // and synthesizing Created events for what it finds.
        let mut fs = tree();
        let ino = Inotify::attach(&mut fs);
        let mut rw = RecursiveWatcher::new(ino);
        rw.watch_tree(&fs, "/data").unwrap();
        fs.mkdir("/data/b/raced", t(1)).unwrap();
        fs.create("/data/b/raced/recovered", t(1)).unwrap(); // before poll()
        let evs = rw.poll(&fs);
        assert_eq!(evs.len(), 2, "mkdir event + synthesized create");
        assert!(evs[0].is_dir);
        assert_eq!(evs[1].path, PathBuf::from("/data/b/raced/recovered"));
        assert_eq!(evs[1].kind, EventKind::Created);
        // Coverage is now live for subsequent events.
        fs.create("/data/b/raced/seen", t(2)).unwrap();
        assert_eq!(rw.poll(&fs).len(), 1);
    }

    #[test]
    fn catch_up_scan_recurses_into_nested_new_dirs() {
        let mut fs = tree();
        let ino = Inotify::attach(&mut fs);
        let mut rw = RecursiveWatcher::new(ino);
        rw.watch_tree(&fs, "/data").unwrap();
        fs.mkdir_all("/data/b/x/y", t(1)).unwrap();
        fs.create("/data/b/x/y/deep", t(1)).unwrap();
        let evs = rw.poll(&fs);
        // mkdir /data/b/x arrives live; /data/b/x/y and deep were
        // created before any watch covered them, so both arrive as
        // synthesized creates — deep exactly once.
        let deep: Vec<_> = evs.iter().filter(|e| e.path == Path::new("/data/b/x/y/deep")).collect();
        assert_eq!(deep.len(), 1);
        // And future deep events are live.
        fs.create("/data/b/x/y/later", t(2)).unwrap();
        assert_eq!(rw.poll(&fs).len(), 1);
    }

    #[test]
    fn events_outside_roots_do_not_extend_coverage() {
        let mut fs = tree();
        fs.mkdir("/other", SimTime::EPOCH).unwrap();
        let ino = Inotify::attach(&mut fs);
        let mut rw = RecursiveWatcher::new(ino.clone());
        rw.watch_tree(&fs, "/data").unwrap();
        ino.add_watch(&fs, "/other").unwrap(); // direct, non-recursive
        fs.mkdir("/other/sub", t(1)).unwrap();
        rw.poll(&fs);
        fs.create("/other/sub/f", t(2)).unwrap();
        assert!(rw.poll(&fs).is_empty(), "no recursive coverage outside roots");
    }

    #[test]
    fn setup_cost_scales_with_directory_count() {
        let mut fs = SimFs::new();
        for i in 0..100 {
            fs.mkdir_all(format!("/big/d{i}"), SimTime::EPOCH).unwrap();
        }
        let ino = Inotify::attach(&mut fs);
        let mut rw = RecursiveWatcher::new(ino);
        rw.watch_tree(&fs, "/big").unwrap();
        assert_eq!(rw.stats().directories_crawled, 101);
        assert_eq!(rw.stats().kernel_memory(), ByteSize::from_kib(101));
    }
}
