//! Error type for the inotify simulator.

use simfs::FsError;
use std::fmt;
use std::path::PathBuf;

/// Errors returned by [`Inotify`](crate::Inotify) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InotifyError {
    /// The per-instance watch limit (`max_user_watches`) was reached —
    /// the condition the paper's §3 memory analysis is about.
    WatchLimitReached {
        /// The configured limit.
        limit: usize,
    },
    /// Watches can only be placed on directories.
    NotADirectory(PathBuf),
    /// A namespace lookup failed.
    Fs(FsError),
}

impl fmt::Display for InotifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InotifyError::WatchLimitReached { limit } => {
                write!(f, "watch limit reached ({limit} watches)")
            }
            InotifyError::NotADirectory(p) => write!(f, "not a directory: {}", p.display()),
            InotifyError::Fs(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InotifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InotifyError::Fs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FsError> for InotifyError {
    fn from(e: FsError) -> Self {
        InotifyError::Fs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            InotifyError::WatchLimitReached { limit: 8 }.to_string(),
            "watch limit reached (8 watches)"
        );
        let e: InotifyError = FsError::NotFound("/x".into()).into();
        assert!(e.to_string().contains("/x"));
    }
}
