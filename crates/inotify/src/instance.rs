//! The kernel-side inotify instance.

use crate::InotifyError;
use parking_lot::Mutex;
use sdci_types::{ByteSize, EventKind, SimTime};
use simfs::{FileType, FsOp, FsOpKind, InodeId, SimFs};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Identifies one watch within an [`Inotify`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WatchDescriptor(u32);

impl WatchDescriptor {
    /// The raw descriptor number.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for WatchDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wd{}", self.0)
    }
}

/// Tunables mirroring `/proc/sys/fs/inotify/*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InotifyLimits {
    /// Maximum watches per instance (`max_user_watches`; Linux default
    /// 524,288 — the figure in §3 of the paper).
    pub max_user_watches: usize,
    /// Maximum queued events before overflow (`max_queued_events`;
    /// Linux default 16,384).
    pub max_queued_events: usize,
    /// Kernel memory pinned per watch (≈1 KiB on 64-bit, per §3).
    pub bytes_per_watch: ByteSize,
}

impl Default for InotifyLimits {
    fn default() -> Self {
        InotifyLimits {
            max_user_watches: 524_288,
            max_queued_events: 16_384,
            bytes_per_watch: ByteSize::from_kib(1),
        }
    }
}

/// One delivered event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InotifyEvent {
    /// The watch that produced the event.
    pub wd: WatchDescriptor,
    /// High-level kind (created/modified/moved/deleted/attrib).
    pub kind: EventKind,
    /// Entry name within the watched directory.
    pub name: String,
    /// Absolute path of the affected object.
    pub path: PathBuf,
    /// True for directory events.
    pub is_dir: bool,
    /// Event time.
    pub time: SimTime,
    /// Pairs the two halves of a rename (`IN_MOVED_FROM`/`IN_MOVED_TO`
    /// share a cookie); 0 for non-move events.
    pub cookie: u32,
    /// True on the synthetic event that signals the queue overflowed and
    /// events were lost (`IN_Q_OVERFLOW`).
    pub overflow: bool,
}

/// Counters for one instance.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InotifyStats {
    /// Events delivered into the queue.
    pub delivered: u64,
    /// Events dropped because the queue was full.
    pub dropped: u64,
    /// `add_watch` calls that succeeded.
    pub watches_added: u64,
}

#[derive(Default)]
struct State {
    limits: InotifyLimits,
    watches: HashMap<InodeId, WatchDescriptor>,
    watch_dirs: HashMap<WatchDescriptor, PathBuf>,
    next_wd: u32,
    next_cookie: u32,
    /// Per-watch event-kind masks (absent = all kinds, `IN_ALL_EVENTS`).
    masks: HashMap<WatchDescriptor, Vec<EventKind>>,
    queue: Vec<InotifyEvent>,
    overflowed: bool,
    stats: InotifyStats,
}

impl State {
    fn push(&mut self, event: InotifyEvent) {
        if !event.overflow {
            if let Some(mask) = self.masks.get(&event.wd) {
                if !mask.contains(&event.kind) {
                    return; // masked out, as if the watch never asked
                }
            }
        }
        if self.queue.len() >= self.limits.max_queued_events {
            self.stats.dropped += 1;
            if !self.overflowed {
                self.overflowed = true;
                // The overflow marker itself replaces the last slot's
                // worth of headroom; real inotify appends IN_Q_OVERFLOW.
                self.queue.push(InotifyEvent {
                    wd: WatchDescriptor(0),
                    kind: EventKind::Other,
                    name: String::new(),
                    path: PathBuf::new(),
                    is_dir: false,
                    time: event.time,
                    cookie: 0,
                    overflow: true,
                });
            }
            return;
        }
        self.stats.delivered += 1;
        self.queue.push(event);
    }

    fn on_op(&mut self, op: &FsOp) {
        // Moves produce two events sharing a cookie: MovedFrom at the
        // source directory, MovedTo at the destination (both
        // EventKind::Moved here, as in Watchdog).
        let mut cookie = 0u32;
        if op.kind == FsOpKind::Rename {
            self.next_cookie += 1;
            cookie = self.next_cookie;
        }
        if let (FsOpKind::Rename, Some(src_parent), Some(src_path)) =
            (op.kind, op.src_parent, op.src_path.as_ref())
        {
            if let Some(&wd) = self.watches.get(&src_parent) {
                let name = src_path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                self.push(InotifyEvent {
                    wd,
                    kind: EventKind::Moved,
                    name,
                    path: src_path.clone(),
                    is_dir: op.is_dir,
                    time: op.time,
                    cookie,
                    overflow: false,
                });
            }
        }
        let kind = match op.kind {
            FsOpKind::Create | FsOpKind::Mkdir | FsOpKind::Symlink | FsOpKind::HardLink => {
                EventKind::Created
            }
            FsOpKind::Unlink { .. } | FsOpKind::Rmdir => EventKind::Deleted,
            FsOpKind::Rename => EventKind::Moved,
            FsOpKind::Write | FsOpKind::Truncate => EventKind::Modified,
            FsOpKind::SetAttr | FsOpKind::SetXattr => EventKind::AttribChanged,
        };
        if let Some(&wd) = self.watches.get(&op.parent) {
            self.push(InotifyEvent {
                wd,
                kind,
                name: op.name.clone(),
                path: op.path.clone(),
                is_dir: op.is_dir,
                time: op.time,
                cookie,
                overflow: false,
            });
        }
        // A removed/renamed directory invalidates its own watch.
        if op.is_dir && matches!(op.kind, FsOpKind::Rmdir) {
            if let Some(wd) = self.watches.remove(&op.inode) {
                self.watch_dirs.remove(&wd);
            }
        }
    }
}

/// A simulated inotify instance attached to one [`SimFs`].
///
/// Cloning the handle shares the same instance.
#[derive(Clone)]
pub struct Inotify {
    state: Arc<Mutex<State>>,
}

impl fmt::Debug for Inotify {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Inotify")
            .field("watches", &st.watches.len())
            .field("queued", &st.queue.len())
            .finish()
    }
}

impl Inotify {
    /// Creates an instance with default limits and attaches it to `fs`.
    pub fn attach(fs: &mut SimFs) -> Inotify {
        Inotify::attach_with_limits(fs, InotifyLimits::default())
    }

    /// Creates an instance with explicit limits and attaches it to `fs`.
    pub fn attach_with_limits(fs: &mut SimFs, limits: InotifyLimits) -> Inotify {
        let state = Arc::new(Mutex::new(State { limits, next_wd: 1, ..State::default() }));
        let hook = Arc::clone(&state);
        fs.add_observer(move |op: &FsOp| hook.lock().on_op(op));
        Inotify { state }
    }

    /// Places a watch on the directory at `path`, returning its
    /// descriptor. Watching an already-watched directory returns the
    /// existing descriptor (as in Linux).
    ///
    /// # Errors
    ///
    /// [`InotifyError::WatchLimitReached`] at the `max_user_watches`
    /// limit, [`InotifyError::NotADirectory`] for non-directories, and
    /// lookup failures.
    pub fn add_watch(
        &self,
        fs: &SimFs,
        path: impl AsRef<Path>,
    ) -> Result<WatchDescriptor, InotifyError> {
        self.add_watch_masked(fs, path, None)
    }

    /// Places a watch restricted to the given event kinds (the
    /// `IN_CREATE | IN_DELETE | ...` mask of the real API). Re-watching
    /// an already-watched directory replaces its mask, as `inotify_add_watch`
    /// does.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Inotify::add_watch`].
    pub fn add_watch_mask(
        &self,
        fs: &SimFs,
        path: impl AsRef<Path>,
        kinds: &[EventKind],
    ) -> Result<WatchDescriptor, InotifyError> {
        self.add_watch_masked(fs, path, Some(kinds.to_vec()))
    }

    fn add_watch_masked(
        &self,
        fs: &SimFs,
        path: impl AsRef<Path>,
        mask: Option<Vec<EventKind>>,
    ) -> Result<WatchDescriptor, InotifyError> {
        let norm = simfs::normalize_path(path.as_ref())?;
        let inode = fs.lookup(&norm)?;
        if fs.stat_inode(inode).file_type != FileType::Directory {
            return Err(InotifyError::NotADirectory(norm));
        }
        let mut st = self.state.lock();
        if let Some(&wd) = st.watches.get(&inode) {
            match mask {
                Some(kinds) => {
                    st.masks.insert(wd, kinds);
                }
                None => {
                    st.masks.remove(&wd);
                }
            }
            return Ok(wd);
        }
        if st.watches.len() >= st.limits.max_user_watches {
            return Err(InotifyError::WatchLimitReached { limit: st.limits.max_user_watches });
        }
        let wd = WatchDescriptor(st.next_wd);
        st.next_wd += 1;
        st.watches.insert(inode, wd);
        st.watch_dirs.insert(wd, norm);
        if let Some(kinds) = mask {
            st.masks.insert(wd, kinds);
        }
        st.stats.watches_added += 1;
        Ok(wd)
    }

    /// Removes a watch. Unknown descriptors are a no-op.
    pub fn rm_watch(&self, wd: WatchDescriptor) {
        let mut st = self.state.lock();
        if st.watch_dirs.remove(&wd).is_some() {
            st.watches.retain(|_, w| *w != wd);
            st.masks.remove(&wd);
        }
    }

    /// Drains all queued events, clearing any overflow condition.
    pub fn read_events(&self) -> Vec<InotifyEvent> {
        let mut st = self.state.lock();
        st.overflowed = false;
        std::mem::take(&mut st.queue)
    }

    /// The directory a descriptor watches, if it is still valid.
    pub fn watch_dir(&self, wd: WatchDescriptor) -> Option<PathBuf> {
        self.state.lock().watch_dirs.get(&wd).cloned()
    }

    /// Number of active watches.
    pub fn watch_count(&self) -> usize {
        self.state.lock().watches.len()
    }

    /// Unswappable kernel memory currently pinned by watches (§3: ~1 KiB
    /// per watch).
    pub fn kernel_memory(&self) -> ByteSize {
        let st = self.state.lock();
        st.limits.bytes_per_watch.saturating_mul(st.watches.len() as u64)
    }

    /// Instance counters.
    pub fn stats(&self) -> InotifyStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn setup() -> (SimFs, Inotify) {
        let mut fs = SimFs::new();
        fs.mkdir("/watched", SimTime::EPOCH).unwrap();
        fs.mkdir("/elsewhere", SimTime::EPOCH).unwrap();
        let ino = Inotify::attach(&mut fs);
        (fs, ino)
    }

    #[test]
    fn events_only_from_watched_dirs() {
        let (mut fs, ino) = setup();
        ino.add_watch(&fs, "/watched").unwrap();
        fs.create("/watched/a", t(1)).unwrap();
        fs.create("/elsewhere/b", t(1)).unwrap();
        let evs = ino.read_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].path, PathBuf::from("/watched/a"));
    }

    #[test]
    fn watch_is_not_recursive() {
        let (mut fs, ino) = setup();
        ino.add_watch(&fs, "/watched").unwrap();
        fs.mkdir("/watched/sub", t(1)).unwrap();
        fs.create("/watched/sub/deep", t(2)).unwrap();
        let evs = ino.read_events();
        assert_eq!(evs.len(), 1, "only the mkdir in the watched dir is seen");
        assert_eq!(evs[0].kind, EventKind::Created);
        assert!(evs[0].is_dir);
    }

    #[test]
    fn event_kinds_map() {
        let (mut fs, ino) = setup();
        ino.add_watch(&fs, "/watched").unwrap();
        fs.create("/watched/f", t(1)).unwrap();
        fs.write("/watched/f", 10, t(2)).unwrap();
        fs.set_attr("/watched/f", 0o600, t(3)).unwrap();
        fs.unlink("/watched/f", t(4)).unwrap();
        let kinds: Vec<EventKind> = ino.read_events().into_iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Created,
                EventKind::Modified,
                EventKind::AttribChanged,
                EventKind::Deleted
            ]
        );
    }

    #[test]
    fn rename_emits_from_and_to() {
        let (mut fs, ino) = setup();
        ino.add_watch(&fs, "/watched").unwrap();
        ino.add_watch(&fs, "/elsewhere").unwrap();
        fs.create("/watched/f", t(1)).unwrap();
        fs.rename("/watched/f", "/elsewhere/g", t(2)).unwrap();
        let evs = ino.read_events();
        assert_eq!(evs.len(), 3); // create + moved-from + moved-to
        assert_eq!(evs[1].kind, EventKind::Moved);
        assert_eq!(evs[1].path, PathBuf::from("/watched/f"));
        assert_eq!(evs[2].kind, EventKind::Moved);
        assert_eq!(evs[2].path, PathBuf::from("/elsewhere/g"));
        assert_ne!(evs[1].cookie, 0, "move halves carry a cookie");
        assert_eq!(evs[1].cookie, evs[2].cookie, "halves share the cookie");
        assert_eq!(evs[0].cookie, 0, "non-moves have no cookie");
    }

    #[test]
    fn duplicate_watch_returns_same_wd() {
        let (fs, ino) = setup();
        let a = ino.add_watch(&fs, "/watched").unwrap();
        let b = ino.add_watch(&fs, "/watched").unwrap();
        assert_eq!(a, b);
        assert_eq!(ino.watch_count(), 1);
    }

    #[test]
    fn watch_limit_enforced() {
        let mut fs = SimFs::new();
        for i in 0..5 {
            fs.mkdir(format!("/d{i}"), t(0)).unwrap();
        }
        let ino = Inotify::attach_with_limits(
            &mut fs,
            InotifyLimits { max_user_watches: 3, ..InotifyLimits::default() },
        );
        for i in 0..3 {
            ino.add_watch(&fs, format!("/d{i}")).unwrap();
        }
        assert!(matches!(
            ino.add_watch(&fs, "/d3"),
            Err(InotifyError::WatchLimitReached { limit: 3 })
        ));
    }

    #[test]
    fn kernel_memory_is_1kib_per_watch() {
        let (fs, ino) = setup();
        ino.add_watch(&fs, "/watched").unwrap();
        ino.add_watch(&fs, "/elsewhere").unwrap();
        assert_eq!(ino.kernel_memory(), ByteSize::from_kib(2));
    }

    #[test]
    fn queue_overflow_drops_and_marks() {
        let mut fs = SimFs::new();
        fs.mkdir("/w", t(0)).unwrap();
        let ino = Inotify::attach_with_limits(
            &mut fs,
            InotifyLimits { max_queued_events: 5, ..InotifyLimits::default() },
        );
        ino.add_watch(&fs, "/w").unwrap();
        for i in 0..10 {
            fs.create(format!("/w/f{i}"), t(i)).unwrap();
        }
        let evs = ino.read_events();
        assert_eq!(evs.len(), 6, "5 events + 1 overflow marker");
        assert!(evs.last().unwrap().overflow);
        assert_eq!(ino.stats().dropped, 5);
        // Draining clears the overflow condition.
        fs.create("/w/late", t(20)).unwrap();
        let evs = ino.read_events();
        assert_eq!(evs.len(), 1);
        assert!(!evs[0].overflow);
    }

    #[test]
    fn rm_watch_stops_events() {
        let (mut fs, ino) = setup();
        let wd = ino.add_watch(&fs, "/watched").unwrap();
        ino.rm_watch(wd);
        fs.create("/watched/f", t(1)).unwrap();
        assert!(ino.read_events().is_empty());
        assert_eq!(ino.watch_count(), 0);
        assert_eq!(ino.watch_dir(wd), None);
    }

    #[test]
    fn rmdir_invalidates_watch() {
        let (mut fs, ino) = setup();
        fs.mkdir("/watched/sub", t(0)).unwrap();
        let wd = ino.add_watch(&fs, "/watched/sub").unwrap();
        fs.rmdir("/watched/sub", t(1)).unwrap();
        assert_eq!(ino.watch_count(), 0);
        assert_eq!(ino.watch_dir(wd), None);
    }

    #[test]
    fn masked_watch_filters_kinds() {
        let (mut fs, ino) = setup();
        ino.add_watch_mask(&fs, "/watched", &[EventKind::Created, EventKind::Deleted]).unwrap();
        fs.create("/watched/f", t(1)).unwrap();
        fs.write("/watched/f", 10, t(2)).unwrap(); // masked out
        fs.set_attr("/watched/f", 0o600, t(3)).unwrap(); // masked out
        fs.unlink("/watched/f", t(4)).unwrap();
        let kinds: Vec<EventKind> = ino.read_events().into_iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![EventKind::Created, EventKind::Deleted]);
    }

    #[test]
    fn rewatching_replaces_mask() {
        let (mut fs, ino) = setup();
        let wd1 = ino.add_watch_mask(&fs, "/watched", &[EventKind::Created]).unwrap();
        // Re-watch with full coverage (as inotify_add_watch would).
        let wd2 = ino.add_watch(&fs, "/watched").unwrap();
        assert_eq!(wd1, wd2);
        fs.create("/watched/f", t(1)).unwrap();
        fs.write("/watched/f", 1, t(2)).unwrap();
        assert_eq!(ino.read_events().len(), 2, "mask was cleared");
    }

    #[test]
    fn watch_on_file_fails() {
        let (mut fs, ino) = setup();
        fs.create("/watched/f", t(0)).unwrap();
        assert!(matches!(ino.add_watch(&fs, "/watched/f"), Err(InotifyError::NotADirectory(_))));
    }
}
