//! The sharded-tier fabric: shard-map distribution, collector-side
//! per-event routing, and the scatter-gather query front-end.
//!
//! A sharded deployment partitions the aggregator tier by the
//! [`ShardMap`] (see `sdci_core::cluster`): every role fetches the map
//! from the front-end's [`MapServer`], so all of them agree on who owns
//! which path root. Three pieces live here:
//!
//! * [`MapServer`] / [`fetch_map`] / [`add_shard`] — the map service.
//!   The server is the single writer of the map; `AddShard` bumps the
//!   version and every later `GetMap` returns the new table.
//! * [`ShardRouter`] — a collector-side publisher that keeps one
//!   [`TcpPush`] pipe per shard and routes each event by
//!   [`ShardMap::route_event`]. [`ShardRouter::update_map`] performs
//!   the cutover protocol: drain every in-flight push to the old
//!   owners first, and only then swap the table — a drain timeout
//!   leaves the old map in place so the caller can retry, which is
//!   what "the cutover is not acked" means on the wire.
//! * [`ScatterStore`] — a [`StoreReader`] that fans a query out to
//!   every shard's store RPC, merges the legs in sequence order, and
//!   answers even when some shards are down (a *degraded* result,
//!   counted per shard), so `RemoteStore` consumers still see one
//!   logical store.
//!
//! Shards keep independent sequence spaces, so the merged stream is
//! ordered by `(seq, shard slot)` — within one shard (and therefore
//! within one path root) order is exact, across shards it is a stable
//! interleave.

use crate::conn::NetConfig;
use crate::faulted::{conn_faults, spawn_worker, FaultedWriter};
use crate::pipe::TcpPush;
use crate::store_rpc::RemoteStore;
use crate::wire::{write_msg, FrameReader};
use sdci_core::{
    merge_seq_ordered, EventBackend, SequencedEvent, ShardId, ShardMap, StoreError, StoreQuery,
};
use sdci_mq::transport::{Publish, PublishOutcome};
use sdci_obs::metrics::Counter;
use sdci_types::{FileEvent, TraceContext};
use serde::{Deserialize, Serialize};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Port-trio offset of a shard's store RPC relative to its base (push)
/// address.
pub const STORE_RPC_OFFSET: u16 = 2;

/// One cluster-RPC message; requests and responses share the enum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClusterRpc {
    /// Client → server: send me the current shard map.
    GetMap,
    /// Server → client: the current map (also the reply to `AddShard`).
    Map {
        /// The versioned partition table.
        map: ShardMap,
    },
    /// Client → server: append a shard at `addr` and bump the version.
    AddShard {
        /// Base address of the new shard's port trio.
        addr: String,
    },
    /// Liveness probe; the server echoes it.
    Ping,
}

/// Map-service traffic is rare, tiny control plane — it stays JSON at
/// every protocol version, so `nc` against a map server keeps working.
impl crate::wire::BinFrame for ClusterRpc {
    fn encode_bin(&self, _buf: &mut Vec<u8>) -> bool {
        false
    }

    fn decode_bin(_body: &[u8]) -> io::Result<Self> {
        Err(crate::wire::invalid("ClusterRpc has no binary form"))
    }
}

/// Resolves the store-RPC address of a shard whose port trio is based
/// at `base` (e.g. `"127.0.0.1:7070"` → port 7072).
///
/// # Errors
///
/// Fails with `InvalidInput` when `base` is not a socket address.
pub fn shard_store_addr(base: &str) -> io::Result<SocketAddr> {
    let mut addr: SocketAddr = base.parse().map_err(|e| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("shard addr {base:?}: {e}"))
    })?;
    addr.set_port(addr.port() + STORE_RPC_OFFSET);
    Ok(addr)
}

fn parse_addr(base: &str) -> io::Result<SocketAddr> {
    base.parse().map_err(|e| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("shard addr {base:?}: {e}"))
    })
}

// ---------------------------------------------------------------------------
// Map service
// ---------------------------------------------------------------------------

/// Serves the authoritative [`ShardMap`] over the wire.
///
/// The server is the map's single writer: `AddShard` requests are
/// serialized through its lock, each one producing a new version that
/// every subsequent `GetMap` (from any role) observes. Collectors poll
/// the map on reconnect; there is no push channel — a stale reader
/// keeps routing by its old map, which is consistent, just not yet
/// rebalanced.
pub struct MapServer {
    addr: SocketAddr,
    map: Arc<parking_lot::Mutex<ShardMap>>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
    fetches: Arc<AtomicU64>,
}

impl std::fmt::Debug for MapServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapServer").field("addr", &self.addr).finish()
    }
}

impl MapServer {
    /// Binds `addr` and serves `map`.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure, including a failure to
    /// spawn the accept thread.
    pub fn bind(addr: impl ToSocketAddrs, map: ShardMap, cfg: NetConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let map = Arc::new(parking_lot::Mutex::new(map));
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let fetches = Arc::new(AtomicU64::new(0));
        let accept = {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let fetches = Arc::clone(&fetches);
            spawn_worker(
                format!("sdci-net-map-{}", addr.port()),
                "net.cluster.spawn_accept",
                move || map_accept_loop(listener, map, cfg, stop, conns, fetches),
            )?
        };
        Ok(MapServer { addr, map, stop, accept: Some(accept), conns, fetches })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current map.
    pub fn map(&self) -> ShardMap {
        self.map.lock().clone()
    }

    /// `GetMap` requests answered so far.
    pub fn fetches(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    /// Stops accepting and joins every connection thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        let handles: Vec<JoinHandle<()>> = self.conns.lock().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

impl Drop for MapServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

fn map_accept_loop(
    listener: TcpListener,
    map: Arc<parking_lot::Mutex<ShardMap>>,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
    conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
    fetches: Arc<AtomicU64>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let map = Arc::clone(&map);
                let cfg = cfg.clone();
                let stop = Arc::clone(&stop);
                let fetches = Arc::clone(&fetches);
                let spawned =
                    spawn_worker("sdci-net-map-conn".into(), "net.cluster.spawn_conn", move || {
                        serve_map_client(stream, map, cfg, stop, fetches)
                    });
                match spawned {
                    Ok(handle) => {
                        let mut guard = conns.lock();
                        guard.retain(|h| !h.is_finished());
                        guard.push(handle);
                    }
                    Err(e) => {
                        sdci_obs::error!("map conn thread spawn failed; dropping connection"; peer = peer, error = e.to_string());
                        sdci_obs::static_metric!(counter, "sdci_net_spawn_failures_total").inc();
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_map_client(
    stream: TcpStream,
    map: Arc<parking_lot::Mutex<ShardMap>>,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
    fetches: Arc<AtomicU64>,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(cfg.heartbeat)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let (send_faults, recv_faults) = conn_faults(&cfg);
    let mut reader = FrameReader::with_faults(read_half, recv_faults);
    let mut writer = FaultedWriter::new(stream, send_faults);
    while !stop.load(Ordering::Relaxed) {
        match reader.read_msg::<ClusterRpc>() {
            Ok(ClusterRpc::GetMap) => {
                let current = map.lock().clone();
                fetches.fetch_add(1, Ordering::Relaxed);
                sdci_obs::static_metric!(counter, "sdci_cluster_map_fetches_total").inc();
                if write_msg(&mut writer, &ClusterRpc::Map { map: current }).is_err() {
                    return;
                }
            }
            Ok(ClusterRpc::AddShard { addr }) => {
                let updated = {
                    let mut guard = map.lock();
                    let next = guard.with_shard(addr.as_str());
                    *guard = next.clone();
                    next
                };
                sdci_obs::static_metric!(counter, "sdci_cluster_shards_added_total").inc();
                sdci_obs::info!("shard added to the map"; addr = addr, version = updated.version(),);
                if write_msg(&mut writer, &ClusterRpc::Map { map: updated }).is_err() {
                    return;
                }
            }
            Ok(ClusterRpc::Ping) => {
                if write_msg(&mut writer, &ClusterRpc::Ping).is_err() {
                    return;
                }
            }
            Ok(ClusterRpc::Map { .. }) => {} // nonsensical from a client; ignore
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                // Map clients poll; idleness is fine.
            }
            Err(_) => return,
        }
    }
}

/// One-shot request/response against a [`MapServer`].
fn map_round_trip(addr: SocketAddr, cfg: &NetConfig, req: &ClusterRpc) -> io::Result<ShardMap> {
    let stream = cfg.connect(addr)?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(cfg.heartbeat))?;
    let read_half = stream.try_clone()?;
    let (send_faults, recv_faults) = conn_faults(cfg);
    let mut reader = FrameReader::with_faults(read_half, recv_faults);
    let mut writer = FaultedWriter::new(stream, send_faults);
    write_msg(&mut writer, req)?;
    let deadline = Instant::now() + cfg.liveness;
    loop {
        match reader.read_msg::<ClusterRpc>() {
            Ok(ClusterRpc::Map { map }) => return Ok(map),
            Ok(_) => {} // a stray Ping echo; keep waiting
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "map request exceeded the liveness window",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Fetches the current [`ShardMap`] from the [`MapServer`] at `addr`.
///
/// # Errors
///
/// Propagates connect and round-trip failures; the caller decides
/// whether to retry or keep routing by a previously fetched map.
pub fn fetch_map(addr: SocketAddr, cfg: &NetConfig) -> io::Result<ShardMap> {
    map_round_trip(addr, cfg, &ClusterRpc::GetMap)
}

/// Asks the [`MapServer`] at `addr` to append a shard based at
/// `shard_addr`, returning the bumped map.
///
/// # Errors
///
/// Propagates connect and round-trip failures. The request is not
/// idempotent — on a timed-out reply the caller should `fetch_map`
/// before retrying.
pub fn add_shard(addr: SocketAddr, shard_addr: &str, cfg: &NetConfig) -> io::Result<ShardMap> {
    map_round_trip(addr, cfg, &ClusterRpc::AddShard { addr: shard_addr.to_string() })
}

// ---------------------------------------------------------------------------
// Collector-side routing
// ---------------------------------------------------------------------------

/// One live pipe to a shard, with its routing tally.
struct ShardPipe {
    id: ShardId,
    addr: String,
    push: TcpPush<FileEvent>,
    routed: Counter,
}

impl Clone for ShardPipe {
    fn clone(&self) -> Self {
        ShardPipe {
            id: self.id,
            addr: self.addr.clone(),
            push: self.push.clone(),
            routed: self.routed.clone(),
        }
    }
}

impl ShardPipe {
    fn connect(id: ShardId, addr: &str, client: &str, cfg: &NetConfig) -> io::Result<ShardPipe> {
        let socket = parse_addr(addr)?;
        // The per-shard client id keys the shard's dedup marks, so it
        // must be stable across reconnects *and* map versions.
        let push = TcpPush::connect(socket, format!("{client}@s{id}"), cfg.clone());
        let routed = sdci_obs::registry()
            .counter_with("sdci_cluster_routed_total", &[("shard", &id.to_string())]);
        Ok(ShardPipe { id, addr: addr.to_string(), push, routed })
    }
}

struct RouterState {
    map: ShardMap,
    pipes: Vec<ShardPipe>,
}

struct RouterInner {
    client: String,
    cfg: NetConfig,
    state: parking_lot::RwLock<RouterState>,
    cutovers: AtomicU64,
}

/// A collector-side event router over a sharded aggregator tier.
///
/// Maintains one lossless [`TcpPush`] pipe per shard and routes every
/// published event to its owner by [`ShardMap::route_event`]. Clones
/// share the pipes and the map, so a multi-threaded collector routes
/// consistently.
///
/// Map changes go through [`ShardRouter::update_map`], which implements
/// the drain-before-cutover protocol; see the module docs.
pub struct ShardRouter {
    inner: Arc<RouterInner>,
}

impl Clone for ShardRouter {
    fn clone(&self) -> Self {
        ShardRouter { inner: Arc::clone(&self.inner) }
    }
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.state.read();
        f.debug_struct("ShardRouter")
            .field("client", &self.inner.client)
            .field("version", &state.map.version())
            .field("shards", &state.pipes.len())
            .finish()
    }
}

impl ShardRouter {
    /// Connects one supervised pipe to every shard in `map`. `client`
    /// is the stable collector identity; each pipe extends it with the
    /// shard id (`"{client}@s{id}"`) so per-shard dedup marks never
    /// collide.
    ///
    /// # Errors
    ///
    /// Fails only on an unparseable shard address — connecting itself
    /// is supervised and happens in the background.
    pub fn connect(map: ShardMap, client: impl Into<String>, cfg: NetConfig) -> io::Result<Self> {
        let client = client.into();
        let pipes = map
            .shards()
            .iter()
            .map(|s| ShardPipe::connect(s.id, &s.addr, &client, &cfg))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(ShardRouter {
            inner: Arc::new(RouterInner {
                client,
                cfg,
                state: parking_lot::RwLock::new(RouterState { map, pipes }),
                cutovers: AtomicU64::new(0),
            }),
        })
    }

    /// The version of the map currently routing traffic.
    pub fn map_version(&self) -> u64 {
        self.inner.state.read().map.version()
    }

    /// Completed map cutovers.
    pub fn cutovers(&self) -> u64 {
        self.inner.cutovers.load(Ordering::Relaxed)
    }

    /// Events routed to each shard so far, in slot order.
    pub fn routed(&self) -> Vec<(ShardId, u64)> {
        self.inner.state.read().pipes.iter().map(|p| (p.id, p.routed.get())).collect()
    }

    /// Waits until every routed event has been acknowledged by its
    /// shard, or `timeout` elapses. Returns `true` when fully drained.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let pipes: Vec<TcpPush<FileEvent>> =
            self.inner.state.read().pipes.iter().map(|p| p.push.clone()).collect();
        pipes.iter().all(|p| p.drain(deadline.saturating_duration_since(Instant::now())))
    }

    /// Applies a new shard map with the drain-before-cutover protocol:
    ///
    /// 1. Every pipe of the *current* map is drained — the old owners
    ///    must acknowledge all in-flight pushes first.
    /// 2. Under the routing lock (no concurrent publishes), stragglers
    ///    are drained with whatever deadline remains.
    /// 3. The table is swapped. Pipes whose shard survives unchanged
    ///    (same id and address) are reused, keeping their dedup state;
    ///    new shards get fresh pipes.
    ///
    /// A map that is not newer than the current one is a no-op. A drain
    /// timeout returns an error *without* swapping — the cutover is not
    /// acked, the router keeps the old map, and the caller retries once
    /// the stuck shard recovers.
    ///
    /// # Errors
    ///
    /// `TimedOut` when the drain did not finish within `drain_timeout`;
    /// `InvalidInput` when a new shard's address does not parse.
    pub fn update_map(&self, new_map: ShardMap, drain_timeout: Duration) -> io::Result<()> {
        if new_map.version() <= self.inner.state.read().map.version() {
            return Ok(());
        }
        // Cutovers are rare, operator-relevant moments: trace each one
        // as its own root so drain stalls show up on `/tracez`.
        let mut cutover_span = sdci_obs::trace::root("router.cutover");
        cutover_span.set_detail(format!("to v{}", new_map.version()));
        let deadline = Instant::now() + drain_timeout;
        // Bulk of the drain happens outside the write lock so publishers
        // are not stalled while the old owners catch up.
        if !self.drain(drain_timeout) {
            sdci_obs::static_metric!(counter, "sdci_cluster_cutover_drain_timeouts_total").inc();
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "cutover not acked: old shard owners did not drain in time",
            ));
        }
        let mut state = self.inner.state.write();
        if new_map.version() <= state.map.version() {
            return Ok(()); // another clone won the race
        }
        // Publishers clone a pipe handle under the read lock and send
        // after releasing it, so a few stragglers may have queued since
        // the drain above; finish them under the write lock, where no
        // new sends can start.
        for pipe in &state.pipes {
            if !pipe.push.drain(deadline.saturating_duration_since(Instant::now())) {
                sdci_obs::static_metric!(counter, "sdci_cluster_cutover_drain_timeouts_total")
                    .inc();
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "cutover not acked: old shard owners did not drain in time",
                ));
            }
        }
        let mut pipes = Vec::with_capacity(new_map.shards().len());
        for shard in new_map.shards() {
            match state.pipes.iter().find(|p| p.id == shard.id && p.addr == shard.addr) {
                Some(existing) => pipes.push(existing.clone()),
                None => pipes.push(ShardPipe::connect(
                    shard.id,
                    &shard.addr,
                    &self.inner.client,
                    &self.inner.cfg,
                )?),
            }
        }
        sdci_obs::info!("shard map cutover applied"; from = state.map.version(), to = new_map.version(), shards = pipes.len(),);
        sdci_obs::static_metric!(counter, "sdci_cluster_cutovers_total").inc();
        self.inner.cutovers.fetch_add(1, Ordering::Relaxed);
        state.map = new_map;
        state.pipes = pipes;
        Ok(())
    }
}

/// Routing is where a `ShardRouter` stands in for a collector's
/// publisher: the topic is dropped (the push leg is point-to-point)
/// and the shard map picks the pipe.
impl Publish<FileEvent> for ShardRouter {
    fn publish(&self, _topic: &str, mut payload: FileEvent) -> PublishOutcome {
        // Clone the pipe handle out of the lock: `send` blocks on
        // backpressure, and a blocked reader must not starve a cutover
        // waiting for the write lock.
        let (push, routed, shard) = {
            let state = self.inner.state.read();
            let idx = state.map.route_index(&payload.path, payload.target);
            let pipe = &state.pipes[idx];
            (pipe.push.clone(), pipe.routed.clone(), pipe.id)
        };
        // The routing decision is a traced hop: re-parent the event's
        // context under a `router.publish` span naming the chosen
        // shard, so the shard's ingest hangs under it in the trace.
        if let Some(t) = payload.trace.filter(|t| t.sampled) {
            let mut span =
                sdci_obs::trace::child_of(t.trace_id, t.parent_span_id, "router.publish");
            span.set_detail(format!("shard {shard}"));
            if let Some(sc) = span.context() {
                payload.trace = Some(TraceContext::sampled(sc.trace_id, sc.span_id));
            }
        }
        routed.inc();
        if push.send(payload) {
            PublishOutcome::Queued
        } else {
            PublishOutcome::Shed
        }
    }
}

// ---------------------------------------------------------------------------
// Scatter-gather query front-end
// ---------------------------------------------------------------------------

/// One shard's leg of the scatter: its remote store and error tally.
struct ScatterShard {
    id: ShardId,
    remote: RemoteStore,
    errors: AtomicU64,
    error_metric: Counter,
}

struct ScatterInner {
    shards: Vec<ScatterShard>,
    degraded: AtomicU64,
}

/// A [`StoreReader`] over a sharded tier: fans each query out to every
/// shard's store RPC, merges the legs with
/// [`merge_seq_ordered`], and keeps answering when shards fail.
///
/// A query with failed legs still returns the events the live shards
/// hold — *degraded but answered* — and the failure is visible in
/// [`ScatterStore::degraded`] and the per-shard
/// [`ScatterStore::shard_errors`] counters rather than in the result.
/// This preserves the `StoreReader` contract consumers already build
/// on: an incomplete backfill surfaces as a sequence gap on the next
/// heartbeat and is retried, exactly like a missed query against a
/// single store.
pub struct ScatterStore {
    inner: Arc<ScatterInner>,
}

impl Clone for ScatterStore {
    fn clone(&self) -> Self {
        ScatterStore { inner: Arc::clone(&self.inner) }
    }
}

impl std::fmt::Debug for ScatterStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScatterStore").field("shards", &self.inner.shards.len()).finish()
    }
}

impl ScatterStore {
    /// A scatter front over explicit `(shard id, store-RPC address)`
    /// pairs. Connections are lazy, per shard, and cached.
    pub fn new(shards: Vec<(ShardId, SocketAddr)>, cfg: NetConfig) -> Self {
        let shards = shards
            .into_iter()
            .map(|(id, addr)| ScatterShard {
                id,
                remote: RemoteStore::connect(addr, cfg.clone()),
                errors: AtomicU64::new(0),
                error_metric: sdci_obs::registry().counter_with(
                    "sdci_cluster_shard_query_errors_total",
                    &[("shard", &id.to_string())],
                ),
            })
            .collect();
        ScatterStore { inner: Arc::new(ScatterInner { shards, degraded: AtomicU64::new(0) }) }
    }

    /// A scatter front over every shard in `map`, deriving each store
    /// RPC address from the shard's port trio (base + 2).
    ///
    /// # Errors
    ///
    /// Fails with `InvalidInput` when a shard address does not parse.
    pub fn from_map(map: &ShardMap, cfg: NetConfig) -> io::Result<Self> {
        let shards = map
            .shards()
            .iter()
            .map(|s| Ok((s.id, shard_store_addr(&s.addr)?)))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(ScatterStore::new(shards, cfg))
    }

    /// Shards fanned out to.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Queries that lost at least one leg and returned a partial merge.
    pub fn degraded(&self) -> u64 {
        self.inner.degraded.load(Ordering::Relaxed)
    }

    /// Failed query legs per shard, in slot order.
    pub fn shard_errors(&self) -> Vec<(ShardId, u64)> {
        self.inner.shards.iter().map(|s| (s.id, s.errors.load(Ordering::Relaxed))).collect()
    }
}

/// The scatter front is a read-only [`EventBackend`]: a shard tier is
/// "just another backend" to whatever serves it (the [`StoreServer`]
/// on a front node serves it through the blanket `StoreReader` impl).
/// Writes are refused — events reach shards through per-shard push
/// pipelines, routed by the [`ShardRouter`].
impl EventBackend for ScatterStore {
    fn insert_batch(&self, _events: Vec<SequencedEvent>) -> Result<(), StoreError> {
        Err(StoreError::ReadOnly("ScatterStore"))
    }

    fn query(&self, query: &StoreQuery) -> Vec<SequencedEvent> {
        // The fan-out span nests under whatever is current (e.g. the
        // front node's `store_rpc.serve`); its context is captured
        // *before* the scope because worker threads have their own
        // thread-local current, and re-established per leg below.
        let mut scatter_span = sdci_obs::trace::child("scatter.query");
        scatter_span.set_detail(format!("{} shards", self.inner.shards.len()));
        let parent = scatter_span.context();
        // One scoped thread per shard: the fan-out is bounded by the
        // slowest live leg, not the sum, and a dead shard costs one
        // liveness window instead of failing the query.
        let legs: Vec<io::Result<Vec<SequencedEvent>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .inner
                .shards
                .iter()
                .map(|shard| {
                    scope.spawn(move || {
                        // Per-shard child span, current for this worker
                        // thread so the RemoteStore round trip carries
                        // it to the shard's store RPC.
                        let mut leg = parent.map(|p| {
                            sdci_obs::trace::child_of(p.trace_id, p.span_id, "scatter.shard")
                        });
                        if let Some(span) = leg.as_mut() {
                            span.set_detail(format!("shard {}", shard.id));
                        }
                        shard.remote.try_query(query)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| Err(io::Error::other("scatter leg panicked"))))
                .collect()
        });
        let mut parts = Vec::with_capacity(legs.len());
        let mut failed = 0usize;
        for (shard, leg) in self.inner.shards.iter().zip(legs) {
            match leg {
                Ok(events) => parts.push(events),
                Err(e) => {
                    failed += 1;
                    shard.errors.fetch_add(1, Ordering::Relaxed);
                    shard.error_metric.inc();
                    sdci_obs::warn!("scatter query leg failed; answering degraded"; shard = shard.id, error = e.to_string(),);
                }
            }
        }
        if failed > 0 {
            self.inner.degraded.fetch_add(1, Ordering::Relaxed);
            sdci_obs::static_metric!(counter, "sdci_cluster_degraded_queries_total").inc();
        }
        merge_seq_ordered(parts, query.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_rpc_round_trips() {
        let map = ShardMap::new(["127.0.0.1:7070", "127.0.0.1:7080"]);
        for msg in [
            ClusterRpc::GetMap,
            ClusterRpc::Map { map },
            ClusterRpc::AddShard { addr: "127.0.0.1:7090".into() },
            ClusterRpc::Ping,
        ] {
            let json = serde_json::to_string(&msg).unwrap();
            let back: ClusterRpc = serde_json::from_str(&json).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn shard_store_addr_applies_the_trio_offset() {
        assert_eq!(shard_store_addr("127.0.0.1:7070").unwrap().port(), 7072);
        assert!(shard_store_addr("not-an-addr").is_err());
    }
}
