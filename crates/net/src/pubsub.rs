//! TCP PUB/SUB: the in-process broker's contract over real sockets.
//!
//! A [`TcpBroker`] owns (or bridges) a local [`Broker`] and accepts two
//! kinds of client, distinguished by their handshake frame:
//!
//! * **publishers** ([`TcpPublisher`]) stream `Publish` frames that the
//!   server republishes into the local broker;
//! * **subscribers** ([`TcpSubscriber`]) send their topic-prefix list
//!   (plus, since proto 2, their wire version) and receive `Deliver` /
//!   `DeliverBatch` frames fanned out from a local subscription.
//!
//! The deliver direction is **encode-once**: a single dispatcher
//! thread per broker drains one relay subscription, renders each
//! same-topic run once per negotiated proto into frozen frame bytes
//! (`Arc<[u8]>`), and hands the same buffer to every same-proto
//! subscriber leg. N subscribers cost one encode, not N.
//!
//! Semantics match `sdci_mq::pubsub`: best-effort delivery with a
//! per-subscriber high-water mark. Backpressure from a slow socket
//! fills that subscriber's local queue, and the broker sheds newer
//! messages for that subscriber only — exactly what happens in-process.
//!
//! Both client endpoints are supervised: they reconnect forever with
//! jittered exponential backoff ([`Backoff`]), and both sides probe
//! idle connections with `Ping` frames so a dead peer is detected
//! within the configured liveness window.

use crate::conn::{Backoff, NetConfig};
use crate::faulted::{conn_faults, spawn_worker, FaultedWriter};
use crate::wire::{
    write_deliver_batch, write_deliver_batch_bin, write_deliver_events, write_msg,
    write_publish_batch_bin, write_publish_batch_traced, BinEncoder, Frame, FrameReader,
    BIN_FRAME_BIT,
};
use sdci_mq::pubsub::{Broker, Message};
use sdci_mq::transport::{Publish, PublishOutcome, Subscribe, Transport};
use sdci_types::{BinPayload, TraceCarrier, TraceContext};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Counter snapshot for a [`TcpBroker`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TcpBrokerStats {
    /// Connections accepted (all roles).
    pub accepted: u64,
    /// Frames received from remote publishers. A `PublishBatch` frame
    /// counts once regardless of how many messages it carries.
    pub frames_in: u64,
    /// Messages received from remote publishers (each batched payload
    /// counts individually).
    pub messages_in: u64,
    /// Frames delivered to remote subscribers.
    pub frames_out: u64,
}

#[derive(Debug, Default)]
struct BrokerCounters {
    accepted: AtomicU64,
    frames_in: AtomicU64,
    messages_in: AtomicU64,
    frames_out: AtomicU64,
}

/// A TCP-facing pub-sub broker bridging remote clients onto a local
/// [`Broker`].
///
/// Local code keeps using the wrapped broker directly ([`TcpBroker::publisher`],
/// [`TcpBroker::subscribe`]); remote processes connect with
/// [`TcpPublisher`]/[`TcpSubscriber`]. Dropping the `TcpBroker` (or
/// calling [`TcpBroker::shutdown`]) stops accepting, drains queued
/// messages to connected subscribers, and sends them `Fin`.
pub struct TcpBroker<T> {
    local: Broker<T>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
    counters: Arc<BrokerCounters>,
    fanout: Arc<FanoutHub>,
}

/// One encoded batch, frozen for fan-out: the frame bytes are rendered
/// once per negotiated wire form and shared by reference across every
/// subscriber leg speaking that form.
#[derive(Clone)]
struct DeliverChunk {
    /// One or more complete wire frames, concatenated.
    bytes: Arc<[u8]>,
    /// Frames in `bytes`, for `frames_out` accounting.
    frames: u64,
    /// Messages across those frames, for shed accounting.
    msgs: u64,
}

/// A connected remote subscriber, as the fan-out dispatcher sees it.
struct FanoutLeg {
    prefixes: Vec<String>,
    /// Negotiated session proto (`min(broker, announced)`): ≥3 receives
    /// binary `DeliverBatch`, 2 the JSON form, 1 per-event `Deliver`.
    proto: u32,
    tx: crossbeam_channel::Sender<DeliverChunk>,
}

impl FanoutLeg {
    /// Same prefix semantics as the local broker's fan-out: an empty
    /// prefix (`""`) matches everything.
    fn matches(&self, topic: &str) -> bool {
        self.prefixes.iter().any(|p| topic.starts_with(p.as_str()))
    }
}

/// Shared fan-out state on a [`TcpBroker`]: the registered subscriber
/// legs plus the dispatcher thread that encodes for them, spawned
/// lazily with the first remote subscriber so brokers that never see
/// one never pay for it.
#[derive(Default)]
struct FanoutHub {
    legs: parking_lot::Mutex<Vec<FanoutLeg>>,
    dispatcher: parking_lot::Mutex<Option<JoinHandle<()>>>,
}

impl<T> std::fmt::Debug for TcpBroker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpBroker").field("addr", &self.addr).finish()
    }
}

impl<T> TcpBroker<T>
where
    T: Clone + Send + Serialize + Deserialize + BinPayload + 'static,
{
    /// Binds `addr` and serves a freshly created broker with the given
    /// high-water mark.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn bind(addr: impl ToSocketAddrs, hwm: usize, cfg: NetConfig) -> std::io::Result<Self> {
        Self::serve(Broker::new(hwm), addr, cfg)
    }

    /// Binds `addr` and serves an existing broker — e.g. the
    /// Aggregator's feed broker, exposing `feed/` to remote consumers.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn serve(
        local: Broker<T>,
        addr: impl ToSocketAddrs,
        cfg: NetConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let counters = Arc::new(BrokerCounters::default());
        let fanout = Arc::new(FanoutHub::default());
        let accept = {
            let local = local.clone();
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let counters = Arc::clone(&counters);
            let fanout = Arc::clone(&fanout);
            spawn_worker(
                format!("sdci-net-accept-{}", addr.port()),
                "net.pubsub.spawn_accept",
                move || {
                    accept_loop(listener, local, cfg, stop, conns, counters, fanout);
                },
            )?
        };
        Ok(TcpBroker { local, addr, stop, accept: Some(accept), conns, counters, fanout })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The wrapped local broker.
    pub fn local(&self) -> &Broker<T> {
        &self.local
    }

    /// A publisher into the local broker (same-process side).
    pub fn publisher(&self) -> sdci_mq::pubsub::Publisher<T> {
        self.local.publisher()
    }

    /// A local subscription (same-process side).
    pub fn subscribe(&self, prefixes: &[&str]) -> sdci_mq::pubsub::Subscriber<T> {
        self.local.subscribe(prefixes)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TcpBrokerStats {
        TcpBrokerStats {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            frames_in: self.counters.frames_in.load(Ordering::Relaxed),
            messages_in: self.counters.messages_in.load(Ordering::Relaxed),
            frames_out: self.counters.frames_out.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, drains each connected subscriber's queue, sends
    /// `Fin`, and joins every connection thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // The dispatcher's exit is what releases the subscriber legs
        // (its final flush drains into their queues, then their senders
        // drop), so it must be joined before the connection threads.
        let dispatcher = self.fanout.dispatcher.lock().take();
        if let Some(t) = dispatcher {
            let _ = t.join();
        }
        let handles: Vec<JoinHandle<()>> = self.conns.lock().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

impl<T> Drop for TcpBroker<T> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop<T>(
    listener: TcpListener,
    local: Broker<T>,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
    conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
    counters: Arc<BrokerCounters>,
    fanout: Arc<FanoutHub>,
) where
    T: Clone + Send + Serialize + Deserialize + BinPayload + 'static,
{
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, peer)) => {
                counters.accepted.fetch_add(1, Ordering::Relaxed);
                let local = local.clone();
                let cfg = cfg.clone();
                let stop = Arc::clone(&stop);
                let counters = Arc::clone(&counters);
                let fanout = Arc::clone(&fanout);
                let spawned =
                    spawn_worker("sdci-net-conn".into(), "net.pubsub.spawn_conn", move || {
                        serve_connection(stream, local, cfg, stop, counters, fanout)
                    });
                match spawned {
                    Ok(handle) => {
                        let mut guard = conns.lock();
                        guard.retain(|h| !h.is_finished());
                        guard.push(handle);
                    }
                    Err(e) => {
                        // Lossy leg: the client reconnects with backoff;
                        // one EAGAIN must not take the broker down.
                        sdci_obs::error!("broker conn thread spawn failed; dropping connection"; peer = peer, error = e.to_string());
                        sdci_obs::static_metric!(counter, "sdci_net_spawn_failures_total").inc();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_connection<T>(
    stream: TcpStream,
    local: Broker<T>,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
    counters: Arc<BrokerCounters>,
    fanout: Arc<FanoutHub>,
) where
    T: Clone + Send + Serialize + Deserialize + BinPayload + 'static,
{
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(cfg.liveness)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    // Timeout-tolerant reads: a read timeout firing mid-frame must not
    // desynchronize the stream.
    let (send_faults, recv_faults) = conn_faults(&cfg);
    let mut reader = FrameReader::with_faults(read_half, recv_faults);
    let mut writer = FaultedWriter::new(stream, send_faults);
    match reader.read_msg::<Frame<T>>() {
        Ok(Frame::HelloPublisher) => {
            serve_publisher(&mut reader, &mut writer, local, cfg, stop, counters)
        }
        Ok(Frame::HelloSubscriber { prefixes, proto }) => {
            serve_subscriber(&mut writer, local, &prefixes, proto, cfg, stop, counters, fanout)
        }
        _ => {} // bad handshake: drop the connection
    }
}

/// Reads `Publish` frames into the local broker until the peer goes
/// quiet, finishes, or the server stops.
fn serve_publisher<T>(
    reader: &mut FrameReader<TcpStream>,
    writer: &mut FaultedWriter<TcpStream>,
    local: Broker<T>,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
    counters: Arc<BrokerCounters>,
) where
    T: Clone + Send + Serialize + Deserialize + BinPayload + 'static,
{
    let publisher = local.publisher();
    let _ = reader.get_ref().set_read_timeout(Some(cfg.heartbeat));
    // Version negotiation: `HelloPublisher` is a bare string and cannot
    // carry a version, so the broker volunteers its own in a greeting
    // `Ack`. A proto-1 publisher never reads its socket and is
    // unaffected; a proto-2 one waits briefly for this frame and falls
    // back to per-event `Publish` frames when it doesn't arrive.
    // Crash point: a broker that dies mid-greeting leaves the publisher
    // waiting out its heartbeat and falling back to per-event frames —
    // the chaos tests kill here to prove clients survive it.
    if sdci_faults::crash_point("net.pubsub.greet").is_err() {
        return;
    }
    if cfg.proto >= 2
        && write_msg(writer, &Frame::<T>::Ack { up_to: 0, proto: Some(cfg.proto) }).is_err()
    {
        return;
    }
    let mut last_traffic = Instant::now();
    // `stop` is checked every iteration, not just on timeouts: a peer
    // that keeps traffic flowing must not be able to pin the handler
    // past shutdown.
    while !stop.load(Ordering::Relaxed) {
        match reader.read_msg::<Frame<T>>() {
            Ok(Frame::Publish { topic, payload }) => {
                // Crash point: dying between the socket read and the
                // local republish loses in-flight messages — exactly
                // the lossy-leg contract the chaos tests exercise.
                if sdci_faults::crash_point("net.pubsub.dispatch").is_err() {
                    return;
                }
                counters.frames_in.fetch_add(1, Ordering::Relaxed);
                counters.messages_in.fetch_add(1, Ordering::Relaxed);
                publisher.publish(&topic, payload);
                last_traffic = Instant::now();
            }
            Ok(Frame::PublishBatch { topic, payloads, trace }) => {
                if sdci_faults::crash_point("net.pubsub.dispatch").is_err() {
                    return;
                }
                counters.frames_in.fetch_add(1, Ordering::Relaxed);
                counters.messages_in.fetch_add(payloads.len() as u64, Ordering::Relaxed);
                // One dispatch span per batch frame, parented under the
                // remote publisher's send span; the payloads keep their
                // own event-level contexts for the stages downstream.
                let mut dispatch = trace.filter(|t| t.sampled).map(|t| {
                    sdci_obs::trace::child_of(t.trace_id, t.parent_span_id, "net.pubsub.dispatch")
                });
                if let Some(span) = dispatch.as_mut() {
                    span.set_detail(format!("{} messages on {topic}", payloads.len()));
                }
                for payload in payloads {
                    publisher.publish(&topic, payload);
                }
                last_traffic = Instant::now();
            }
            Ok(Frame::Ping) => last_traffic = Instant::now(),
            Ok(Frame::Fin) => break,
            Ok(_) => {}
            Err(e) if timed_out(&e) => {
                if last_traffic.elapsed() > cfg.liveness {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Serves one remote subscriber: negotiates the deliver proto, then
/// ships the shared dispatcher's encode-once chunks down this socket,
/// probing with `Ping` while idle. On shutdown the dispatcher's final
/// flush lands in this leg's queue and drains — through the same
/// crash-pointed write path as live traffic — before the `Fin`.
#[allow(clippy::too_many_arguments)]
fn serve_subscriber<T>(
    writer: &mut FaultedWriter<TcpStream>,
    local: Broker<T>,
    prefixes: &[String],
    announced: Option<u32>,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
    counters: Arc<BrokerCounters>,
    hub: Arc<FanoutHub>,
) where
    T: Clone + Send + Serialize + Deserialize + BinPayload + 'static,
{
    // Deliver-direction negotiation, mirroring the publish leg: the
    // session speaks min(ours, announced). A hello with no `proto`
    // field is a pre-versioned subscriber and must only ever see
    // per-event `Deliver` frames.
    let session = cfg.proto.min(announced.unwrap_or(1));
    // Crash point: a broker that dies mid-greeting leaves the client
    // reconnecting with backoff — the chaos tests kill here to prove
    // subscribers survive it.
    if sdci_faults::crash_point("net.pubsub.greet").is_err() {
        return;
    }
    if cfg.proto >= 2
        && write_msg(writer, &Frame::<T>::Ack { up_to: 0, proto: Some(cfg.proto) }).is_err()
    {
        return;
    }
    if !ensure_dispatcher(&hub, &local, &cfg, &stop) {
        return; // spawn failed: drop the connection, the client retries
    }
    let (tx, rx) = crossbeam_channel::bounded::<DeliverChunk>(cfg.hwm.max(1));
    hub.legs.lock().push(FanoutLeg { prefixes: prefixes.to_vec(), proto: session, tx });
    let mut last_write = Instant::now();
    loop {
        match rx.recv_timeout(cfg.heartbeat) {
            Ok(chunk) => {
                // Crash point: dying between the dispatcher dequeue and
                // the socket write loses the in-flight chunk for this
                // subscriber only — the lossy fanout contract. Both the
                // live path and the shutdown drain pass through here,
                // so chaos schedules can fault the graceful drain too.
                if sdci_faults::crash_point("net.pubsub.fanout").is_err() {
                    return;
                }
                if write_chunk(writer, &chunk.bytes).is_err() {
                    return; // peer gone; dropping `rx` detaches the leg
                }
                counters.frames_out.fetch_add(chunk.frames, Ordering::Relaxed);
                last_write = Instant::now();
            }
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                if last_write.elapsed() >= cfg.heartbeat
                    && write_msg(writer, &Frame::<T>::Ping).is_err()
                {
                    return;
                }
            }
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                // The dispatcher flushed everything queued for this leg
                // and dropped its sender: graceful drain complete.
                let _ = write_msg(writer, &Frame::<T>::Fin);
                return;
            }
        }
    }
}

/// Spawns the fan-out dispatcher on first use. The relay subscription
/// is created here, synchronously, so a message published right after
/// the first subscriber's hello is already queued by the time the
/// dispatcher thread starts. Returns `false` when the spawn fails (an
/// armed fail point or a real EAGAIN).
fn ensure_dispatcher<T>(
    hub: &Arc<FanoutHub>,
    local: &Broker<T>,
    cfg: &NetConfig,
    stop: &Arc<AtomicBool>,
) -> bool
where
    T: Clone + Send + Serialize + BinPayload + 'static,
{
    let mut slot = hub.dispatcher.lock();
    if slot.is_some() {
        return true;
    }
    // The relay tap is deeper than an ordinary subscription: bursts
    // shed at each leg's own bounded queue, not at this shared feed.
    let sub = local.subscribe_with_hwm(&[""], cfg.hwm.max(1));
    let cfg = cfg.clone();
    let stop = Arc::clone(stop);
    let hub = Arc::clone(hub);
    match spawn_worker("sdci-net-fanout".into(), "net.pubsub.spawn_fanout", move || {
        fanout_dispatcher(sub, cfg, stop, hub)
    }) {
        Ok(handle) => {
            *slot = Some(handle);
            true
        }
        Err(e) => {
            sdci_obs::error!("fanout dispatcher spawn failed; dropping subscriber"; error = e.to_string());
            sdci_obs::static_metric!(counter, "sdci_net_spawn_failures_total").inc();
            false
        }
    }
}

/// The per-broker fan-out dispatcher: drains the relay subscription,
/// coalesces whatever is queued into maximal same-topic runs, and
/// encodes each run once per wire form for all matching legs. On
/// shutdown it flushes everything already queued into the legs, then
/// drops their senders, releasing each leg to drain and `Fin`.
fn fanout_dispatcher<T>(
    sub: sdci_mq::pubsub::Subscriber<T>,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
    hub: Arc<FanoutHub>,
) where
    T: Send + Serialize + BinPayload + 'static,
{
    let mut enc = BinEncoder::new();
    let mut batch: VecDeque<Message<T>> = VecDeque::new();
    loop {
        let draining = stop.load(Ordering::Relaxed);
        if draining {
            // Graceful drain: everything already queued still goes out.
            while let Some(msg) = sub.try_recv() {
                batch.push_back(msg);
            }
        } else {
            match sub.recv_timeout(cfg.heartbeat) {
                Some(msg) => {
                    batch.push_back(msg);
                    while batch.len() < cfg.max_batch.max(1) {
                        match sub.try_recv() {
                            Some(m) => batch.push_back(m),
                            None => break,
                        }
                    }
                }
                None => continue,
            }
        }
        while let Some(Message { topic, payload }) = batch.pop_front() {
            let mut run: Vec<T> = vec![payload];
            while batch.front().is_some_and(|m| m.topic == topic) {
                run.push(batch.pop_front().expect("peeked front").payload);
            }
            fan_out_run(&mut enc, &topic, &run, &cfg, &hub);
        }
        if draining {
            break;
        }
    }
    hub.legs.lock().clear();
}

/// Encodes one same-topic run and feeds it to every matching leg. With
/// `fanout_encode_once` (the default) each wire form is rendered once
/// and the frozen bytes shared across legs; the per-leg re-serialize
/// path exists only as the benchmark baseline.
fn fan_out_run<T: Serialize + BinPayload>(
    enc: &mut BinEncoder,
    topic: &str,
    run: &[T],
    cfg: &NetConfig,
    hub: &FanoutHub,
) {
    let mut legs = hub.legs.lock();
    if legs.is_empty() {
        return;
    }
    // One slot per wire form: [unused, per-event JSON, JSON batch,
    // binary batch].
    let mut shared: [Option<DeliverChunk>; 4] = [None, None, None, None];
    legs.retain(|leg| {
        if !leg.matches(topic) {
            return true;
        }
        // Lone messages take the per-event form on every session,
        // mirroring the publish leg's plain `Publish` for a run of one.
        let form = if run.len() == 1 { 1 } else { leg.proto.min(3) } as usize;
        let chunk = if cfg.fanout_encode_once {
            if shared[form].is_none() {
                shared[form] = encode_run(enc, form as u32, topic, run).ok();
            }
            shared[form].clone()
        } else {
            encode_run(enc, form as u32, topic, run).ok()
        };
        let Some(chunk) = chunk else { return true };
        match leg.tx.try_send(chunk) {
            Ok(()) => true,
            Err(crossbeam_channel::TrySendError::Full(c)) => {
                // This leg's socket fell behind: shed for it alone —
                // the same high-water-mark contract as in-process.
                sdci_obs::static_metric!(counter, "sdci_net_fanout_shed_total").add(c.msgs);
                true
            }
            Err(crossbeam_channel::TrySendError::Disconnected(_)) => false,
        }
    });
}

/// Renders one run in the given wire form: `3` binary `DeliverBatch`,
/// `2` JSON `DeliverBatch`, anything else per-event JSON `Deliver`.
fn encode_run<T: Serialize + BinPayload>(
    enc: &mut BinEncoder,
    form: u32,
    topic: &str,
    run: &[T],
) -> std::io::Result<DeliverChunk> {
    let mut buf = Vec::new();
    let frames = match form {
        3 => write_deliver_batch_bin(&mut buf, enc, topic, run, None)?,
        2 => write_deliver_batch(&mut buf, topic, run, None)?,
        _ => write_deliver_events(&mut buf, topic, run)?,
    };
    Ok(DeliverChunk { bytes: buf.into(), frames: frames as u64, msgs: run.len() as u64 })
}

/// Writes one fan-out chunk, re-splitting the concatenated frames so
/// each gets its own `flush` — the frame-alignment invariant
/// [`FaultedWriter`] relies on to keep injected faults from
/// desynchronizing the length-prefixed stream.
fn write_chunk(w: &mut impl Write, bytes: &[u8]) -> std::io::Result<()> {
    let mut off = 0;
    while off + 4 <= bytes.len() {
        let word = u32::from_be_bytes(bytes[off..off + 4].try_into().expect("4-byte slice"));
        let end = off + 4 + (word & !BIN_FRAME_BIT) as usize;
        w.write_all(&bytes[off..end])?;
        w.flush()?;
        off = end;
    }
    Ok(())
}

fn timed_out(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

#[derive(Debug, Default)]
struct ClientCounters {
    /// Successful connections (1 = never lost the link).
    connections: AtomicU64,
    /// Messages shed because a queue was full (HWM) or the wire was down.
    dropped: AtomicU64,
}

/// A supervised TCP publisher endpoint: `publish` enqueues, a background
/// worker ships frames to the [`TcpBroker`], reconnecting with backoff
/// whenever the link drops. Messages published while the queue is full
/// or the link is down are shed and counted ([`TcpPublisher::dropped`])
/// — the lossy PUB/SUB contract.
pub struct TcpPublisher<T> {
    tx: crossbeam_channel::Sender<(String, T)>,
    stop: Arc<AtomicBool>,
    counters: Arc<ClientCounters>,
    _worker: JoinHandle<()>,
}

impl<T> std::fmt::Debug for TcpPublisher<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpPublisher").finish_non_exhaustive()
    }
}

impl<T> TcpPublisher<T>
where
    T: Serialize + Send + TraceCarrier + BinPayload + 'static,
{
    /// Starts a supervised publisher toward `addr`. Returns immediately;
    /// the connection is established (and re-established) in the
    /// background.
    pub fn connect(addr: SocketAddr, cfg: NetConfig) -> Self {
        let (tx, rx) = crossbeam_channel::bounded::<(String, T)>(cfg.hwm.max(1));
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ClientCounters::default());
        let worker = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("sdci-net-pub".into())
                .spawn(move || publisher_worker(addr, cfg, rx, stop, counters))
                .expect("spawn publisher worker")
        };
        TcpPublisher { tx, stop, counters, _worker: worker }
    }

    /// Publishes without blocking; sheds (and counts) when the outbound
    /// queue is at its high-water mark.
    pub fn publish(&self, topic: &str, payload: T) -> PublishOutcome {
        sdci_obs::static_metric!(counter, "sdci_net_publish_total").inc();
        if self.tx.try_send((topic.to_string(), payload)).is_err() {
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            sdci_obs::registry()
                .counter_with("sdci_net_pub_dropped_total", &[("topic", topic)])
                .inc();
            PublishOutcome::Shed
        } else {
            PublishOutcome::Queued
        }
    }

    /// Messages shed at the high-water mark or lost to a dropped link.
    pub fn dropped(&self) -> u64 {
        self.counters.dropped.load(Ordering::Relaxed)
    }

    /// Successful connections so far (>1 means the link was re-established).
    pub fn connections(&self) -> u64 {
        self.counters.connections.load(Ordering::Relaxed)
    }
}

impl<T> Drop for TcpPublisher<T> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl<T> Publish<T> for TcpPublisher<T>
where
    T: Serialize + Send + TraceCarrier + BinPayload + 'static,
{
    fn publish(&self, topic: &str, payload: T) -> PublishOutcome {
        TcpPublisher::publish(self, topic, payload)
    }
}

fn publisher_worker<T: Serialize + Send + TraceCarrier + BinPayload + 'static>(
    addr: SocketAddr,
    cfg: NetConfig,
    rx: crossbeam_channel::Receiver<(String, T)>,
    stop: Arc<AtomicBool>,
    counters: Arc<ClientCounters>,
) {
    let mut backoff = Backoff::new(cfg.retry);
    // Proto-3 scratch buffers, reused across batches and reconnects.
    let mut enc = BinEncoder::new();
    'reconnect: loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let Ok(raw) = cfg.connect(addr) else {
            backoff.sleep_after_failure(Duration::ZERO, cfg.liveness);
            continue;
        };
        let session = Instant::now();
        let _ = raw.set_nodelay(true);
        let (send_faults, recv_faults) = conn_faults(&cfg);
        let mut stream = FaultedWriter::new(raw, send_faults);
        if write_msg(&mut stream, &Frame::<T>::HelloPublisher).is_err() {
            // A server that accepts and immediately resets must hit the
            // backoff like a refused connection, not a tight spin.
            backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
            continue;
        }
        // A proto ≥ 2 broker answers the hello with a greeting `Ack`
        // carrying its version; a proto-1 broker sends nothing. Wait at
        // most a heartbeat for it, then settle on per-event frames —
        // messages queue locally in the meantime, nothing is lost that
        // the lossy leg wouldn't shed anyway.
        let server_proto = if cfg.proto >= 2 {
            let mut server_proto = 1u32;
            if let Ok(read_half) = stream.get_ref().try_clone() {
                let _ = read_half.set_read_timeout(Some(cfg.heartbeat));
                let mut reader = FrameReader::with_faults(read_half, recv_faults);
                let greeted = Instant::now();
                loop {
                    // `Frame<()>`: the greeting carries no payloads, and
                    // the publisher leg never requires `T: Deserialize`.
                    match reader.read_msg::<Frame<()>>() {
                        Ok(Frame::Ack { up_to: _, proto }) => {
                            server_proto = proto.unwrap_or(1);
                            break;
                        }
                        Ok(_) => {}
                        Err(e) if timed_out(&e) => {
                            if greeted.elapsed() >= cfg.heartbeat {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
            }
            server_proto
        } else {
            1
        };
        let batched = cfg.proto.min(server_proto) >= 2 && cfg.max_batch > 1;
        // Trace context rides the wire only on proto-≥2 sessions (see
        // the push leg): against an older broker, strip it in place —
        // the worker owns the payloads — so the trace truncates here.
        let carry_ctx = cfg.proto.min(server_proto) >= 2;
        // Binary hot-path frames only when *both* ends speak proto ≥ 3;
        // older brokers keep receiving the JSON `PublishBatch`.
        let binary = batched && cfg.proto.min(server_proto) >= 3;
        if counters.connections.fetch_add(1, Ordering::Relaxed) > 0 {
            sdci_obs::static_metric!(counter, "sdci_net_publisher_reconnects_total").inc();
        }
        loop {
            match rx.recv_timeout(cfg.heartbeat) {
                Ok((topic, payload)) => {
                    // Coalesce whatever else is already queued (plus, on
                    // a lone message, up to a flush-interval of
                    // stragglers) and ship maximal same-topic runs as
                    // `PublishBatch` frames, preserving publish order.
                    let mut batch: VecDeque<(String, T)> = VecDeque::new();
                    batch.push_back((topic, payload));
                    if batched {
                        while batch.len() < cfg.max_batch {
                            match rx.try_recv() {
                                Ok(pair) => batch.push_back(pair),
                                Err(_) => break,
                            }
                        }
                        if batch.len() == 1 {
                            let deadline = Instant::now() + cfg.flush_interval;
                            while batch.len() < cfg.max_batch {
                                let now = Instant::now();
                                if now >= deadline {
                                    break;
                                }
                                match rx.recv_timeout(deadline - now) {
                                    Ok(pair) => batch.push_back(pair),
                                    Err(_) => break,
                                }
                            }
                        }
                        let reason = if batch.len() >= cfg.max_batch { "size" } else { "deadline" };
                        sdci_obs::registry()
                            .counter_with("sdci_net_batch_flush_total", &[("reason", reason)])
                            .inc();
                        // Seconds are the histogram's base unit, so `len`
                        // seconds exports directly as the batch size.
                        sdci_obs::static_metric!(histogram, "sdci_net_batch_size")
                            .observe_ns(batch.len() as u64 * 1_000_000_000);
                    }
                    while let Some((topic, payload)) = batch.pop_front() {
                        let mut run: Vec<T> = vec![payload];
                        while batch.front().is_some_and(|(t, _)| *t == topic) {
                            run.push(batch.pop_front().map(|(_, p)| p).expect("peeked front"));
                        }
                        let ok = if run.len() == 1 {
                            let mut payload = run.pop().expect("run has one payload");
                            if !carry_ctx {
                                payload.set_trace_context(None);
                            }
                            write_msg(&mut stream, &Frame::Publish { topic, payload }).is_ok()
                        } else {
                            // The batch frame carries the first sampled
                            // event's context, re-parented under a send
                            // span marking the publisher→broker hop.
                            let carried =
                                run.iter().find_map(|p| p.trace_context().filter(|c| c.sampled));
                            let mut send_span = carried.map(|t| {
                                sdci_obs::trace::child_of(
                                    t.trace_id,
                                    t.parent_span_id,
                                    "net.pub.send",
                                )
                            });
                            if let Some(span) = send_span.as_mut() {
                                span.set_detail(format!("{} messages on {topic}", run.len()));
                            }
                            let frame_trace = match send_span.as_ref().and_then(|s| s.context()) {
                                Some(sc) => Some(TraceContext::sampled(sc.trace_id, sc.span_id)),
                                None => carried,
                            };
                            if binary {
                                write_publish_batch_bin(
                                    &mut stream,
                                    &mut enc,
                                    &topic,
                                    &run,
                                    frame_trace,
                                )
                                .is_ok()
                            } else {
                                write_publish_batch_traced(&mut stream, &topic, &run, frame_trace)
                                    .is_ok()
                            }
                        };
                        if !ok {
                            // Everything not yet on the wire is lost
                            // with the link: lossy leg.
                            let lost = (run.len().max(1) + batch.len()) as u64;
                            counters.dropped.fetch_add(lost, Ordering::Relaxed);
                            sdci_obs::static_metric!(counter, "sdci_net_pub_link_lost_total")
                                .add(lost);
                            backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
                            continue 'reconnect;
                        }
                    }
                }
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    if stop.load(Ordering::Relaxed) {
                        let _ = write_msg(&mut stream, &Frame::<T>::Fin);
                        return;
                    }
                    if write_msg(&mut stream, &Frame::<T>::Ping).is_err() {
                        backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
                        continue 'reconnect;
                    }
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    // All handles dropped and the queue is drained.
                    let _ = write_msg(&mut stream, &Frame::<T>::Fin);
                    return;
                }
            }
        }
    }
}

/// A supervised TCP subscription: a background worker keeps a
/// connection to the [`TcpBroker`], re-subscribing after every
/// reconnect, and feeds received messages into a local bounded queue
/// with the same drop-at-HWM behaviour as an in-process subscriber.
///
/// Implements [`Subscribe`], so an [`EventConsumer`] built on it
/// detects the sequence gap a disconnection caused and backfills from
/// the store — reconnection is invisible above this layer except as a
/// gap.
///
/// [`EventConsumer`]: https://docs.rs/sdci-core
pub struct TcpSubscriber<T> {
    rx: crossbeam_channel::Receiver<Message<T>>,
    stop: Arc<AtomicBool>,
    counters: Arc<ClientCounters>,
    _worker: JoinHandle<()>,
}

impl<T> std::fmt::Debug for TcpSubscriber<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSubscriber").finish_non_exhaustive()
    }
}

impl<T> TcpSubscriber<T>
where
    T: Serialize + Deserialize + Send + BinPayload + 'static,
{
    /// Starts a supervised subscription to `addr` for the given topic
    /// prefixes. Returns immediately; connection management happens in
    /// the background.
    pub fn connect(addr: SocketAddr, prefixes: &[&str], cfg: NetConfig) -> Self {
        let prefixes: Vec<String> = prefixes.iter().map(|s| s.to_string()).collect();
        let (tx, rx) = crossbeam_channel::bounded::<Message<T>>(cfg.hwm.max(1));
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ClientCounters::default());
        let worker = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("sdci-net-sub".into())
                .spawn(move || subscriber_worker(addr, prefixes, cfg, tx, stop, counters))
                .expect("spawn subscriber worker")
        };
        TcpSubscriber { rx, stop, counters, _worker: worker }
    }

    /// Messages shed because the local queue hit its high-water mark.
    pub fn dropped(&self) -> u64 {
        self.counters.dropped.load(Ordering::Relaxed)
    }

    /// Successful connections so far (>1 means the link was re-established).
    pub fn connections(&self) -> u64 {
        self.counters.connections.load(Ordering::Relaxed)
    }
}

impl<T> Drop for TcpSubscriber<T> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl<T> Subscribe<T> for TcpSubscriber<T>
where
    T: Serialize + Deserialize + Send + BinPayload + 'static,
{
    fn recv(&self) -> Option<Message<T>> {
        self.rx.recv().ok()
    }

    fn try_recv(&self) -> Option<Message<T>> {
        self.rx.try_recv().ok()
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Message<T>> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// Feeds one received message into the local bounded queue, shedding
/// (and counting) at the high-water mark. Returns `false` only when
/// the owning subscriber is gone.
fn enqueue_delivery<T>(
    tx: &crossbeam_channel::Sender<Message<T>>,
    counters: &ClientCounters,
    msg: Message<T>,
) -> bool {
    match tx.try_send(msg) {
        Ok(()) => true,
        Err(crossbeam_channel::TrySendError::Full(msg)) => {
            counters.dropped.fetch_add(1, Ordering::Relaxed);
            sdci_obs::registry()
                .counter_with("sdci_net_sub_dropped_total", &[("topic", &msg.topic)])
                .inc();
            true
        }
        Err(crossbeam_channel::TrySendError::Disconnected(_)) => false,
    }
}

fn subscriber_worker<T: Serialize + Deserialize + Send + BinPayload + 'static>(
    addr: SocketAddr,
    prefixes: Vec<String>,
    cfg: NetConfig,
    tx: crossbeam_channel::Sender<Message<T>>,
    stop: Arc<AtomicBool>,
    counters: Arc<ClientCounters>,
) {
    let mut backoff = Backoff::new(cfg.retry);
    'reconnect: while !stop.load(Ordering::Relaxed) {
        let Ok(stream) = cfg.connect(addr) else {
            backoff.sleep_after_failure(Duration::ZERO, cfg.liveness);
            continue;
        };
        let session = Instant::now();
        let _ = stream.set_nodelay(true);
        if stream.set_read_timeout(Some(cfg.heartbeat)).is_err() {
            backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
            continue;
        }
        let (send_faults, recv_faults) = conn_faults(&cfg);
        let mut writer = match stream.try_clone() {
            Ok(w) => FaultedWriter::new(w, send_faults),
            Err(_) => {
                backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
                continue;
            }
        };
        // Announce our deliver proto the way the publish leg does; the
        // field is omitted entirely at proto 1, keeping the hello
        // byte-identical to pre-versioned builds (which a broker reads
        // as "per-event frames only").
        let hello = Frame::<T>::HelloSubscriber {
            prefixes: prefixes.clone(),
            proto: (cfg.proto >= 2).then_some(cfg.proto),
        };
        if write_msg(&mut writer, &hello).is_err() {
            backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
            continue;
        }
        if counters.connections.fetch_add(1, Ordering::Relaxed) > 0 {
            sdci_obs::static_metric!(counter, "sdci_net_subscriber_reconnects_total").inc();
        }
        // Timeout-tolerant reads: the heartbeat read timeout must not
        // desynchronize the stream when it fires mid-frame.
        let mut reader = FrameReader::with_faults(stream, recv_faults);
        let mut last_traffic = Instant::now();
        loop {
            match reader.read_msg::<Frame<T>>() {
                Ok(Frame::Deliver { topic, payload }) => {
                    last_traffic = Instant::now();
                    if !enqueue_delivery(&tx, &counters, Message { topic, payload }) {
                        return;
                    }
                }
                Ok(Frame::DeliverBatch { topic, payloads, trace: _ }) => {
                    last_traffic = Instant::now();
                    for payload in payloads {
                        let msg = Message { topic: topic.clone(), payload };
                        if !enqueue_delivery(&tx, &counters, msg) {
                            return;
                        }
                    }
                }
                // The broker's greeting (its version volunteer); the
                // deliver direction needs no reply — what the broker
                // sends is governed by what *we* announced.
                Ok(Frame::Ack { .. }) => last_traffic = Instant::now(),
                Ok(Frame::Ping) => last_traffic = Instant::now(),
                Ok(Frame::Fin) => {
                    // Broker drained and went away; it may be restarted
                    // (supervision!), so keep trying — the owner stops
                    // us by dropping the subscriber.
                    backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
                    continue 'reconnect;
                }
                Ok(_) => {}
                Err(e) if timed_out(&e) => {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    if last_traffic.elapsed() > cfg.liveness {
                        backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
                        continue 'reconnect;
                    }
                }
                Err(_) => {
                    backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
                    continue 'reconnect;
                }
            }
        }
    }
}

/// The TCP counterpart of the in-process [`Broker`]'s [`Transport`]
/// implementation: a factory for supervised publisher/subscriber
/// endpoints that all talk to one remote [`TcpBroker`].
#[derive(Debug, Clone)]
pub struct TcpTransport {
    addr: SocketAddr,
    cfg: NetConfig,
}

impl TcpTransport {
    /// A transport whose endpoints connect to the broker at `addr`.
    pub fn new(addr: SocketAddr) -> Self {
        TcpTransport { addr, cfg: NetConfig::default() }
    }

    /// Overrides the endpoint configuration.
    pub fn with_config(addr: SocketAddr, cfg: NetConfig) -> Self {
        TcpTransport { addr, cfg }
    }

    /// The broker address endpoints connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl<T> Transport<T> for TcpTransport
where
    T: Clone + Send + Serialize + Deserialize + TraceCarrier + BinPayload + 'static,
{
    type Publisher = TcpPublisher<T>;
    type Subscriber = TcpSubscriber<T>;

    fn publisher(&self) -> TcpPublisher<T> {
        TcpPublisher::connect(self.addr, self.cfg.clone())
    }

    fn subscribe(&self, prefixes: &[&str]) -> TcpSubscriber<T> {
        TcpSubscriber::connect(self.addr, prefixes, self.cfg.clone())
    }
}
