//! Wire format: 4-byte big-endian length prefix + a JSON-encoded frame.
//!
//! Every message on an sdci-net socket is one [`Frame`], serialized with
//! the workspace's serde conventions (externally tagged enums) and
//! prefixed with its byte length so the reader can frame the stream:
//!
//! ```text
//! +------------+---------------------------+
//! | len: u32be | body: len bytes of JSON   |
//! +------------+---------------------------+
//! ```
//!
//! JSON keeps the protocol debuggable with `nc`/`tcpdump`; the length
//! prefix keeps parsing trivial and rejects runaway frames early.

use serde::{DeError, Deserialize, Serialize, Value};
use std::io::{self, Read, Write};

/// Length-prefix size in bytes.
pub const FRAME_HEADER_LEN: usize = 4;

/// Upper bound on a single frame body; larger lengths are treated as a
/// corrupt stream rather than an allocation request.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// One protocol message. `T` is the event payload type (e.g. `FileEvent`
/// on the Collector leg, `FeedMessage` on the consumer leg).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame<T> {
    /// Client handshake: "I will publish `Publish` frames."
    HelloPublisher,
    /// Client handshake: "stream me topics matching these prefixes."
    HelloSubscriber {
        /// Topic prefixes to subscribe to (empty string = everything).
        prefixes: Vec<String>,
    },
    /// Client handshake for the lossless PUSH leg. `client` identifies
    /// the pusher across reconnects so the server can deduplicate
    /// re-sent items; `resume_after` is the highest sequence number the
    /// client knows was acknowledged.
    HelloPush {
        /// Stable pusher identity (e.g. `"mdt0"`).
        client: String,
        /// Highest push sequence number the client saw acknowledged.
        resume_after: u64,
    },
    /// Publisher → broker: publish `payload` on `topic` (lossy leg).
    Publish {
        /// Topic the payload is published on.
        topic: String,
        /// The payload.
        payload: T,
    },
    /// Broker → subscriber: a matching publication (lossy leg).
    Deliver {
        /// Topic the payload was published on.
        topic: String,
        /// The payload.
        payload: T,
    },
    /// Pusher → puller: item `seq` of this client's stream (lossless
    /// leg; retransmitted verbatim after a reconnect until acked).
    Item {
        /// Per-client dense sequence number, starting at 1.
        seq: u64,
        /// The payload.
        payload: T,
    },
    /// Puller → pusher: everything up to and including `up_to` has been
    /// handed to the local pipeline — the pusher may drop it.
    Ack {
        /// Highest contiguously accepted sequence number.
        up_to: u64,
    },
    /// Liveness probe, sent when a direction has been idle.
    Ping,
    /// Graceful end of stream: the peer drained and is going away.
    Fin,
}

fn variant(name: &str, fields: Vec<(&str, Value)>) -> Value {
    let map = fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
    Value::Map(vec![(name.to_string(), Value::Map(map))])
}

impl<T: Serialize> Serialize for Frame<T> {
    fn to_value(&self) -> Value {
        match self {
            Frame::HelloPublisher => Value::Str("HelloPublisher".into()),
            Frame::HelloSubscriber { prefixes } => {
                variant("HelloSubscriber", vec![("prefixes", prefixes.to_value())])
            }
            Frame::HelloPush { client, resume_after } => variant(
                "HelloPush",
                vec![("client", client.to_value()), ("resume_after", resume_after.to_value())],
            ),
            Frame::Publish { topic, payload } => variant(
                "Publish",
                vec![("topic", topic.to_value()), ("payload", payload.to_value())],
            ),
            Frame::Deliver { topic, payload } => variant(
                "Deliver",
                vec![("topic", topic.to_value()), ("payload", payload.to_value())],
            ),
            Frame::Item { seq, payload } => {
                variant("Item", vec![("seq", seq.to_value()), ("payload", payload.to_value())])
            }
            Frame::Ack { up_to } => variant("Ack", vec![("up_to", up_to.to_value())]),
            Frame::Ping => Value::Str("Ping".into()),
            Frame::Fin => Value::Str("Fin".into()),
        }
    }
}

fn field<'v>(body: &'v Value, variant: &str, name: &str) -> Result<&'v Value, DeError> {
    body.get(name).ok_or_else(|| DeError::msg(format!("Frame::{variant} missing field `{name}`")))
}

impl<T: Deserialize> Deserialize for Frame<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(name) => match name.as_str() {
                "HelloPublisher" => Ok(Frame::HelloPublisher),
                "Ping" => Ok(Frame::Ping),
                "Fin" => Ok(Frame::Fin),
                other => Err(DeError::msg(format!("unknown Frame variant `{other}`"))),
            },
            Value::Map(entries) if entries.len() == 1 => {
                let (name, body) = &entries[0];
                match name.as_str() {
                    "HelloSubscriber" => Ok(Frame::HelloSubscriber {
                        prefixes: Deserialize::from_value(field(
                            body,
                            "HelloSubscriber",
                            "prefixes",
                        )?)?,
                    }),
                    "HelloPush" => Ok(Frame::HelloPush {
                        client: Deserialize::from_value(field(body, "HelloPush", "client")?)?,
                        resume_after: Deserialize::from_value(field(
                            body,
                            "HelloPush",
                            "resume_after",
                        )?)?,
                    }),
                    "Publish" => Ok(Frame::Publish {
                        topic: Deserialize::from_value(field(body, "Publish", "topic")?)?,
                        payload: Deserialize::from_value(field(body, "Publish", "payload")?)?,
                    }),
                    "Deliver" => Ok(Frame::Deliver {
                        topic: Deserialize::from_value(field(body, "Deliver", "topic")?)?,
                        payload: Deserialize::from_value(field(body, "Deliver", "payload")?)?,
                    }),
                    "Item" => Ok(Frame::Item {
                        seq: Deserialize::from_value(field(body, "Item", "seq")?)?,
                        payload: Deserialize::from_value(field(body, "Item", "payload")?)?,
                    }),
                    "Ack" => Ok(Frame::Ack {
                        up_to: Deserialize::from_value(field(body, "Ack", "up_to")?)?,
                    }),
                    other => Err(DeError::msg(format!("unknown Frame variant `{other}`"))),
                }
            }
            other => Err(DeError::mismatch("Frame", other)),
        }
    }
}

fn invalid(err: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

/// Writes one length-prefixed message and flushes the writer.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn write_msg<M: Serialize>(w: &mut impl Write, msg: &M) -> io::Result<()> {
    let body = serde_json::to_string(msg).map_err(invalid)?;
    let bytes = body.as_bytes();
    let len = u32::try_from(bytes.len()).map_err(|_| invalid("frame exceeds u32 length prefix"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    sdci_obs::static_metric!(counter, "sdci_net_frames_out_total").inc();
    sdci_obs::static_metric!(counter, "sdci_net_bytes_out_total")
        .add((FRAME_HEADER_LEN + bytes.len()) as u64);
    Ok(())
}

/// Reads one length-prefixed message.
///
/// Not safe on sockets with a read timeout: a timeout that fires after
/// the length prefix (or part of the body) has been consumed loses that
/// progress, and the next call misparses body bytes as a header. Use
/// [`FrameReader`] on any stream whose reads can time out mid-frame.
///
/// # Errors
///
/// Returns `InvalidData` on oversized lengths, non-UTF-8 bodies, or JSON
/// that does not decode as `M`; otherwise propagates reader failures
/// (including timeouts configured on the stream).
pub fn read_msg<M: Deserialize>(r: &mut impl Read) -> io::Result<M> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(invalid(format!("frame length {len} exceeds {MAX_FRAME_LEN}")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    sdci_obs::static_metric!(counter, "sdci_net_frames_in_total").inc();
    sdci_obs::static_metric!(counter, "sdci_net_bytes_in_total")
        .add((FRAME_HEADER_LEN + len) as u64);
    let text = std::str::from_utf8(&body).map_err(invalid)?;
    serde_json::from_str(text).map_err(invalid)
}

/// Incremental, timeout-tolerant frame reader.
///
/// sdci-net sockets use a short read timeout as their heartbeat tick,
/// and a timeout is perfectly able to fire *mid-frame* — the length
/// prefix arrived but the body is still in flight (Nagle stalls, load,
/// a slow network). [`read_msg`] would lose the consumed prefix and
/// desynchronize the stream; `FrameReader` instead keeps the partial
/// frame across calls, so a timed-out [`FrameReader::read_msg`] is
/// simply called again and resumes where the stream left off.
pub struct FrameReader<R> {
    inner: R,
    /// Bytes of the current frame received so far, header included.
    buf: Vec<u8>,
    /// Bytes needed before the next decode step: the header length
    /// until the header is complete, then header + body.
    need: usize,
    /// Whether `need` already accounts for the body length.
    have_header: bool,
}

impl<R> std::fmt::Debug for FrameReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameReader").field("buffered", &self.buf.len()).finish()
    }
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream positioned on a frame boundary.
    pub fn new(inner: R) -> Self {
        FrameReader { inner, buf: Vec::new(), need: FRAME_HEADER_LEN, have_header: false }
    }

    /// The underlying stream (e.g. to adjust socket timeouts).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Reads one message, resuming any partially received frame.
    ///
    /// # Errors
    ///
    /// `WouldBlock`/`TimedOut` are resumable: call again to continue
    /// the same frame. Any other error — including the `InvalidData`
    /// cases of [`read_msg`] — means the stream is no longer usable.
    pub fn read_msg<M: Deserialize>(&mut self) -> io::Result<M> {
        loop {
            while self.buf.len() < self.need {
                let have = self.buf.len();
                self.buf.resize(self.need, 0);
                match self.inner.read(&mut self.buf[have..]) {
                    Ok(0) => {
                        self.buf.truncate(have);
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ));
                    }
                    Ok(n) => self.buf.truncate(have + n),
                    Err(e) => {
                        self.buf.truncate(have);
                        return Err(e);
                    }
                }
            }
            if self.have_header {
                sdci_obs::static_metric!(counter, "sdci_net_frames_in_total").inc();
                sdci_obs::static_metric!(counter, "sdci_net_bytes_in_total")
                    .add(self.buf.len() as u64);
                let result = std::str::from_utf8(&self.buf[FRAME_HEADER_LEN..])
                    .map_err(invalid)
                    .and_then(|text| serde_json::from_str(text).map_err(invalid));
                self.buf.clear();
                self.need = FRAME_HEADER_LEN;
                self.have_header = false;
                return result;
            }
            let header: [u8; FRAME_HEADER_LEN] =
                self.buf[..FRAME_HEADER_LEN].try_into().expect("header length");
            let len = u32::from_be_bytes(header) as usize;
            if len > MAX_FRAME_LEN {
                return Err(invalid(format!("frame length {len} exceeds {MAX_FRAME_LEN}")));
            }
            self.need = FRAME_HEADER_LEN + len;
            self.have_header = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdci_types::{ChangelogKind, EventKind, Fid, FileEvent, MdtIndex, SimTime};
    use std::path::PathBuf;

    fn event(i: u64) -> FileEvent {
        FileEvent {
            index: i,
            mdt: MdtIndex::new(0),
            changelog_kind: ChangelogKind::Create,
            kind: EventKind::Created,
            time: SimTime::from_nanos(i),
            path: PathBuf::from(format!("/wire/f{i}")),
            src_path: None,
            target: Fid::new(1, i as u32, 0),
            is_dir: false,
            extracted_unix_ns: None,
        }
    }

    fn roundtrip(frame: Frame<FileEvent>) {
        let mut buf = Vec::new();
        write_msg(&mut buf, &frame).unwrap();
        assert_eq!(
            buf.len(),
            FRAME_HEADER_LEN + {
                let len = u32::from_be_bytes(buf[..4].try_into().unwrap());
                len as usize
            }
        );
        let back: Frame<FileEvent> = read_msg(&mut &buf[..]).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::HelloPublisher);
        roundtrip(Frame::HelloSubscriber { prefixes: vec!["events/".into(), String::new()] });
        roundtrip(Frame::HelloPush { client: "mdt0".into(), resume_after: 41 });
        roundtrip(Frame::Publish { topic: "events/mdt0".into(), payload: event(1) });
        roundtrip(Frame::Deliver { topic: "feed/all".into(), payload: event(2) });
        roundtrip(Frame::Item { seq: 9, payload: event(3) });
        roundtrip(Frame::Ack { up_to: 9 });
        roundtrip(Frame::Ping);
        roundtrip(Frame::Fin);
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let mut buf = Vec::new();
        for i in 0..5 {
            write_msg(&mut buf, &Frame::Item { seq: i, payload: event(i) }).unwrap();
        }
        let mut cursor = &buf[..];
        for i in 0..5 {
            let frame: Frame<FileEvent> = read_msg(&mut cursor).unwrap();
            assert_eq!(frame, Frame::Item { seq: i, payload: event(i) });
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"junk");
        let err = read_msg::<Frame<FileEvent>>(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_body_is_an_error() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &Frame::<FileEvent>::Ping).unwrap();
        buf.pop();
        assert!(read_msg::<Frame<FileEvent>>(&mut &buf[..]).is_err());
    }

    /// Yields at most one byte per call, returning `WouldBlock` before
    /// every byte — the worst case of a socket whose read timeout keeps
    /// firing while a frame trickles in.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        ready: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            self.ready = false;
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_frame() {
        let mut data = Vec::new();
        for i in 0..3 {
            write_msg(&mut data, &Frame::Item { seq: i, payload: event(i) }).unwrap();
        }
        let total = data.len();
        let mut reader = FrameReader::new(Trickle { data, pos: 0, ready: false });
        for i in 0..3 {
            // Every byte costs one timed-out call; plain `read_msg`
            // would desync on the first of them.
            let frame = loop {
                match reader.read_msg::<Frame<FileEvent>>() {
                    Ok(frame) => break frame,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("unexpected error: {e:?}"),
                }
            };
            assert_eq!(frame, Frame::Item { seq: i, payload: event(i) });
        }
        assert!(total > 0);
        // The stream is drained; the next read is a clean EOF.
        let err = loop {
            match reader.read_msg::<Frame<FileEvent>>() {
                Ok(frame) => panic!("unexpected frame: {frame:?}"),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn frame_reader_rejects_oversized_lengths() {
        let mut data = Vec::new();
        data.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut reader = FrameReader::new(&data[..]);
        let err = reader.read_msg::<Frame<FileEvent>>().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_json_is_invalid_data() {
        let body = b"not json";
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
        buf.extend_from_slice(body);
        let err = read_msg::<Frame<FileEvent>>(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
