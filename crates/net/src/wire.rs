//! Wire format: 4-byte big-endian length prefix + a JSON-encoded frame.
//!
//! Every message on an sdci-net socket is one [`Frame`], serialized with
//! the workspace's serde conventions (externally tagged enums) and
//! prefixed with its byte length so the reader can frame the stream:
//!
//! ```text
//! +------------+---------------------------+
//! | len: u32be | body: len bytes of JSON   |
//! +------------+---------------------------+
//! ```
//!
//! JSON keeps the protocol debuggable with `nc`/`tcpdump`; the length
//! prefix keeps parsing trivial and rejects runaway frames early.

use serde::{DeError, Deserialize, Serialize, Value};
use std::io::{self, Read, Write};

/// Length-prefix size in bytes.
pub const FRAME_HEADER_LEN: usize = 4;

/// Upper bound on a single frame body; larger lengths are treated as a
/// corrupt stream rather than an allocation request.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// One protocol message. `T` is the event payload type (e.g. `FileEvent`
/// on the Collector leg, `FeedMessage` on the consumer leg).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame<T> {
    /// Client handshake: "I will publish `Publish` frames."
    HelloPublisher,
    /// Client handshake: "stream me topics matching these prefixes."
    HelloSubscriber {
        /// Topic prefixes to subscribe to (empty string = everything).
        prefixes: Vec<String>,
    },
    /// Client handshake for the lossless PUSH leg. `client` identifies
    /// the pusher across reconnects so the server can deduplicate
    /// re-sent items; `resume_after` is the highest sequence number the
    /// client knows was acknowledged.
    HelloPush {
        /// Stable pusher identity (e.g. `"mdt0"`).
        client: String,
        /// Highest push sequence number the client saw acknowledged.
        resume_after: u64,
    },
    /// Publisher → broker: publish `payload` on `topic` (lossy leg).
    Publish {
        /// Topic the payload is published on.
        topic: String,
        /// The payload.
        payload: T,
    },
    /// Broker → subscriber: a matching publication (lossy leg).
    Deliver {
        /// Topic the payload was published on.
        topic: String,
        /// The payload.
        payload: T,
    },
    /// Pusher → puller: item `seq` of this client's stream (lossless
    /// leg; retransmitted verbatim after a reconnect until acked).
    Item {
        /// Per-client dense sequence number, starting at 1.
        seq: u64,
        /// The payload.
        payload: T,
    },
    /// Puller → pusher: everything up to and including `up_to` has been
    /// handed to the local pipeline — the pusher may drop it.
    Ack {
        /// Highest contiguously accepted sequence number.
        up_to: u64,
    },
    /// Liveness probe, sent when a direction has been idle.
    Ping,
    /// Graceful end of stream: the peer drained and is going away.
    Fin,
}

fn variant(name: &str, fields: Vec<(&str, Value)>) -> Value {
    let map = fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
    Value::Map(vec![(name.to_string(), Value::Map(map))])
}

impl<T: Serialize> Serialize for Frame<T> {
    fn to_value(&self) -> Value {
        match self {
            Frame::HelloPublisher => Value::Str("HelloPublisher".into()),
            Frame::HelloSubscriber { prefixes } => {
                variant("HelloSubscriber", vec![("prefixes", prefixes.to_value())])
            }
            Frame::HelloPush { client, resume_after } => variant(
                "HelloPush",
                vec![("client", client.to_value()), ("resume_after", resume_after.to_value())],
            ),
            Frame::Publish { topic, payload } => variant(
                "Publish",
                vec![("topic", topic.to_value()), ("payload", payload.to_value())],
            ),
            Frame::Deliver { topic, payload } => variant(
                "Deliver",
                vec![("topic", topic.to_value()), ("payload", payload.to_value())],
            ),
            Frame::Item { seq, payload } => {
                variant("Item", vec![("seq", seq.to_value()), ("payload", payload.to_value())])
            }
            Frame::Ack { up_to } => variant("Ack", vec![("up_to", up_to.to_value())]),
            Frame::Ping => Value::Str("Ping".into()),
            Frame::Fin => Value::Str("Fin".into()),
        }
    }
}

fn field<'v>(body: &'v Value, variant: &str, name: &str) -> Result<&'v Value, DeError> {
    body.get(name).ok_or_else(|| DeError::msg(format!("Frame::{variant} missing field `{name}`")))
}

impl<T: Deserialize> Deserialize for Frame<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(name) => match name.as_str() {
                "HelloPublisher" => Ok(Frame::HelloPublisher),
                "Ping" => Ok(Frame::Ping),
                "Fin" => Ok(Frame::Fin),
                other => Err(DeError::msg(format!("unknown Frame variant `{other}`"))),
            },
            Value::Map(entries) if entries.len() == 1 => {
                let (name, body) = &entries[0];
                match name.as_str() {
                    "HelloSubscriber" => Ok(Frame::HelloSubscriber {
                        prefixes: Deserialize::from_value(field(
                            body,
                            "HelloSubscriber",
                            "prefixes",
                        )?)?,
                    }),
                    "HelloPush" => Ok(Frame::HelloPush {
                        client: Deserialize::from_value(field(body, "HelloPush", "client")?)?,
                        resume_after: Deserialize::from_value(field(
                            body,
                            "HelloPush",
                            "resume_after",
                        )?)?,
                    }),
                    "Publish" => Ok(Frame::Publish {
                        topic: Deserialize::from_value(field(body, "Publish", "topic")?)?,
                        payload: Deserialize::from_value(field(body, "Publish", "payload")?)?,
                    }),
                    "Deliver" => Ok(Frame::Deliver {
                        topic: Deserialize::from_value(field(body, "Deliver", "topic")?)?,
                        payload: Deserialize::from_value(field(body, "Deliver", "payload")?)?,
                    }),
                    "Item" => Ok(Frame::Item {
                        seq: Deserialize::from_value(field(body, "Item", "seq")?)?,
                        payload: Deserialize::from_value(field(body, "Item", "payload")?)?,
                    }),
                    "Ack" => Ok(Frame::Ack {
                        up_to: Deserialize::from_value(field(body, "Ack", "up_to")?)?,
                    }),
                    other => Err(DeError::msg(format!("unknown Frame variant `{other}`"))),
                }
            }
            other => Err(DeError::mismatch("Frame", other)),
        }
    }
}

fn invalid(err: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

/// Writes one length-prefixed message and flushes the writer.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn write_msg<M: Serialize>(w: &mut impl Write, msg: &M) -> io::Result<()> {
    let body = serde_json::to_string(msg).map_err(invalid)?;
    let bytes = body.as_bytes();
    let len = u32::try_from(bytes.len()).map_err(|_| invalid("frame exceeds u32 length prefix"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one length-prefixed message.
///
/// # Errors
///
/// Returns `InvalidData` on oversized lengths, non-UTF-8 bodies, or JSON
/// that does not decode as `M`; otherwise propagates reader failures
/// (including timeouts configured on the stream).
pub fn read_msg<M: Deserialize>(r: &mut impl Read) -> io::Result<M> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(invalid(format!("frame length {len} exceeds {MAX_FRAME_LEN}")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let text = std::str::from_utf8(&body).map_err(invalid)?;
    serde_json::from_str(text).map_err(invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdci_types::{ChangelogKind, EventKind, Fid, FileEvent, MdtIndex, SimTime};
    use std::path::PathBuf;

    fn event(i: u64) -> FileEvent {
        FileEvent {
            index: i,
            mdt: MdtIndex::new(0),
            changelog_kind: ChangelogKind::Create,
            kind: EventKind::Created,
            time: SimTime::from_nanos(i),
            path: PathBuf::from(format!("/wire/f{i}")),
            src_path: None,
            target: Fid::new(1, i as u32, 0),
            is_dir: false,
        }
    }

    fn roundtrip(frame: Frame<FileEvent>) {
        let mut buf = Vec::new();
        write_msg(&mut buf, &frame).unwrap();
        assert_eq!(
            buf.len(),
            FRAME_HEADER_LEN + {
                let len = u32::from_be_bytes(buf[..4].try_into().unwrap());
                len as usize
            }
        );
        let back: Frame<FileEvent> = read_msg(&mut &buf[..]).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::HelloPublisher);
        roundtrip(Frame::HelloSubscriber { prefixes: vec!["events/".into(), String::new()] });
        roundtrip(Frame::HelloPush { client: "mdt0".into(), resume_after: 41 });
        roundtrip(Frame::Publish { topic: "events/mdt0".into(), payload: event(1) });
        roundtrip(Frame::Deliver { topic: "feed/all".into(), payload: event(2) });
        roundtrip(Frame::Item { seq: 9, payload: event(3) });
        roundtrip(Frame::Ack { up_to: 9 });
        roundtrip(Frame::Ping);
        roundtrip(Frame::Fin);
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let mut buf = Vec::new();
        for i in 0..5 {
            write_msg(&mut buf, &Frame::Item { seq: i, payload: event(i) }).unwrap();
        }
        let mut cursor = &buf[..];
        for i in 0..5 {
            let frame: Frame<FileEvent> = read_msg(&mut cursor).unwrap();
            assert_eq!(frame, Frame::Item { seq: i, payload: event(i) });
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"junk");
        let err = read_msg::<Frame<FileEvent>>(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_body_is_an_error() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &Frame::<FileEvent>::Ping).unwrap();
        buf.pop();
        assert!(read_msg::<Frame<FileEvent>>(&mut &buf[..]).is_err());
    }

    #[test]
    fn garbage_json_is_invalid_data() {
        let body = b"not json";
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
        buf.extend_from_slice(body);
        let err = read_msg::<Frame<FileEvent>>(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
