//! Wire format: 4-byte big-endian length prefix + a JSON-encoded frame.
//!
//! Every message on an sdci-net socket is one [`Frame`], serialized with
//! the workspace's serde conventions (externally tagged enums) and
//! prefixed with its byte length so the reader can frame the stream:
//!
//! ```text
//! +------------+---------------------------+
//! | len: u32be | body: len bytes of JSON   |
//! +------------+---------------------------+
//! ```
//!
//! JSON keeps the protocol debuggable with `nc`/`tcpdump`; the length
//! prefix keeps parsing trivial and rejects runaway frames early.

use sdci_types::TraceContext;
use serde::{DeError, Deserialize, Serialize, Value};
use std::io::{self, Read, Write};
use std::time::Duration;

/// Length-prefix size in bytes.
pub const FRAME_HEADER_LEN: usize = 4;

/// Upper bound on a single frame body; larger lengths are treated as a
/// corrupt stream rather than an allocation request.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Highest wire protocol version this build speaks.
///
/// * **1** — the PR 1 protocol: one event per `Item`/`Publish` frame.
/// * **2** — adds the batched variants [`Frame::ItemBatch`] and
///   [`Frame::PublishBatch`]. A proto-2 pusher also understands the
///   gap [`Frame::Nack`], which the pull server only sends to clients
///   that announced proto ≥ 2 in their `HelloPush`.
///
/// Versions are exchanged at the `Hello*` handshake as an *optional*
/// field: a proto-1 peer never sends it and ignores unknown fields, so
/// both directions of a mixed-version session degrade to per-event
/// frames. The effective session version is `min(ours, theirs)`.
pub const WIRE_PROTO: u32 = 2;

/// One protocol message. `T` is the event payload type (e.g. `FileEvent`
/// on the Collector leg, `FeedMessage` on the consumer leg).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame<T> {
    /// Client handshake: "I will publish `Publish` frames."
    HelloPublisher,
    /// Client handshake: "stream me topics matching these prefixes."
    HelloSubscriber {
        /// Topic prefixes to subscribe to (empty string = everything).
        prefixes: Vec<String>,
    },
    /// Client handshake for the lossless PUSH leg. `client` identifies
    /// the pusher across reconnects so the server can deduplicate
    /// re-sent items; `resume_after` is the highest sequence number the
    /// client knows was acknowledged.
    HelloPush {
        /// Stable pusher identity (e.g. `"mdt0"`).
        client: String,
        /// Highest push sequence number the client saw acknowledged.
        resume_after: u64,
        /// Wire protocol version the client speaks ([`WIRE_PROTO`]).
        /// Omitted on the wire when `None`; absent means proto 1.
        proto: Option<u32>,
    },
    /// Publisher → broker: publish `payload` on `topic` (lossy leg).
    Publish {
        /// Topic the payload is published on.
        topic: String,
        /// The payload.
        payload: T,
    },
    /// Broker → subscriber: a matching publication (lossy leg).
    Deliver {
        /// Topic the payload was published on.
        topic: String,
        /// The payload.
        payload: T,
    },
    /// Pusher → puller: item `seq` of this client's stream (lossless
    /// leg; retransmitted verbatim after a reconnect until acked).
    Item {
        /// Per-client dense sequence number, starting at 1.
        seq: u64,
        /// The payload.
        payload: T,
    },
    /// Pusher → puller: a contiguous run of items in one frame
    /// (proto ≥ 2). Member `i` carries sequence `first_seq + i`; the
    /// puller acks the whole run with a single `Ack`.
    ItemBatch {
        /// Sequence number of `payloads[0]`.
        first_seq: u64,
        /// The payloads, in sequence order. Never empty.
        payloads: Vec<T>,
        /// Tracing context for the *send leg* span covering this
        /// frame (the first sampled payload's, re-parented to the
        /// sender's network span). Omitted on the wire when `None`;
        /// batch frames only exist on proto ≥ 2 sessions, so adding
        /// the field never changes what a proto-1 peer reads.
        trace: Option<TraceContext>,
    },
    /// Publisher → broker: several payloads for one topic in one frame
    /// (proto ≥ 2, lossy leg).
    PublishBatch {
        /// Topic every payload is published on.
        topic: String,
        /// The payloads, in publish order. Never empty.
        payloads: Vec<T>,
        /// Send-leg tracing context, as on [`Frame::ItemBatch`].
        trace: Option<TraceContext>,
    },
    /// Puller → pusher: a sequence gap was detected — the server
    /// expected `expected` but saw something later. The pusher should
    /// rewind its resend buffer to `expected` and retransmit in place,
    /// instead of waiting out the liveness timeout and reconnecting.
    /// Only sent to clients that announced proto ≥ 2 in `HelloPush`.
    Nack {
        /// The sequence number the server will accept next.
        expected: u64,
    },
    /// Puller → pusher: everything up to and including `up_to` has been
    /// handed to the local pipeline — the pusher may drop it.
    Ack {
        /// Highest contiguously accepted sequence number.
        up_to: u64,
        /// Wire protocol version the server speaks, echoed in the
        /// greeting `Ack` that answers a `HelloPush`; `None` (omitted
        /// on the wire) on regular acks and from proto-1 servers.
        proto: Option<u32>,
    },
    /// Liveness probe, sent when a direction has been idle.
    Ping,
    /// Graceful end of stream: the peer drained and is going away.
    Fin,
}

fn variant(name: &str, fields: Vec<(&str, Value)>) -> Value {
    let map = fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
    Value::Map(vec![(name.to_string(), Value::Map(map))])
}

impl<T: Serialize> Serialize for Frame<T> {
    fn to_value(&self) -> Value {
        match self {
            Frame::HelloPublisher => Value::Str("HelloPublisher".into()),
            Frame::HelloSubscriber { prefixes } => {
                variant("HelloSubscriber", vec![("prefixes", prefixes.to_value())])
            }
            Frame::HelloPush { client, resume_after, proto } => {
                let mut fields =
                    vec![("client", client.to_value()), ("resume_after", resume_after.to_value())];
                if let Some(p) = proto {
                    fields.push(("proto", p.to_value()));
                }
                variant("HelloPush", fields)
            }
            Frame::Publish { topic, payload } => variant(
                "Publish",
                vec![("topic", topic.to_value()), ("payload", payload.to_value())],
            ),
            Frame::Deliver { topic, payload } => variant(
                "Deliver",
                vec![("topic", topic.to_value()), ("payload", payload.to_value())],
            ),
            Frame::Item { seq, payload } => {
                variant("Item", vec![("seq", seq.to_value()), ("payload", payload.to_value())])
            }
            Frame::ItemBatch { first_seq, payloads, trace } => {
                let mut fields =
                    vec![("first_seq", first_seq.to_value()), ("payloads", payloads.to_value())];
                if let Some(t) = trace {
                    fields.push(("trace", t.to_value()));
                }
                variant("ItemBatch", fields)
            }
            Frame::PublishBatch { topic, payloads, trace } => {
                let mut fields =
                    vec![("topic", topic.to_value()), ("payloads", payloads.to_value())];
                if let Some(t) = trace {
                    fields.push(("trace", t.to_value()));
                }
                variant("PublishBatch", fields)
            }
            Frame::Nack { expected } => variant("Nack", vec![("expected", expected.to_value())]),
            Frame::Ack { up_to, proto } => {
                let mut fields = vec![("up_to", up_to.to_value())];
                if let Some(p) = proto {
                    fields.push(("proto", p.to_value()));
                }
                variant("Ack", fields)
            }
            Frame::Ping => Value::Str("Ping".into()),
            Frame::Fin => Value::Str("Fin".into()),
        }
    }
}

fn field<'v>(body: &'v Value, variant: &str, name: &str) -> Result<&'v Value, DeError> {
    body.get(name).ok_or_else(|| DeError::msg(format!("Frame::{variant} missing field `{name}`")))
}

impl<T: Deserialize> Deserialize for Frame<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(name) => match name.as_str() {
                "HelloPublisher" => Ok(Frame::HelloPublisher),
                "Ping" => Ok(Frame::Ping),
                "Fin" => Ok(Frame::Fin),
                other => Err(DeError::msg(format!("unknown Frame variant `{other}`"))),
            },
            Value::Map(entries) if entries.len() == 1 => {
                let (name, body) = &entries[0];
                match name.as_str() {
                    "HelloSubscriber" => Ok(Frame::HelloSubscriber {
                        prefixes: Deserialize::from_value(field(
                            body,
                            "HelloSubscriber",
                            "prefixes",
                        )?)?,
                    }),
                    "HelloPush" => Ok(Frame::HelloPush {
                        client: Deserialize::from_value(field(body, "HelloPush", "client")?)?,
                        resume_after: Deserialize::from_value(field(
                            body,
                            "HelloPush",
                            "resume_after",
                        )?)?,
                        // Absent on proto-1 wires; treat as "not stated".
                        proto: match body.get("proto") {
                            Some(v) => Deserialize::from_value(v)?,
                            None => None,
                        },
                    }),
                    "Publish" => Ok(Frame::Publish {
                        topic: Deserialize::from_value(field(body, "Publish", "topic")?)?,
                        payload: Deserialize::from_value(field(body, "Publish", "payload")?)?,
                    }),
                    "Deliver" => Ok(Frame::Deliver {
                        topic: Deserialize::from_value(field(body, "Deliver", "topic")?)?,
                        payload: Deserialize::from_value(field(body, "Deliver", "payload")?)?,
                    }),
                    "Item" => Ok(Frame::Item {
                        seq: Deserialize::from_value(field(body, "Item", "seq")?)?,
                        payload: Deserialize::from_value(field(body, "Item", "payload")?)?,
                    }),
                    "ItemBatch" => Ok(Frame::ItemBatch {
                        first_seq: Deserialize::from_value(field(body, "ItemBatch", "first_seq")?)?,
                        payloads: Deserialize::from_value(field(body, "ItemBatch", "payloads")?)?,
                        trace: match body.get("trace") {
                            Some(v) => Deserialize::from_value(v)?,
                            None => None,
                        },
                    }),
                    "PublishBatch" => Ok(Frame::PublishBatch {
                        topic: Deserialize::from_value(field(body, "PublishBatch", "topic")?)?,
                        payloads: Deserialize::from_value(field(
                            body,
                            "PublishBatch",
                            "payloads",
                        )?)?,
                        trace: match body.get("trace") {
                            Some(v) => Deserialize::from_value(v)?,
                            None => None,
                        },
                    }),
                    "Nack" => Ok(Frame::Nack {
                        expected: Deserialize::from_value(field(body, "Nack", "expected")?)?,
                    }),
                    "Ack" => Ok(Frame::Ack {
                        up_to: Deserialize::from_value(field(body, "Ack", "up_to")?)?,
                        proto: match body.get("proto") {
                            Some(v) => Deserialize::from_value(v)?,
                            None => None,
                        },
                    }),
                    other => Err(DeError::msg(format!("unknown Frame variant `{other}`"))),
                }
            }
            other => Err(DeError::mismatch("Frame", other)),
        }
    }
}

fn invalid(err: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

/// Writes one length-prefixed message and flushes the writer.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn write_msg<M: Serialize>(w: &mut impl Write, msg: &M) -> io::Result<()> {
    let body = serde_json::to_string(msg).map_err(invalid)?;
    write_body(w, &body)
}

/// Writes one already-serialized frame body with its length prefix.
fn write_body(w: &mut impl Write, body: &str) -> io::Result<()> {
    let bytes = body.as_bytes();
    let len = u32::try_from(bytes.len()).map_err(|_| invalid("frame exceeds u32 length prefix"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    sdci_obs::static_metric!(counter, "sdci_net_frames_out_total").inc();
    sdci_obs::static_metric!(counter, "sdci_net_bytes_out_total")
        .add((FRAME_HEADER_LEN + bytes.len()) as u64);
    Ok(())
}

/// Adapter so a pre-built frame [`Value`] can go through `serde_json`
/// without re-serializing every payload on a batch split.
struct RawValue<'a>(&'a Value);

impl Serialize for RawValue<'_> {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Writes `payloads` as one [`Frame::ItemBatch`] (member `i` carrying
/// sequence `first_seq + i`), splitting into several frames when the
/// encoded batch would exceed [`MAX_FRAME_LEN`]. Returns the number of
/// frames written.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn write_item_batch<T: Serialize>(
    w: &mut impl Write,
    first_seq: u64,
    payloads: &[T],
) -> io::Result<usize> {
    write_item_batch_traced(w, first_seq, payloads, None)
}

/// [`write_item_batch`] carrying a send-leg tracing context on each
/// written frame (every split chunk repeats it).
pub fn write_item_batch_traced<T: Serialize>(
    w: &mut impl Write,
    first_seq: u64,
    payloads: &[T],
    trace: Option<TraceContext>,
) -> io::Result<usize> {
    write_item_batch_capped(w, first_seq, payloads, trace, MAX_FRAME_LEN)
}

/// [`write_item_batch`] with an explicit frame-size cap (exercised with
/// a tiny cap in tests; production callers use [`MAX_FRAME_LEN`]).
pub(crate) fn write_item_batch_capped<T: Serialize>(
    w: &mut impl Write,
    first_seq: u64,
    payloads: &[T],
    trace: Option<TraceContext>,
    max_len: usize,
) -> io::Result<usize> {
    let values: Vec<Value> = payloads.iter().map(Serialize::to_value).collect();
    write_split(w, &values, 0, max_len, &|lo, chunk| {
        batch_frame("ItemBatch", ("first_seq", (first_seq + lo as u64).to_value()), chunk, trace)
    })
}

/// Writes `payloads` as one [`Frame::PublishBatch`] on `topic`,
/// splitting into several frames when the encoded batch would exceed
/// [`MAX_FRAME_LEN`]. Returns the number of frames written.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn write_publish_batch<T: Serialize>(
    w: &mut impl Write,
    topic: &str,
    payloads: &[T],
) -> io::Result<usize> {
    write_publish_batch_traced(w, topic, payloads, None)
}

/// [`write_publish_batch`] carrying a send-leg tracing context on each
/// written frame (every split chunk repeats it).
pub fn write_publish_batch_traced<T: Serialize>(
    w: &mut impl Write,
    topic: &str,
    payloads: &[T],
    trace: Option<TraceContext>,
) -> io::Result<usize> {
    write_publish_batch_capped(w, topic, payloads, trace, MAX_FRAME_LEN)
}

/// [`write_publish_batch`] with an explicit frame-size cap.
pub(crate) fn write_publish_batch_capped<T: Serialize>(
    w: &mut impl Write,
    topic: &str,
    payloads: &[T],
    trace: Option<TraceContext>,
    max_len: usize,
) -> io::Result<usize> {
    let values: Vec<Value> = payloads.iter().map(Serialize::to_value).collect();
    write_split(w, &values, 0, max_len, &|_, chunk| {
        batch_frame("PublishBatch", ("topic", topic.to_value()), chunk, trace)
    })
}

fn batch_frame(
    name: &str,
    head: (&str, Value),
    chunk: &[Value],
    trace: Option<TraceContext>,
) -> Value {
    let mut fields = vec![head, ("payloads", Value::Seq(chunk.to_vec()))];
    if let Some(t) = trace {
        fields.push(("trace", t.to_value()));
    }
    variant(name, fields)
}

/// Recursively halves `values` until each frame fits `max_len`, writing
/// the resulting frames in order. A single payload whose frame still
/// exceeds the cap is written anyway — it cannot be split further, and
/// the u32/`MAX_FRAME_LEN` length checks remain the backstop.
fn write_split(
    w: &mut impl Write,
    values: &[Value],
    offset: usize,
    max_len: usize,
    frame_for: &dyn Fn(usize, &[Value]) -> Value,
) -> io::Result<usize> {
    if values.is_empty() {
        return Ok(0);
    }
    let frame = frame_for(offset, values);
    let body = serde_json::to_string(&RawValue(&frame)).map_err(invalid)?;
    if body.len() <= max_len || values.len() == 1 {
        write_body(w, &body)?;
        return Ok(1);
    }
    let mid = values.len() / 2;
    let left = write_split(w, &values[..mid], offset, max_len, frame_for)?;
    let right = write_split(w, &values[mid..], offset + mid, max_len, frame_for)?;
    Ok(left + right)
}

/// Reads one length-prefixed message.
///
/// Not safe on sockets with a read timeout: a timeout that fires after
/// the length prefix (or part of the body) has been consumed loses that
/// progress, and the next call misparses body bytes as a header. Use
/// [`FrameReader`] on any stream whose reads can time out mid-frame.
///
/// # Errors
///
/// Returns `InvalidData` on oversized lengths, non-UTF-8 bodies, or JSON
/// that does not decode as `M`; otherwise propagates reader failures
/// (including timeouts configured on the stream).
pub fn read_msg<M: Deserialize>(r: &mut impl Read) -> io::Result<M> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(invalid(format!("frame length {len} exceeds {MAX_FRAME_LEN}")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    sdci_obs::static_metric!(counter, "sdci_net_frames_in_total").inc();
    sdci_obs::static_metric!(counter, "sdci_net_bytes_in_total")
        .add((FRAME_HEADER_LEN + len) as u64);
    let text = std::str::from_utf8(&body).map_err(invalid)?;
    serde_json::from_str(text).map_err(invalid)
}

/// Incremental, timeout-tolerant frame reader.
///
/// sdci-net sockets use a short read timeout as their heartbeat tick,
/// and a timeout is perfectly able to fire *mid-frame* — the length
/// prefix arrived but the body is still in flight (Nagle stalls, load,
/// a slow network). [`read_msg`] would lose the consumed prefix and
/// desynchronize the stream; `FrameReader` instead keeps the partial
/// frame across calls, so a timed-out [`FrameReader::read_msg`] is
/// simply called again and resumes where the stream left off.
pub struct FrameReader<R> {
    inner: R,
    /// Bytes of the current frame received so far, header included.
    buf: Vec<u8>,
    /// Bytes needed before the next decode step: the header length
    /// until the header is complete, then header + body.
    need: usize,
    /// Whether `need` already accounts for the body length.
    have_header: bool,
    /// Installed recv-side fault stream; `None` is a clean wire.
    faults: Option<sdci_faults::StreamFaults>,
    /// Raw body of a frame an injected *duplicate* fault will deliver
    /// again on the next call.
    replay: Option<Vec<u8>>,
}

impl<R> std::fmt::Debug for FrameReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameReader").field("buffered", &self.buf.len()).finish()
    }
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream positioned on a frame boundary.
    pub fn new(inner: R) -> Self {
        Self::with_faults(inner, None)
    }

    /// Like [`FrameReader::new`], with a recv-side fault stream: each
    /// complete frame draws one decision — drop discards it and reads
    /// on, duplicate delivers it twice, truncate poisons it into
    /// `InvalidData` (killing the connection, like a real mid-body
    /// cut), delay stalls before delivering. While the plan scripts a
    /// partition, reads stall briefly and return `WouldBlock` so the
    /// caller's liveness window — not a read error — detects it.
    pub fn with_faults(inner: R, faults: Option<sdci_faults::StreamFaults>) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
            need: FRAME_HEADER_LEN,
            have_header: false,
            faults,
            replay: None,
        }
    }

    /// The underlying stream (e.g. to adjust socket timeouts).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Reads one message, resuming any partially received frame.
    ///
    /// # Errors
    ///
    /// `WouldBlock`/`TimedOut` are resumable: call again to continue
    /// the same frame. Any other error — including the `InvalidData`
    /// cases of [`read_msg`] — means the stream is no longer usable.
    pub fn read_msg<M: Deserialize>(&mut self) -> io::Result<M> {
        if let Some(body) = self.replay.take() {
            // The second delivery of an injected duplicate.
            let text = std::str::from_utf8(&body).map_err(invalid)?;
            return serde_json::from_str(text).map_err(invalid);
        }
        if let Some(faults) = &self.faults {
            if faults.partitioned() {
                std::thread::sleep(Duration::from_millis(2));
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "injected partition: nothing arrives",
                ));
            }
        }
        loop {
            while self.buf.len() < self.need {
                let have = self.buf.len();
                self.buf.resize(self.need, 0);
                match self.inner.read(&mut self.buf[have..]) {
                    Ok(0) => {
                        self.buf.truncate(have);
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ));
                    }
                    Ok(n) => self.buf.truncate(have + n),
                    Err(e) => {
                        self.buf.truncate(have);
                        return Err(e);
                    }
                }
            }
            if self.have_header {
                sdci_obs::static_metric!(counter, "sdci_net_frames_in_total").inc();
                sdci_obs::static_metric!(counter, "sdci_net_bytes_in_total")
                    .add(self.buf.len() as u64);
                match self.faults.as_mut().map(|f| f.decide(sdci_faults::Direction::Recv)) {
                    Some(sdci_faults::FrameFault::Drop) => {
                        // The frame evaporates; read the next one.
                        crate::faulted::record_fault("recv", "drop");
                        self.buf.clear();
                        self.need = FRAME_HEADER_LEN;
                        self.have_header = false;
                        continue;
                    }
                    Some(sdci_faults::FrameFault::Truncate) => {
                        // A mid-body cut parses as garbage; poison the
                        // frame so the connection dies like one.
                        crate::faulted::record_fault("recv", "truncate");
                        self.buf.clear();
                        self.need = FRAME_HEADER_LEN;
                        self.have_header = false;
                        return Err(invalid("injected fault: frame truncated on receive"));
                    }
                    Some(sdci_faults::FrameFault::Duplicate) => {
                        crate::faulted::record_fault("recv", "duplicate");
                        self.replay = Some(self.buf[FRAME_HEADER_LEN..].to_vec());
                    }
                    Some(sdci_faults::FrameFault::Delay(dur)) => {
                        crate::faulted::record_fault("recv", "delay");
                        std::thread::sleep(dur);
                    }
                    Some(sdci_faults::FrameFault::Deliver) | None => {}
                }
                let result = std::str::from_utf8(&self.buf[FRAME_HEADER_LEN..])
                    .map_err(invalid)
                    .and_then(|text| serde_json::from_str(text).map_err(invalid));
                self.buf.clear();
                self.need = FRAME_HEADER_LEN;
                self.have_header = false;
                return result;
            }
            let header: [u8; FRAME_HEADER_LEN] =
                self.buf[..FRAME_HEADER_LEN].try_into().expect("header length");
            let len = u32::from_be_bytes(header) as usize;
            if len > MAX_FRAME_LEN {
                return Err(invalid(format!("frame length {len} exceeds {MAX_FRAME_LEN}")));
            }
            self.need = FRAME_HEADER_LEN + len;
            self.have_header = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdci_types::{ChangelogKind, EventKind, Fid, FileEvent, MdtIndex, SimTime};
    use std::path::PathBuf;

    fn event(i: u64) -> FileEvent {
        FileEvent {
            index: i,
            mdt: MdtIndex::new(0),
            changelog_kind: ChangelogKind::Create,
            kind: EventKind::Created,
            time: SimTime::from_nanos(i),
            path: PathBuf::from(format!("/wire/f{i}")),
            src_path: None,
            target: Fid::new(1, i as u32, 0),
            is_dir: false,
            extracted_unix_ns: None,
            trace: None,
        }
    }

    fn roundtrip(frame: Frame<FileEvent>) {
        let mut buf = Vec::new();
        write_msg(&mut buf, &frame).unwrap();
        assert_eq!(
            buf.len(),
            FRAME_HEADER_LEN + {
                let len = u32::from_be_bytes(buf[..4].try_into().unwrap());
                len as usize
            }
        );
        let back: Frame<FileEvent> = read_msg(&mut &buf[..]).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::HelloPublisher);
        roundtrip(Frame::HelloSubscriber { prefixes: vec!["events/".into(), String::new()] });
        roundtrip(Frame::HelloPush { client: "mdt0".into(), resume_after: 41, proto: None });
        roundtrip(Frame::HelloPush {
            client: "mdt0".into(),
            resume_after: 41,
            proto: Some(WIRE_PROTO),
        });
        roundtrip(Frame::Publish { topic: "events/mdt0".into(), payload: event(1) });
        roundtrip(Frame::Deliver { topic: "feed/all".into(), payload: event(2) });
        roundtrip(Frame::Item { seq: 9, payload: event(3) });
        roundtrip(Frame::ItemBatch {
            first_seq: 7,
            payloads: vec![event(7), event(8)],
            trace: None,
        });
        roundtrip(Frame::ItemBatch {
            first_seq: 7,
            payloads: vec![event(7), event(8)],
            trace: Some(sdci_types::TraceContext::sampled(0xabcd, 0x1234)),
        });
        roundtrip(Frame::PublishBatch {
            topic: "events/mdt0".into(),
            payloads: vec![event(1), event(2), event(3)],
            trace: None,
        });
        roundtrip(Frame::PublishBatch {
            topic: "events/mdt0".into(),
            payloads: vec![event(1)],
            trace: Some(sdci_types::TraceContext::sampled(7, 9)),
        });
        roundtrip(Frame::Nack { expected: 12 });
        roundtrip(Frame::Ack { up_to: 9, proto: None });
        roundtrip(Frame::Ack { up_to: 0, proto: Some(WIRE_PROTO) });
        roundtrip(Frame::Ping);
        roundtrip(Frame::Fin);
    }

    /// Proto-1 peers serialize `HelloPush`/`Ack` without a `proto`
    /// field; those exact bytes must keep parsing (as `proto: None`),
    /// and a proto-`None` frame we write must not grow new fields a
    /// proto-1 peer would choke on.
    #[test]
    fn proto1_hello_and_ack_wire_compat() {
        let old_hello = r#"{"HelloPush":{"client":"mdt0","resume_after":41}}"#;
        let frame: Frame<FileEvent> = serde_json::from_str(old_hello).unwrap();
        assert_eq!(
            frame,
            Frame::HelloPush { client: "mdt0".into(), resume_after: 41, proto: None }
        );
        assert_eq!(serde_json::to_string(&frame).unwrap(), old_hello);

        let old_ack = r#"{"Ack":{"up_to":9}}"#;
        let frame: Frame<FileEvent> = serde_json::from_str(old_ack).unwrap();
        assert_eq!(frame, Frame::Ack { up_to: 9, proto: None });
        assert_eq!(serde_json::to_string(&frame).unwrap(), old_ack);
    }

    #[test]
    fn item_batch_writer_matches_frame_encoding() {
        let payloads = vec![event(1), event(2), event(3)];
        let mut via_helper = Vec::new();
        let frames = write_item_batch(&mut via_helper, 5, &payloads).unwrap();
        assert_eq!(frames, 1);
        let mut via_frame = Vec::new();
        write_msg(&mut via_frame, &Frame::ItemBatch { first_seq: 5, payloads, trace: None })
            .unwrap();
        assert_eq!(via_helper, via_frame);
    }

    #[test]
    fn oversized_batches_split_and_read_back_in_order() {
        let payloads: Vec<FileEvent> = (0..16).map(event).collect();
        let one_event_frame = {
            let mut buf = Vec::new();
            write_msg(
                &mut buf,
                &Frame::ItemBatch { first_seq: 1, payloads: vec![event(0)], trace: None },
            )
            .unwrap();
            buf.len()
        };
        // A cap of roughly three events forces recursive splitting.
        let cap = one_event_frame * 3;
        let mut buf = Vec::new();
        let trace = Some(sdci_types::TraceContext::sampled(0xfeed, 0xbeef));
        let frames = write_item_batch_capped(&mut buf, 1, &payloads, trace, cap).unwrap();
        assert!(frames > 1, "cap {cap} should split 16 events, got {frames} frame(s)");

        let mut cursor = &buf[..];
        let mut next_seq = 1u64;
        let mut got = Vec::new();
        for _ in 0..frames {
            match read_msg::<Frame<FileEvent>>(&mut cursor).unwrap() {
                Frame::ItemBatch { first_seq, payloads, trace: got_trace } => {
                    assert_eq!(first_seq, next_seq, "split frames must stay contiguous");
                    assert_eq!(got_trace, trace, "every split chunk repeats the frame context");
                    next_seq += payloads.len() as u64;
                    got.extend(payloads);
                }
                other => panic!("expected ItemBatch, got {other:?}"),
            }
        }
        assert!(cursor.is_empty());
        assert_eq!(got, payloads);
    }

    #[test]
    fn publish_batch_split_preserves_topic_and_order() {
        let payloads: Vec<FileEvent> = (0..8).map(event).collect();
        let mut buf = Vec::new();
        let frames =
            write_publish_batch_capped(&mut buf, "events/mdt0", &payloads, None, 256).unwrap();
        assert!(frames > 1);
        let mut cursor = &buf[..];
        let mut got = Vec::new();
        for _ in 0..frames {
            match read_msg::<Frame<FileEvent>>(&mut cursor).unwrap() {
                Frame::PublishBatch { topic, payloads, trace } => {
                    assert_eq!(topic, "events/mdt0");
                    assert_eq!(trace, None);
                    got.extend(payloads);
                }
                other => panic!("expected PublishBatch, got {other:?}"),
            }
        }
        assert!(cursor.is_empty());
        assert_eq!(got, payloads);
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let mut buf = Vec::new();
        for i in 0..5 {
            write_msg(&mut buf, &Frame::Item { seq: i, payload: event(i) }).unwrap();
        }
        let mut cursor = &buf[..];
        for i in 0..5 {
            let frame: Frame<FileEvent> = read_msg(&mut cursor).unwrap();
            assert_eq!(frame, Frame::Item { seq: i, payload: event(i) });
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"junk");
        let err = read_msg::<Frame<FileEvent>>(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_body_is_an_error() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &Frame::<FileEvent>::Ping).unwrap();
        buf.pop();
        assert!(read_msg::<Frame<FileEvent>>(&mut &buf[..]).is_err());
    }

    /// Yields at most one byte per call, returning `WouldBlock` before
    /// every byte — the worst case of a socket whose read timeout keeps
    /// firing while a frame trickles in.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        ready: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            self.ready = false;
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_frame() {
        let mut data = Vec::new();
        for i in 0..3 {
            write_msg(&mut data, &Frame::Item { seq: i, payload: event(i) }).unwrap();
        }
        let total = data.len();
        let mut reader = FrameReader::new(Trickle { data, pos: 0, ready: false });
        for i in 0..3 {
            // Every byte costs one timed-out call; plain `read_msg`
            // would desync on the first of them.
            let frame = loop {
                match reader.read_msg::<Frame<FileEvent>>() {
                    Ok(frame) => break frame,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("unexpected error: {e:?}"),
                }
            };
            assert_eq!(frame, Frame::Item { seq: i, payload: event(i) });
        }
        assert!(total > 0);
        // The stream is drained; the next read is a clean EOF.
        let err = loop {
            match reader.read_msg::<Frame<FileEvent>>() {
                Ok(frame) => panic!("unexpected frame: {frame:?}"),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn frame_reader_rejects_oversized_lengths() {
        let mut data = Vec::new();
        data.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut reader = FrameReader::new(&data[..]);
        let err = reader.read_msg::<Frame<FileEvent>>().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_json_is_invalid_data() {
        let body = b"not json";
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
        buf.extend_from_slice(body);
        let err = read_msg::<Frame<FileEvent>>(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
