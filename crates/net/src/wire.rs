//! Wire format: 4-byte big-endian length word + one frame body.
//!
//! Every message on an sdci-net socket is one [`Frame`], prefixed with a
//! length word so the reader can frame the stream. The word's low 31
//! bits are the body length; its high bit selects the body encoding:
//!
//! ```text
//! +--------------+---------------------------------------+
//! | word: u32be  | body: (word & 0x7FFFFFFF) bytes       |
//! +--------------+---------------------------------------+
//!   bit 31 clear → body is JSON (every frame, proto 1/2)
//!   bit 31 set   → body is proto-3 binary (hot-path batches only)
//! ```
//!
//! JSON — the workspace's serde conventions, externally tagged enums —
//! keeps the protocol debuggable with `nc`/`tcpdump` and is the only
//! encoding proto-1/2 peers emit or accept. Proto-3 sessions
//! additionally carry their *hot-path batch frames*
//! ([`Frame::ItemBatch`], [`Frame::PublishBatch`], store-RPC batch
//! replies) as compact binary bodies (see [`BinFrame`] and
//! [`sdci_types::bin`]); handshakes, acks, and every other control
//! frame stay JSON at every version. The high bit is unambiguous
//! because [`MAX_FRAME_LEN`] is far below `2^31`, and it is safe
//! because binary frames are only sent on sessions that negotiated
//! proto ≥ 3 — an old peer never sees one.

use sdci_types::bin::{put_bytes, BinPayload, BinReader};
use sdci_types::TraceContext;
use serde::{DeError, Deserialize, Serialize, Value};
use std::io::{self, IoSlice, Read, Write};
use std::time::Duration;

/// Length-prefix size in bytes.
pub const FRAME_HEADER_LEN: usize = 4;

/// Upper bound on a single frame body; larger lengths are treated as a
/// corrupt stream rather than an allocation request.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// High bit of the length word: set when the frame body is proto-3
/// binary instead of JSON. Never ambiguous — [`MAX_FRAME_LEN`] keeps
/// legal JSON lengths far below this bit.
pub const BIN_FRAME_BIT: u32 = 1 << 31;

/// Highest wire protocol version this build speaks.
///
/// * **1** — the PR 1 protocol: one event per `Item`/`Publish` frame.
/// * **2** — adds the batched variants [`Frame::ItemBatch`],
///   [`Frame::PublishBatch`] and [`Frame::DeliverBatch`]. A proto-2
///   pusher also understands the gap [`Frame::Nack`], which the pull
///   server only sends to clients that announced proto ≥ 2 in their
///   `HelloPush`; a broker only sends `DeliverBatch` to subscribers
///   that announced proto ≥ 2 in their `HelloSubscriber`.
/// * **3** — same frame vocabulary as proto 2, but hot-path batch
///   frames travel as compact binary bodies (length word high bit set,
///   see [`BinFrame`]) instead of JSON. Control frames stay JSON.
///
/// Versions are exchanged at the `Hello*` handshake as an *optional*
/// field: a proto-1 peer never sends it and ignores unknown fields, so
/// both directions of a mixed-version session degrade to per-event
/// frames. The effective session version is `min(ours, theirs)`.
pub const WIRE_PROTO: u32 = 3;

/// One protocol message. `T` is the event payload type (e.g. `FileEvent`
/// on the Collector leg, `FeedMessage` on the consumer leg).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame<T> {
    /// Client handshake: "I will publish `Publish` frames."
    HelloPublisher,
    /// Client handshake: "stream me topics matching these prefixes."
    HelloSubscriber {
        /// Topic prefixes to subscribe to (empty string = everything).
        prefixes: Vec<String>,
        /// Wire protocol version the subscriber speaks ([`WIRE_PROTO`]).
        /// Omitted on the wire when `None`; absent means proto 1 — the
        /// subscriber leg had no version field before the deliver
        /// direction learned to batch, so an old subscriber is
        /// indistinguishable from (and treated as) a proto-1 one.
        proto: Option<u32>,
    },
    /// Client handshake for the lossless PUSH leg. `client` identifies
    /// the pusher across reconnects so the server can deduplicate
    /// re-sent items; `resume_after` is the highest sequence number the
    /// client knows was acknowledged.
    HelloPush {
        /// Stable pusher identity (e.g. `"mdt0"`).
        client: String,
        /// Highest push sequence number the client saw acknowledged.
        resume_after: u64,
        /// Wire protocol version the client speaks ([`WIRE_PROTO`]).
        /// Omitted on the wire when `None`; absent means proto 1.
        proto: Option<u32>,
    },
    /// Publisher → broker: publish `payload` on `topic` (lossy leg).
    Publish {
        /// Topic the payload is published on.
        topic: String,
        /// The payload.
        payload: T,
    },
    /// Broker → subscriber: a matching publication (lossy leg).
    Deliver {
        /// Topic the payload was published on.
        topic: String,
        /// The payload.
        payload: T,
    },
    /// Broker → subscriber: several publications on one topic in one
    /// frame (proto ≥ 2, lossy leg) — the deliver-direction twin of
    /// [`Frame::PublishBatch`].
    DeliverBatch {
        /// Topic every payload was published on.
        topic: String,
        /// The payloads, in publish order. Never empty.
        payloads: Vec<T>,
        /// Send-leg tracing context, as on [`Frame::ItemBatch`].
        trace: Option<TraceContext>,
    },
    /// Pusher → puller: item `seq` of this client's stream (lossless
    /// leg; retransmitted verbatim after a reconnect until acked).
    Item {
        /// Per-client dense sequence number, starting at 1.
        seq: u64,
        /// The payload.
        payload: T,
    },
    /// Pusher → puller: a contiguous run of items in one frame
    /// (proto ≥ 2). Member `i` carries sequence `first_seq + i`; the
    /// puller acks the whole run with a single `Ack`.
    ItemBatch {
        /// Sequence number of `payloads[0]`.
        first_seq: u64,
        /// The payloads, in sequence order. Never empty.
        payloads: Vec<T>,
        /// Tracing context for the *send leg* span covering this
        /// frame (the first sampled payload's, re-parented to the
        /// sender's network span). Omitted on the wire when `None`;
        /// batch frames only exist on proto ≥ 2 sessions, so adding
        /// the field never changes what a proto-1 peer reads.
        trace: Option<TraceContext>,
    },
    /// Publisher → broker: several payloads for one topic in one frame
    /// (proto ≥ 2, lossy leg).
    PublishBatch {
        /// Topic every payload is published on.
        topic: String,
        /// The payloads, in publish order. Never empty.
        payloads: Vec<T>,
        /// Send-leg tracing context, as on [`Frame::ItemBatch`].
        trace: Option<TraceContext>,
    },
    /// Puller → pusher: a sequence gap was detected — the server
    /// expected `expected` but saw something later. The pusher should
    /// rewind its resend buffer to `expected` and retransmit in place,
    /// instead of waiting out the liveness timeout and reconnecting.
    /// Only sent to clients that announced proto ≥ 2 in `HelloPush`.
    Nack {
        /// The sequence number the server will accept next.
        expected: u64,
    },
    /// Puller → pusher: everything up to and including `up_to` has been
    /// handed to the local pipeline — the pusher may drop it.
    Ack {
        /// Highest contiguously accepted sequence number.
        up_to: u64,
        /// Wire protocol version the server speaks, echoed in the
        /// greeting `Ack` that answers a `HelloPush`; `None` (omitted
        /// on the wire) on regular acks and from proto-1 servers.
        proto: Option<u32>,
    },
    /// Liveness probe, sent when a direction has been idle.
    Ping,
    /// Graceful end of stream: the peer drained and is going away.
    Fin,
}

fn variant(name: &str, fields: Vec<(&str, Value)>) -> Value {
    let map = fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
    Value::Map(vec![(name.to_string(), Value::Map(map))])
}

impl<T: Serialize> Serialize for Frame<T> {
    fn to_value(&self) -> Value {
        match self {
            Frame::HelloPublisher => Value::Str("HelloPublisher".into()),
            Frame::HelloSubscriber { prefixes, proto } => {
                let mut fields = vec![("prefixes", prefixes.to_value())];
                if let Some(p) = proto {
                    fields.push(("proto", p.to_value()));
                }
                variant("HelloSubscriber", fields)
            }
            Frame::HelloPush { client, resume_after, proto } => {
                let mut fields =
                    vec![("client", client.to_value()), ("resume_after", resume_after.to_value())];
                if let Some(p) = proto {
                    fields.push(("proto", p.to_value()));
                }
                variant("HelloPush", fields)
            }
            Frame::Publish { topic, payload } => variant(
                "Publish",
                vec![("topic", topic.to_value()), ("payload", payload.to_value())],
            ),
            Frame::Deliver { topic, payload } => variant(
                "Deliver",
                vec![("topic", topic.to_value()), ("payload", payload.to_value())],
            ),
            Frame::DeliverBatch { topic, payloads, trace } => {
                let mut fields =
                    vec![("topic", topic.to_value()), ("payloads", payloads.to_value())];
                if let Some(t) = trace {
                    fields.push(("trace", t.to_value()));
                }
                variant("DeliverBatch", fields)
            }
            Frame::Item { seq, payload } => {
                variant("Item", vec![("seq", seq.to_value()), ("payload", payload.to_value())])
            }
            Frame::ItemBatch { first_seq, payloads, trace } => {
                let mut fields =
                    vec![("first_seq", first_seq.to_value()), ("payloads", payloads.to_value())];
                if let Some(t) = trace {
                    fields.push(("trace", t.to_value()));
                }
                variant("ItemBatch", fields)
            }
            Frame::PublishBatch { topic, payloads, trace } => {
                let mut fields =
                    vec![("topic", topic.to_value()), ("payloads", payloads.to_value())];
                if let Some(t) = trace {
                    fields.push(("trace", t.to_value()));
                }
                variant("PublishBatch", fields)
            }
            Frame::Nack { expected } => variant("Nack", vec![("expected", expected.to_value())]),
            Frame::Ack { up_to, proto } => {
                let mut fields = vec![("up_to", up_to.to_value())];
                if let Some(p) = proto {
                    fields.push(("proto", p.to_value()));
                }
                variant("Ack", fields)
            }
            Frame::Ping => Value::Str("Ping".into()),
            Frame::Fin => Value::Str("Fin".into()),
        }
    }
}

fn field<'v>(body: &'v Value, variant: &str, name: &str) -> Result<&'v Value, DeError> {
    body.get(name).ok_or_else(|| DeError::msg(format!("Frame::{variant} missing field `{name}`")))
}

impl<T: Deserialize> Deserialize for Frame<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(name) => match name.as_str() {
                "HelloPublisher" => Ok(Frame::HelloPublisher),
                "Ping" => Ok(Frame::Ping),
                "Fin" => Ok(Frame::Fin),
                other => Err(DeError::msg(format!("unknown Frame variant `{other}`"))),
            },
            Value::Map(entries) if entries.len() == 1 => {
                let (name, body) = &entries[0];
                match name.as_str() {
                    "HelloSubscriber" => Ok(Frame::HelloSubscriber {
                        prefixes: Deserialize::from_value(field(
                            body,
                            "HelloSubscriber",
                            "prefixes",
                        )?)?,
                        // Absent on proto-1 wires; treat as "not stated".
                        proto: match body.get("proto") {
                            Some(v) => Deserialize::from_value(v)?,
                            None => None,
                        },
                    }),
                    "HelloPush" => Ok(Frame::HelloPush {
                        client: Deserialize::from_value(field(body, "HelloPush", "client")?)?,
                        resume_after: Deserialize::from_value(field(
                            body,
                            "HelloPush",
                            "resume_after",
                        )?)?,
                        // Absent on proto-1 wires; treat as "not stated".
                        proto: match body.get("proto") {
                            Some(v) => Deserialize::from_value(v)?,
                            None => None,
                        },
                    }),
                    "Publish" => Ok(Frame::Publish {
                        topic: Deserialize::from_value(field(body, "Publish", "topic")?)?,
                        payload: Deserialize::from_value(field(body, "Publish", "payload")?)?,
                    }),
                    "Deliver" => Ok(Frame::Deliver {
                        topic: Deserialize::from_value(field(body, "Deliver", "topic")?)?,
                        payload: Deserialize::from_value(field(body, "Deliver", "payload")?)?,
                    }),
                    "DeliverBatch" => Ok(Frame::DeliverBatch {
                        topic: Deserialize::from_value(field(body, "DeliverBatch", "topic")?)?,
                        payloads: Deserialize::from_value(field(
                            body,
                            "DeliverBatch",
                            "payloads",
                        )?)?,
                        trace: match body.get("trace") {
                            Some(v) => Deserialize::from_value(v)?,
                            None => None,
                        },
                    }),
                    "Item" => Ok(Frame::Item {
                        seq: Deserialize::from_value(field(body, "Item", "seq")?)?,
                        payload: Deserialize::from_value(field(body, "Item", "payload")?)?,
                    }),
                    "ItemBatch" => Ok(Frame::ItemBatch {
                        first_seq: Deserialize::from_value(field(body, "ItemBatch", "first_seq")?)?,
                        payloads: Deserialize::from_value(field(body, "ItemBatch", "payloads")?)?,
                        trace: match body.get("trace") {
                            Some(v) => Deserialize::from_value(v)?,
                            None => None,
                        },
                    }),
                    "PublishBatch" => Ok(Frame::PublishBatch {
                        topic: Deserialize::from_value(field(body, "PublishBatch", "topic")?)?,
                        payloads: Deserialize::from_value(field(
                            body,
                            "PublishBatch",
                            "payloads",
                        )?)?,
                        trace: match body.get("trace") {
                            Some(v) => Deserialize::from_value(v)?,
                            None => None,
                        },
                    }),
                    "Nack" => Ok(Frame::Nack {
                        expected: Deserialize::from_value(field(body, "Nack", "expected")?)?,
                    }),
                    "Ack" => Ok(Frame::Ack {
                        up_to: Deserialize::from_value(field(body, "Ack", "up_to")?)?,
                        proto: match body.get("proto") {
                            Some(v) => Deserialize::from_value(v)?,
                            None => None,
                        },
                    }),
                    other => Err(DeError::msg(format!("unknown Frame variant `{other}`"))),
                }
            }
            other => Err(DeError::mismatch("Frame", other)),
        }
    }
}

pub(crate) fn invalid(err: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

// ---------------------------------------------------------------------------
// Proto-3 binary codec
// ---------------------------------------------------------------------------

/// Binary body kind byte: [`Frame::ItemBatch`].
const BIN_KIND_ITEM_BATCH: u8 = 1;
/// Binary body kind byte: [`Frame::PublishBatch`].
const BIN_KIND_PUBLISH_BATCH: u8 = 2;
/// Binary body kind byte: a store-RPC batch reply (`StoreRpc::Batch`).
pub(crate) const BIN_KIND_STORE_BATCH: u8 = 3;
/// Binary body kind byte: [`Frame::DeliverBatch`].
const BIN_KIND_DELIVER_BATCH: u8 = 4;

/// Flags bit: a [`TraceContext`] section follows the fixed header.
const BIN_FLAG_TRACE: u8 = 1;

/// A message with an (optional) proto-3 binary form.
///
/// Binary body layout — fixed little-endian header, then the variant's
/// fields, strings and payloads `u32`-LE length-prefixed:
///
/// ```text
/// +------+-------+-----------------------+----------------------------+
/// | kind | flags | trace (17B, flags&1)  | variant fields             |
/// |  u8  |  u8   | id u64, span u64, u8  |                            |
/// +------+-------+-----------------------+----------------------------+
/// kind 1 ItemBatch:    first_seq u64 | count u32 | count × (len u32 + payload)
/// kind 2 PublishBatch: topic (len u32 + bytes) | count u32 | count × (len u32 + payload)
/// kind 3 StoreBatch:   count u32 | count × (len u32 + SequencedEvent)
/// kind 4 DeliverBatch: topic (len u32 + bytes) | count u32 | count × (len u32 + payload)
/// ```
///
/// The trace section is the binary twin of the JSON format's
/// omitted-when-`None` `trace` field: absent from the bytes entirely
/// unless the flags bit says otherwise. Only hot-path batch frames have
/// a binary form; `encode_bin` returns `false` for everything else and
/// the writer falls back to JSON.
pub trait BinFrame: Sized {
    /// Appends this message's binary body to `buf` and returns `true`,
    /// or returns `false` (leaving `buf` untouched) when the message
    /// has no binary form and must travel as JSON.
    fn encode_bin(&self, buf: &mut Vec<u8>) -> bool;

    /// Decodes a binary frame body.
    ///
    /// # Errors
    ///
    /// `InvalidData` on unknown kind bytes, truncated fields, or
    /// trailing garbage — the stream is treated as corrupt, exactly
    /// like undecodable JSON.
    fn decode_bin(body: &[u8]) -> io::Result<Self>;
}

/// Writes the fixed binary header: kind byte, flags byte, and the
/// optional trace section.
pub(crate) fn bin_header(buf: &mut Vec<u8>, kind: u8, trace: Option<TraceContext>) {
    buf.push(kind);
    match trace {
        None => buf.push(0),
        Some(t) => {
            buf.push(BIN_FLAG_TRACE);
            t.encode_bin(buf);
        }
    }
}

/// Reads the fixed binary header back: `(kind, trace)`.
pub(crate) fn bin_read_header(r: &mut BinReader<'_>) -> io::Result<(u8, Option<TraceContext>)> {
    let kind = r.u8().map_err(invalid)?;
    let flags = r.u8().map_err(invalid)?;
    if flags & !BIN_FLAG_TRACE != 0 {
        return Err(invalid(format!("unknown binary frame flags {flags:#x}")));
    }
    let trace = if flags & BIN_FLAG_TRACE != 0 {
        Some(TraceContext::decode_bin(r).map_err(invalid)?)
    } else {
        None
    };
    Ok((kind, trace))
}

/// Appends `count` + each payload `u32`-LE length-prefixed.
pub(crate) fn bin_put_payloads<T: BinPayload>(buf: &mut Vec<u8>, payloads: &[T]) {
    buf.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    for p in payloads {
        // Length placeholder, patched once the payload is encoded — one
        // pass, no per-payload scratch allocation.
        let at = buf.len();
        buf.extend_from_slice(&[0; 4]);
        p.encode_bin(buf);
        let len = (buf.len() - at - 4) as u32;
        buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
    }
}

/// Reads a length-prefixed payload sequence back.
pub(crate) fn bin_read_payloads<T: BinPayload>(r: &mut BinReader<'_>) -> io::Result<Vec<T>> {
    let count = r.u32().map_err(invalid)? as usize;
    let mut out = Vec::with_capacity(count.min(r.remaining()));
    for _ in 0..count {
        let bytes = r.bytes().map_err(invalid)?;
        let mut pr = BinReader::new(bytes);
        let payload = T::decode_bin(&mut pr).map_err(invalid)?;
        if !pr.is_empty() {
            return Err(invalid(format!("binary payload has {} trailing bytes", pr.remaining())));
        }
        out.push(payload);
    }
    Ok(out)
}

impl<T: BinPayload> BinFrame for Frame<T> {
    fn encode_bin(&self, buf: &mut Vec<u8>) -> bool {
        match self {
            Frame::ItemBatch { first_seq, payloads, trace } => {
                bin_header(buf, BIN_KIND_ITEM_BATCH, *trace);
                buf.extend_from_slice(&first_seq.to_le_bytes());
                bin_put_payloads(buf, payloads);
                true
            }
            Frame::PublishBatch { topic, payloads, trace } => {
                bin_header(buf, BIN_KIND_PUBLISH_BATCH, *trace);
                put_bytes(buf, topic.as_bytes());
                bin_put_payloads(buf, payloads);
                true
            }
            Frame::DeliverBatch { topic, payloads, trace } => {
                bin_header(buf, BIN_KIND_DELIVER_BATCH, *trace);
                put_bytes(buf, topic.as_bytes());
                bin_put_payloads(buf, payloads);
                true
            }
            _ => false,
        }
    }

    fn decode_bin(body: &[u8]) -> io::Result<Self> {
        let mut r = BinReader::new(body);
        let (kind, trace) = bin_read_header(&mut r)?;
        let frame = match kind {
            BIN_KIND_ITEM_BATCH => Frame::ItemBatch {
                first_seq: r.u64().map_err(invalid)?,
                payloads: bin_read_payloads(&mut r)?,
                trace,
            },
            BIN_KIND_PUBLISH_BATCH => Frame::PublishBatch {
                topic: r.str().map_err(invalid)?.to_string(),
                payloads: bin_read_payloads(&mut r)?,
                trace,
            },
            BIN_KIND_DELIVER_BATCH => Frame::DeliverBatch {
                topic: r.str().map_err(invalid)?.to_string(),
                payloads: bin_read_payloads(&mut r)?,
                trace,
            },
            other => return Err(invalid(format!("unknown binary frame kind {other}"))),
        };
        if !r.is_empty() {
            return Err(invalid(format!("binary frame has {} trailing bytes", r.remaining())));
        }
        Ok(frame)
    }
}

/// Per-connection reusable scratch for proto-3 encoding: payload bytes
/// and their spans are laid out once, then chunked into frames without
/// re-encoding — the binary analogue of the JSON path's `Value` reuse,
/// minus all the allocation.
#[derive(Debug, Default)]
pub struct BinEncoder {
    /// Every batch member's encoding, back to back.
    payloads: Vec<u8>,
    /// `(offset, len)` of each member inside `payloads`.
    spans: Vec<(usize, usize)>,
    /// Frame-body assembly buffer.
    body: Vec<u8>,
}

impl BinEncoder {
    /// A fresh encoder; buffers grow to the session's working set and
    /// are then reused for every batch.
    pub fn new() -> BinEncoder {
        BinEncoder::default()
    }

    /// Encodes every member once, recording spans for chunking.
    fn load<T: BinPayload>(&mut self, payloads: &[T]) {
        self.payloads.clear();
        self.spans.clear();
        for p in payloads {
            let start = self.payloads.len();
            p.encode_bin(&mut self.payloads);
            self.spans.push((start, self.payloads.len() - start));
        }
    }

    /// Greedily packs loaded members into frames of at most `max_len`
    /// body bytes (`overhead` = fixed header cost per frame; each member
    /// costs 4 length bytes + its encoding). A single member that alone
    /// exceeds the cap still gets its own frame — it cannot be split,
    /// and the u32/[`MAX_FRAME_LEN`] checks remain the backstop. Calls
    /// `emit(lo, members)` once per frame, in order.
    fn chunk(
        &mut self,
        overhead: usize,
        max_len: usize,
        mut emit: impl FnMut(&mut Vec<u8>, usize, &[(usize, usize)], &[u8]) -> io::Result<()>,
    ) -> io::Result<usize> {
        let mut frames = 0;
        let mut lo = 0;
        while lo < self.spans.len() {
            let mut hi = lo;
            let mut size = overhead;
            while hi < self.spans.len() {
                let cost = 4 + self.spans[hi].1;
                if hi > lo && size + cost > max_len {
                    break;
                }
                size += cost;
                hi += 1;
            }
            self.body.clear();
            // The borrow checker cannot see that `emit` only reads
            // `payloads`/`spans` and writes `body`, so pass the parts.
            let body = &mut self.body;
            emit(body, lo, &self.spans[lo..hi], &self.payloads)?;
            frames += 1;
            lo = hi;
        }
        Ok(frames)
    }
}

/// Appends one chunk's members (`count`, then length-prefixed bytes
/// copied from the already-encoded pool).
fn bin_body_members(body: &mut Vec<u8>, spans: &[(usize, usize)], pool: &[u8]) {
    body.extend_from_slice(&(spans.len() as u32).to_le_bytes());
    for &(off, len) in spans {
        body.extend_from_slice(&(len as u32).to_le_bytes());
        body.extend_from_slice(&pool[off..off + len]);
    }
}

/// Fixed per-frame body overhead: kind + flags + the member-count word
/// every batch body carries + optional 17-byte trace section. Without
/// the count word a chunk sized exactly at the cap would overshoot it
/// by four bytes — fatal at [`MAX_FRAME_LEN`], where [`write_bin_frame`]
/// rejects the frame instead of splitting it.
fn bin_overhead(trace: Option<TraceContext>) -> usize {
    2 + 4 + if trace.is_some() { 17 } else { 0 }
}

/// Writes `payloads` as proto-3 binary [`Frame::ItemBatch`] frames
/// (member `i` carrying sequence `first_seq + i`), splitting by
/// *binary* encoded size so no frame body exceeds [`MAX_FRAME_LEN`].
/// Returns the number of frames written.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn write_item_batch_bin<T: BinPayload>(
    w: &mut impl Write,
    enc: &mut BinEncoder,
    first_seq: u64,
    payloads: &[T],
    trace: Option<TraceContext>,
) -> io::Result<usize> {
    write_item_batch_bin_capped(w, enc, first_seq, payloads, trace, MAX_FRAME_LEN)
}

/// [`write_item_batch_bin`] with an explicit frame-size cap (exercised
/// with a tiny cap in tests; production callers use [`MAX_FRAME_LEN`]).
pub(crate) fn write_item_batch_bin_capped<T: BinPayload>(
    w: &mut impl Write,
    enc: &mut BinEncoder,
    first_seq: u64,
    payloads: &[T],
    trace: Option<TraceContext>,
    max_len: usize,
) -> io::Result<usize> {
    enc.load(payloads);
    let overhead = bin_overhead(trace) + 8;
    enc.chunk(overhead, max_len, |body, lo, spans, pool| {
        bin_header(body, BIN_KIND_ITEM_BATCH, trace);
        body.extend_from_slice(&(first_seq + lo as u64).to_le_bytes());
        bin_body_members(body, spans, pool);
        write_bin_frame(w, body)
    })
}

/// Writes `payloads` as proto-3 binary [`Frame::PublishBatch`] frames
/// on `topic`, splitting by binary encoded size. Returns the number of
/// frames written.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn write_publish_batch_bin<T: BinPayload>(
    w: &mut impl Write,
    enc: &mut BinEncoder,
    topic: &str,
    payloads: &[T],
    trace: Option<TraceContext>,
) -> io::Result<usize> {
    write_publish_batch_bin_capped(w, enc, topic, payloads, trace, MAX_FRAME_LEN)
}

/// [`write_publish_batch_bin`] with an explicit frame-size cap.
pub(crate) fn write_publish_batch_bin_capped<T: BinPayload>(
    w: &mut impl Write,
    enc: &mut BinEncoder,
    topic: &str,
    payloads: &[T],
    trace: Option<TraceContext>,
    max_len: usize,
) -> io::Result<usize> {
    enc.load(payloads);
    let overhead = bin_overhead(trace) + 4 + topic.len();
    enc.chunk(overhead, max_len, |body, _lo, spans, pool| {
        bin_header(body, BIN_KIND_PUBLISH_BATCH, trace);
        put_bytes(body, topic.as_bytes());
        bin_body_members(body, spans, pool);
        write_bin_frame(w, body)
    })
}

/// Writes `payloads` as proto-3 binary [`Frame::DeliverBatch`] frames
/// on `topic`, splitting by binary encoded size. Returns the number of
/// frames written. This is the encode-once half of the subscriber
/// fan-out: the broker writes into a shared byte buffer exactly once
/// per batch, and every proto-3 subscriber leg ships the same bytes.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn write_deliver_batch_bin<T: BinPayload>(
    w: &mut impl Write,
    enc: &mut BinEncoder,
    topic: &str,
    payloads: &[T],
    trace: Option<TraceContext>,
) -> io::Result<usize> {
    write_deliver_batch_bin_capped(w, enc, topic, payloads, trace, MAX_FRAME_LEN)
}

/// [`write_deliver_batch_bin`] with an explicit frame-size cap.
pub(crate) fn write_deliver_batch_bin_capped<T: BinPayload>(
    w: &mut impl Write,
    enc: &mut BinEncoder,
    topic: &str,
    payloads: &[T],
    trace: Option<TraceContext>,
    max_len: usize,
) -> io::Result<usize> {
    enc.load(payloads);
    let overhead = bin_overhead(trace) + 4 + topic.len();
    enc.chunk(overhead, max_len, |body, _lo, spans, pool| {
        bin_header(body, BIN_KIND_DELIVER_BATCH, trace);
        put_bytes(body, topic.as_bytes());
        bin_body_members(body, spans, pool);
        write_bin_frame(w, body)
    })
}

/// Writes `msg` as one binary frame when it has a binary form, falling
/// back to JSON otherwise. The scratch encoder's body buffer is reused
/// across calls.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn write_msg_bin<M: Serialize + BinFrame>(
    w: &mut impl Write,
    enc: &mut BinEncoder,
    msg: &M,
) -> io::Result<()> {
    enc.body.clear();
    let mut body = std::mem::take(&mut enc.body);
    let took = msg.encode_bin(&mut body);
    let result = if took { write_bin_frame(w, &body) } else { write_msg(w, msg) };
    enc.body = body;
    result
}

/// Writes one binary frame: length word with [`BIN_FRAME_BIT`] set,
/// then the body, as a single vectored write and exactly one flush (the
/// frame-alignment invariant [`crate::faulted::FaultedWriter`] relies
/// on).
pub(crate) fn write_bin_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME_LEN {
        return Err(invalid(format!("frame length {} exceeds {MAX_FRAME_LEN}", body.len())));
    }
    let word = (body.len() as u32) | BIN_FRAME_BIT;
    let header = word.to_be_bytes();
    let mut headed = 0; // bytes of the header written so far
    let mut bodied = 0; // bytes of the body written so far
    while headed < header.len() || bodied < body.len() {
        let n = if headed < header.len() {
            w.write_vectored(&[IoSlice::new(&header[headed..]), IoSlice::new(body)])?
        } else {
            w.write(&body[bodied..])?
        };
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::WriteZero, "binary frame write stalled"));
        }
        let into_header = n.min(header.len() - headed);
        headed += into_header;
        bodied += n - into_header;
    }
    w.flush()?;
    sdci_obs::static_metric!(counter, "sdci_net_frames_out_total").inc();
    sdci_obs::static_metric!(counter, "sdci_net_bytes_out_total")
        .add((FRAME_HEADER_LEN + body.len()) as u64);
    Ok(())
}

/// Writes one length-prefixed message and flushes the writer.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn write_msg<M: Serialize>(w: &mut impl Write, msg: &M) -> io::Result<()> {
    let body = serde_json::to_string(msg).map_err(invalid)?;
    write_body(w, &body)
}

/// Writes one already-serialized frame body with its length prefix.
fn write_body(w: &mut impl Write, body: &str) -> io::Result<()> {
    let bytes = body.as_bytes();
    let len = u32::try_from(bytes.len()).map_err(|_| invalid("frame exceeds u32 length prefix"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    sdci_obs::static_metric!(counter, "sdci_net_frames_out_total").inc();
    sdci_obs::static_metric!(counter, "sdci_net_bytes_out_total")
        .add((FRAME_HEADER_LEN + bytes.len()) as u64);
    Ok(())
}

/// Adapter so a pre-built frame [`Value`] can go through `serde_json`
/// without re-serializing every payload on a batch split.
struct RawValue<'a>(&'a Value);

impl Serialize for RawValue<'_> {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Writes `payloads` as one [`Frame::ItemBatch`] (member `i` carrying
/// sequence `first_seq + i`), splitting into several frames when the
/// encoded batch would exceed [`MAX_FRAME_LEN`]. Returns the number of
/// frames written.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn write_item_batch<T: Serialize>(
    w: &mut impl Write,
    first_seq: u64,
    payloads: &[T],
) -> io::Result<usize> {
    write_item_batch_traced(w, first_seq, payloads, None)
}

/// [`write_item_batch`] carrying a send-leg tracing context on each
/// written frame (every split chunk repeats it).
pub fn write_item_batch_traced<T: Serialize>(
    w: &mut impl Write,
    first_seq: u64,
    payloads: &[T],
    trace: Option<TraceContext>,
) -> io::Result<usize> {
    write_item_batch_capped(w, first_seq, payloads, trace, MAX_FRAME_LEN)
}

/// [`write_item_batch`] with an explicit frame-size cap (exercised with
/// a tiny cap in tests; production callers use [`MAX_FRAME_LEN`]).
pub(crate) fn write_item_batch_capped<T: Serialize>(
    w: &mut impl Write,
    first_seq: u64,
    payloads: &[T],
    trace: Option<TraceContext>,
    max_len: usize,
) -> io::Result<usize> {
    let values: Vec<Value> = payloads.iter().map(Serialize::to_value).collect();
    write_split(w, &values, 0, max_len, &|lo, chunk| {
        batch_frame("ItemBatch", ("first_seq", (first_seq + lo as u64).to_value()), chunk, trace)
    })
}

/// Writes `payloads` as one [`Frame::PublishBatch`] on `topic`,
/// splitting into several frames when the encoded batch would exceed
/// [`MAX_FRAME_LEN`]. Returns the number of frames written.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn write_publish_batch<T: Serialize>(
    w: &mut impl Write,
    topic: &str,
    payloads: &[T],
) -> io::Result<usize> {
    write_publish_batch_traced(w, topic, payloads, None)
}

/// [`write_publish_batch`] carrying a send-leg tracing context on each
/// written frame (every split chunk repeats it).
pub fn write_publish_batch_traced<T: Serialize>(
    w: &mut impl Write,
    topic: &str,
    payloads: &[T],
    trace: Option<TraceContext>,
) -> io::Result<usize> {
    write_publish_batch_capped(w, topic, payloads, trace, MAX_FRAME_LEN)
}

/// [`write_publish_batch`] with an explicit frame-size cap.
pub(crate) fn write_publish_batch_capped<T: Serialize>(
    w: &mut impl Write,
    topic: &str,
    payloads: &[T],
    trace: Option<TraceContext>,
    max_len: usize,
) -> io::Result<usize> {
    let values: Vec<Value> = payloads.iter().map(Serialize::to_value).collect();
    write_split(w, &values, 0, max_len, &|_, chunk| {
        batch_frame("PublishBatch", ("topic", topic.to_value()), chunk, trace)
    })
}

/// Writes `payloads` as JSON [`Frame::DeliverBatch`] frames on `topic`
/// (proto-2 sessions), splitting when the encoded batch would exceed
/// [`MAX_FRAME_LEN`]. Returns the number of frames written.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn write_deliver_batch<T: Serialize>(
    w: &mut impl Write,
    topic: &str,
    payloads: &[T],
    trace: Option<TraceContext>,
) -> io::Result<usize> {
    write_deliver_batch_capped(w, topic, payloads, trace, MAX_FRAME_LEN)
}

/// [`write_deliver_batch`] with an explicit frame-size cap.
pub(crate) fn write_deliver_batch_capped<T: Serialize>(
    w: &mut impl Write,
    topic: &str,
    payloads: &[T],
    trace: Option<TraceContext>,
    max_len: usize,
) -> io::Result<usize> {
    let values: Vec<Value> = payloads.iter().map(Serialize::to_value).collect();
    write_split(w, &values, 0, max_len, &|_, chunk| {
        batch_frame("DeliverBatch", ("topic", topic.to_value()), chunk, trace)
    })
}

///// Writes `payloads` as one JSON [`Frame::Deliver`] frame each — the
/// proto-1 deliver wire. Borrows the payloads (no per-subscriber
/// clone), so the encode-once fan-out can render the legacy form from
/// the same shared batch it renders the batched forms from. Returns
/// the number of frames written (always `payloads.len()`).
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn write_deliver_events<T: Serialize>(
    w: &mut impl Write,
    topic: &str,
    payloads: &[T],
) -> io::Result<usize> {
    for p in payloads {
        let frame =
            variant("Deliver", vec![("topic", topic.to_value()), ("payload", p.to_value())]);
        let body = serde_json::to_string(&RawValue(&frame)).map_err(invalid)?;
        write_body(w, &body)?;
    }
    Ok(payloads.len())
}

fn batch_frame(
    name: &str,
    head: (&str, Value),
    chunk: &[Value],
    trace: Option<TraceContext>,
) -> Value {
    let mut fields = vec![head, ("payloads", Value::Seq(chunk.to_vec()))];
    if let Some(t) = trace {
        fields.push(("trace", t.to_value()));
    }
    variant(name, fields)
}

/// Recursively halves `values` until each frame fits `max_len`, writing
/// the resulting frames in order. A single payload whose frame still
/// exceeds the cap is written anyway — it cannot be split further, and
/// the u32/`MAX_FRAME_LEN` length checks remain the backstop.
fn write_split(
    w: &mut impl Write,
    values: &[Value],
    offset: usize,
    max_len: usize,
    frame_for: &dyn Fn(usize, &[Value]) -> Value,
) -> io::Result<usize> {
    if values.is_empty() {
        return Ok(0);
    }
    let frame = frame_for(offset, values);
    let body = serde_json::to_string(&RawValue(&frame)).map_err(invalid)?;
    if body.len() <= max_len || values.len() == 1 {
        write_body(w, &body)?;
        return Ok(1);
    }
    let mid = values.len() / 2;
    let left = write_split(w, &values[..mid], offset, max_len, frame_for)?;
    let right = write_split(w, &values[mid..], offset + mid, max_len, frame_for)?;
    Ok(left + right)
}

/// Reads one length-prefixed message.
///
/// Not safe on sockets with a read timeout: a timeout that fires after
/// the length prefix (or part of the body) has been consumed loses that
/// progress, and the next call misparses body bytes as a header. Use
/// [`FrameReader`] on any stream whose reads can time out mid-frame.
///
/// # Errors
///
/// Returns `InvalidData` on oversized lengths, non-UTF-8 JSON bodies,
/// or bodies that do not decode as `M` in the encoding the length word
/// announces; otherwise propagates reader failures (including timeouts
/// configured on the stream).
pub fn read_msg<M: Deserialize + BinFrame>(r: &mut impl Read) -> io::Result<M> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let word = u32::from_be_bytes(header);
    let is_bin = word & BIN_FRAME_BIT != 0;
    let len = (word & !BIN_FRAME_BIT) as usize;
    if len > MAX_FRAME_LEN {
        return Err(invalid(format!("frame length {len} exceeds {MAX_FRAME_LEN}")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    sdci_obs::static_metric!(counter, "sdci_net_frames_in_total").inc();
    sdci_obs::static_metric!(counter, "sdci_net_bytes_in_total")
        .add((FRAME_HEADER_LEN + len) as u64);
    decode_body(is_bin, &body)
}

/// Decodes one complete frame body in the encoding its length word
/// announced.
fn decode_body<M: Deserialize + BinFrame>(is_bin: bool, body: &[u8]) -> io::Result<M> {
    if is_bin {
        return M::decode_bin(body);
    }
    let text = std::str::from_utf8(body).map_err(invalid)?;
    serde_json::from_str(text).map_err(invalid)
}

/// Incremental, timeout-tolerant frame reader.
///
/// sdci-net sockets use a short read timeout as their heartbeat tick,
/// and a timeout is perfectly able to fire *mid-frame* — the length
/// prefix arrived but the body is still in flight (Nagle stalls, load,
/// a slow network). [`read_msg`] would lose the consumed prefix and
/// desynchronize the stream; `FrameReader` instead keeps the partial
/// frame across calls, so a timed-out [`FrameReader::read_msg`] is
/// simply called again and resumes where the stream left off.
pub struct FrameReader<R> {
    inner: R,
    /// Bytes of the current frame received so far, header included.
    buf: Vec<u8>,
    /// Bytes needed before the next decode step: the header length
    /// until the header is complete, then header + body.
    need: usize,
    /// Whether `need` already accounts for the body length.
    have_header: bool,
    /// Whether the current frame's length word announced a proto-3
    /// binary body ([`BIN_FRAME_BIT`]).
    bin: bool,
    /// Installed recv-side fault stream; `None` is a clean wire.
    faults: Option<sdci_faults::StreamFaults>,
    /// Raw body (and its encoding) of a frame an injected *duplicate*
    /// fault will deliver again on the next call.
    replay: Option<(bool, Vec<u8>)>,
}

impl<R> std::fmt::Debug for FrameReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameReader").field("buffered", &self.buf.len()).finish()
    }
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream positioned on a frame boundary.
    pub fn new(inner: R) -> Self {
        Self::with_faults(inner, None)
    }

    /// Like [`FrameReader::new`], with a recv-side fault stream: each
    /// complete frame draws one decision — drop discards it and reads
    /// on, duplicate delivers it twice, truncate poisons it into
    /// `InvalidData` (killing the connection, like a real mid-body
    /// cut), delay stalls before delivering. While the plan scripts a
    /// partition, reads stall briefly and return `WouldBlock` so the
    /// caller's liveness window — not a read error — detects it.
    pub fn with_faults(inner: R, faults: Option<sdci_faults::StreamFaults>) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
            need: FRAME_HEADER_LEN,
            have_header: false,
            bin: false,
            faults,
            replay: None,
        }
    }

    /// The underlying stream (e.g. to adjust socket timeouts).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Reads one message, resuming any partially received frame.
    ///
    /// # Errors
    ///
    /// `WouldBlock`/`TimedOut` are resumable: call again to continue
    /// the same frame. Any other error — including the `InvalidData`
    /// cases of [`read_msg`] — means the stream is no longer usable.
    pub fn read_msg<M: Deserialize + BinFrame>(&mut self) -> io::Result<M> {
        if let Some((was_bin, body)) = self.replay.take() {
            // The second delivery of an injected duplicate.
            return decode_body(was_bin, &body);
        }
        if let Some(faults) = &self.faults {
            if faults.partitioned() {
                std::thread::sleep(Duration::from_millis(2));
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "injected partition: nothing arrives",
                ));
            }
        }
        loop {
            while self.buf.len() < self.need {
                let have = self.buf.len();
                self.buf.resize(self.need, 0);
                match self.inner.read(&mut self.buf[have..]) {
                    Ok(0) => {
                        self.buf.truncate(have);
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ));
                    }
                    Ok(n) => self.buf.truncate(have + n),
                    Err(e) => {
                        self.buf.truncate(have);
                        return Err(e);
                    }
                }
            }
            if self.have_header {
                sdci_obs::static_metric!(counter, "sdci_net_frames_in_total").inc();
                sdci_obs::static_metric!(counter, "sdci_net_bytes_in_total")
                    .add(self.buf.len() as u64);
                match self.faults.as_mut().map(|f| f.decide(sdci_faults::Direction::Recv)) {
                    Some(sdci_faults::FrameFault::Drop) => {
                        // The frame evaporates; read the next one.
                        crate::faulted::record_fault("recv", "drop");
                        self.buf.clear();
                        self.need = FRAME_HEADER_LEN;
                        self.have_header = false;
                        continue;
                    }
                    Some(sdci_faults::FrameFault::Truncate) => {
                        // A mid-body cut parses as garbage; poison the
                        // frame so the connection dies like one.
                        crate::faulted::record_fault("recv", "truncate");
                        self.buf.clear();
                        self.need = FRAME_HEADER_LEN;
                        self.have_header = false;
                        return Err(invalid("injected fault: frame truncated on receive"));
                    }
                    Some(sdci_faults::FrameFault::Duplicate) => {
                        crate::faulted::record_fault("recv", "duplicate");
                        self.replay = Some((self.bin, self.buf[FRAME_HEADER_LEN..].to_vec()));
                    }
                    Some(sdci_faults::FrameFault::Delay(dur)) => {
                        crate::faulted::record_fault("recv", "delay");
                        std::thread::sleep(dur);
                    }
                    Some(sdci_faults::FrameFault::Deliver) | None => {}
                }
                let result = decode_body(self.bin, &self.buf[FRAME_HEADER_LEN..]);
                self.buf.clear();
                self.need = FRAME_HEADER_LEN;
                self.have_header = false;
                return result;
            }
            let header: [u8; FRAME_HEADER_LEN] =
                self.buf[..FRAME_HEADER_LEN].try_into().expect("header length");
            let word = u32::from_be_bytes(header);
            self.bin = word & BIN_FRAME_BIT != 0;
            let len = (word & !BIN_FRAME_BIT) as usize;
            if len > MAX_FRAME_LEN {
                return Err(invalid(format!("frame length {len} exceeds {MAX_FRAME_LEN}")));
            }
            self.need = FRAME_HEADER_LEN + len;
            self.have_header = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdci_types::{ChangelogKind, EventKind, Fid, FileEvent, MdtIndex, SimTime};
    use std::path::PathBuf;

    fn event(i: u64) -> FileEvent {
        FileEvent {
            index: i,
            mdt: MdtIndex::new(0),
            changelog_kind: ChangelogKind::Create,
            kind: EventKind::Created,
            time: SimTime::from_nanos(i),
            path: PathBuf::from(format!("/wire/f{i}")),
            src_path: None,
            target: Fid::new(1, i as u32, 0),
            is_dir: false,
            extracted_unix_ns: None,
            trace: None,
        }
    }

    fn roundtrip(frame: Frame<FileEvent>) {
        let mut buf = Vec::new();
        write_msg(&mut buf, &frame).unwrap();
        assert_eq!(
            buf.len(),
            FRAME_HEADER_LEN + {
                let len = u32::from_be_bytes(buf[..4].try_into().unwrap());
                len as usize
            }
        );
        let back: Frame<FileEvent> = read_msg(&mut &buf[..]).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::HelloPublisher);
        roundtrip(Frame::HelloSubscriber {
            prefixes: vec!["events/".into(), String::new()],
            proto: None,
        });
        roundtrip(Frame::HelloSubscriber {
            prefixes: vec!["feed/".into()],
            proto: Some(WIRE_PROTO),
        });
        roundtrip(Frame::HelloPush { client: "mdt0".into(), resume_after: 41, proto: None });
        roundtrip(Frame::HelloPush {
            client: "mdt0".into(),
            resume_after: 41,
            proto: Some(WIRE_PROTO),
        });
        roundtrip(Frame::Publish { topic: "events/mdt0".into(), payload: event(1) });
        roundtrip(Frame::Deliver { topic: "feed/all".into(), payload: event(2) });
        roundtrip(Frame::DeliverBatch {
            topic: "feed/all".into(),
            payloads: vec![event(4), event(5)],
            trace: None,
        });
        roundtrip(Frame::DeliverBatch {
            topic: "feed/all".into(),
            payloads: vec![event(4)],
            trace: Some(sdci_types::TraceContext::sampled(3, 5)),
        });
        roundtrip(Frame::Item { seq: 9, payload: event(3) });
        roundtrip(Frame::ItemBatch {
            first_seq: 7,
            payloads: vec![event(7), event(8)],
            trace: None,
        });
        roundtrip(Frame::ItemBatch {
            first_seq: 7,
            payloads: vec![event(7), event(8)],
            trace: Some(sdci_types::TraceContext::sampled(0xabcd, 0x1234)),
        });
        roundtrip(Frame::PublishBatch {
            topic: "events/mdt0".into(),
            payloads: vec![event(1), event(2), event(3)],
            trace: None,
        });
        roundtrip(Frame::PublishBatch {
            topic: "events/mdt0".into(),
            payloads: vec![event(1)],
            trace: Some(sdci_types::TraceContext::sampled(7, 9)),
        });
        roundtrip(Frame::Nack { expected: 12 });
        roundtrip(Frame::Ack { up_to: 9, proto: None });
        roundtrip(Frame::Ack { up_to: 0, proto: Some(WIRE_PROTO) });
        roundtrip(Frame::Ping);
        roundtrip(Frame::Fin);
    }

    /// Proto-1 peers serialize `HelloPush`/`Ack` without a `proto`
    /// field; those exact bytes must keep parsing (as `proto: None`),
    /// and a proto-`None` frame we write must not grow new fields a
    /// proto-1 peer would choke on.
    #[test]
    fn proto1_hello_and_ack_wire_compat() {
        let old_hello = r#"{"HelloPush":{"client":"mdt0","resume_after":41}}"#;
        let frame: Frame<FileEvent> = serde_json::from_str(old_hello).unwrap();
        assert_eq!(
            frame,
            Frame::HelloPush { client: "mdt0".into(), resume_after: 41, proto: None }
        );
        assert_eq!(serde_json::to_string(&frame).unwrap(), old_hello);

        let old_ack = r#"{"Ack":{"up_to":9}}"#;
        let frame: Frame<FileEvent> = serde_json::from_str(old_ack).unwrap();
        assert_eq!(frame, Frame::Ack { up_to: 9, proto: None });
        assert_eq!(serde_json::to_string(&frame).unwrap(), old_ack);

        // The subscriber handshake predates its `proto` field entirely;
        // the exact bytes an old subscriber sends must keep parsing (as
        // proto 1) and a proto-`None` hello must re-serialize to them.
        let old_sub = r#"{"HelloSubscriber":{"prefixes":["feed/"]}}"#;
        let frame: Frame<FileEvent> = serde_json::from_str(old_sub).unwrap();
        assert_eq!(frame, Frame::HelloSubscriber { prefixes: vec!["feed/".into()], proto: None });
        assert_eq!(serde_json::to_string(&frame).unwrap(), old_sub);
    }

    #[test]
    fn item_batch_writer_matches_frame_encoding() {
        let payloads = vec![event(1), event(2), event(3)];
        let mut via_helper = Vec::new();
        let frames = write_item_batch(&mut via_helper, 5, &payloads).unwrap();
        assert_eq!(frames, 1);
        let mut via_frame = Vec::new();
        write_msg(&mut via_frame, &Frame::ItemBatch { first_seq: 5, payloads, trace: None })
            .unwrap();
        assert_eq!(via_helper, via_frame);
    }

    #[test]
    fn oversized_batches_split_and_read_back_in_order() {
        let payloads: Vec<FileEvent> = (0..16).map(event).collect();
        let one_event_frame = {
            let mut buf = Vec::new();
            write_msg(
                &mut buf,
                &Frame::ItemBatch { first_seq: 1, payloads: vec![event(0)], trace: None },
            )
            .unwrap();
            buf.len()
        };
        // A cap of roughly three events forces recursive splitting.
        let cap = one_event_frame * 3;
        let mut buf = Vec::new();
        let trace = Some(sdci_types::TraceContext::sampled(0xfeed, 0xbeef));
        let frames = write_item_batch_capped(&mut buf, 1, &payloads, trace, cap).unwrap();
        assert!(frames > 1, "cap {cap} should split 16 events, got {frames} frame(s)");

        let mut cursor = &buf[..];
        let mut next_seq = 1u64;
        let mut got = Vec::new();
        for _ in 0..frames {
            match read_msg::<Frame<FileEvent>>(&mut cursor).unwrap() {
                Frame::ItemBatch { first_seq, payloads, trace: got_trace } => {
                    assert_eq!(first_seq, next_seq, "split frames must stay contiguous");
                    assert_eq!(got_trace, trace, "every split chunk repeats the frame context");
                    next_seq += payloads.len() as u64;
                    got.extend(payloads);
                }
                other => panic!("expected ItemBatch, got {other:?}"),
            }
        }
        assert!(cursor.is_empty());
        assert_eq!(got, payloads);
    }

    #[test]
    fn publish_batch_split_preserves_topic_and_order() {
        let payloads: Vec<FileEvent> = (0..8).map(event).collect();
        let mut buf = Vec::new();
        let frames =
            write_publish_batch_capped(&mut buf, "events/mdt0", &payloads, None, 256).unwrap();
        assert!(frames > 1);
        let mut cursor = &buf[..];
        let mut got = Vec::new();
        for _ in 0..frames {
            match read_msg::<Frame<FileEvent>>(&mut cursor).unwrap() {
                Frame::PublishBatch { topic, payloads, trace } => {
                    assert_eq!(topic, "events/mdt0");
                    assert_eq!(trace, None);
                    got.extend(payloads);
                }
                other => panic!("expected PublishBatch, got {other:?}"),
            }
        }
        assert!(cursor.is_empty());
        assert_eq!(got, payloads);
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let mut buf = Vec::new();
        for i in 0..5 {
            write_msg(&mut buf, &Frame::Item { seq: i, payload: event(i) }).unwrap();
        }
        let mut cursor = &buf[..];
        for i in 0..5 {
            let frame: Frame<FileEvent> = read_msg(&mut cursor).unwrap();
            assert_eq!(frame, Frame::Item { seq: i, payload: event(i) });
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"junk");
        let err = read_msg::<Frame<FileEvent>>(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_body_is_an_error() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &Frame::<FileEvent>::Ping).unwrap();
        buf.pop();
        assert!(read_msg::<Frame<FileEvent>>(&mut &buf[..]).is_err());
    }

    /// Yields at most one byte per call, returning `WouldBlock` before
    /// every byte — the worst case of a socket whose read timeout keeps
    /// firing while a frame trickles in.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        ready: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            self.ready = false;
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_frame() {
        let mut data = Vec::new();
        for i in 0..3 {
            write_msg(&mut data, &Frame::Item { seq: i, payload: event(i) }).unwrap();
        }
        let total = data.len();
        let mut reader = FrameReader::new(Trickle { data, pos: 0, ready: false });
        for i in 0..3 {
            // Every byte costs one timed-out call; plain `read_msg`
            // would desync on the first of them.
            let frame = loop {
                match reader.read_msg::<Frame<FileEvent>>() {
                    Ok(frame) => break frame,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("unexpected error: {e:?}"),
                }
            };
            assert_eq!(frame, Frame::Item { seq: i, payload: event(i) });
        }
        assert!(total > 0);
        // The stream is drained; the next read is a clean EOF.
        let err = loop {
            match reader.read_msg::<Frame<FileEvent>>() {
                Ok(frame) => panic!("unexpected frame: {frame:?}"),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn frame_reader_rejects_oversized_lengths() {
        let mut data = Vec::new();
        data.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut reader = FrameReader::new(&data[..]);
        let err = reader.read_msg::<Frame<FileEvent>>().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_json_is_invalid_data() {
        let body = b"not json";
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
        buf.extend_from_slice(body);
        let err = read_msg::<Frame<FileEvent>>(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    // -- proto-3 binary codec ------------------------------------------------

    /// Splits `buf` into raw `(is_binary, body)` frames without decoding.
    fn raw_frames(mut buf: &[u8]) -> Vec<(bool, Vec<u8>)> {
        let mut out = Vec::new();
        while !buf.is_empty() {
            let word = u32::from_be_bytes(buf[..4].try_into().unwrap());
            let len = (word & !BIN_FRAME_BIT) as usize;
            out.push((word & BIN_FRAME_BIT != 0, buf[4..4 + len].to_vec()));
            buf = &buf[4 + len..];
        }
        out
    }

    #[test]
    fn binary_item_batch_roundtrips_with_and_without_trace() {
        for trace in [None, Some(sdci_types::TraceContext::sampled(0xabcd, 0x1234))] {
            let payloads: Vec<FileEvent> = (0..4).map(event).collect();
            let mut enc = BinEncoder::new();
            let mut buf = Vec::new();
            let frames = write_item_batch_bin(&mut buf, &mut enc, 7, &payloads, trace).unwrap();
            assert_eq!(frames, 1);
            let (bin, _) = raw_frames(&buf)[0].clone();
            assert!(bin, "length word must carry BIN_FRAME_BIT");
            let back: Frame<FileEvent> = read_msg(&mut &buf[..]).unwrap();
            assert_eq!(back, Frame::ItemBatch { first_seq: 7, payloads, trace });
        }
    }

    #[test]
    fn binary_publish_batch_roundtrips() {
        let payloads: Vec<FileEvent> = (0..3).map(event).collect();
        let trace = Some(sdci_types::TraceContext::sampled(1, 2));
        let mut enc = BinEncoder::new();
        let mut buf = Vec::new();
        let frames =
            write_publish_batch_bin(&mut buf, &mut enc, "events/mdt0", &payloads, trace).unwrap();
        assert_eq!(frames, 1);
        let back: Frame<FileEvent> = read_msg(&mut &buf[..]).unwrap();
        assert_eq!(back, Frame::PublishBatch { topic: "events/mdt0".into(), payloads, trace });
    }

    #[test]
    fn binary_deliver_batch_roundtrips_with_and_without_trace() {
        for trace in [None, Some(sdci_types::TraceContext::sampled(0xcafe, 0x77))] {
            let payloads: Vec<FileEvent> = (0..4).map(event).collect();
            let mut enc = BinEncoder::new();
            let mut buf = Vec::new();
            let frames =
                write_deliver_batch_bin(&mut buf, &mut enc, "feed/all", &payloads, trace).unwrap();
            assert_eq!(frames, 1);
            assert!(raw_frames(&buf)[0].0, "deliver batches go binary on proto-3 legs");
            let back: Frame<FileEvent> = read_msg(&mut &buf[..]).unwrap();
            assert_eq!(back, Frame::DeliverBatch { topic: "feed/all".into(), payloads, trace });
        }
    }

    #[test]
    fn binary_deliver_split_preserves_topic_and_order() {
        let payloads: Vec<FileEvent> = (0..8).map(event).collect();
        let mut enc = BinEncoder::new();
        let mut buf = Vec::new();
        let frames =
            write_deliver_batch_bin_capped(&mut buf, &mut enc, "feed/all", &payloads, None, 256)
                .unwrap();
        assert!(frames > 1);
        let mut cursor = &buf[..];
        let mut got = Vec::new();
        for _ in 0..frames {
            match read_msg::<Frame<FileEvent>>(&mut cursor).unwrap() {
                Frame::DeliverBatch { topic, payloads, trace } => {
                    assert_eq!(topic, "feed/all");
                    assert_eq!(trace, None);
                    got.extend(payloads);
                }
                other => panic!("expected DeliverBatch, got {other:?}"),
            }
        }
        assert!(cursor.is_empty());
        assert_eq!(got, payloads);
    }

    #[test]
    fn json_deliver_batch_writer_matches_frame_encoding() {
        let payloads = vec![event(1), event(2)];
        let mut via_helper = Vec::new();
        let frames = write_deliver_batch(&mut via_helper, "feed/all", &payloads, None).unwrap();
        assert_eq!(frames, 1);
        let mut via_frame = Vec::new();
        write_msg(
            &mut via_frame,
            &Frame::DeliverBatch { topic: "feed/all".into(), payloads, trace: None },
        )
        .unwrap();
        assert_eq!(via_helper, via_frame);
    }

    /// The proto-1 fallback renders byte-identical frames to the
    /// per-event `Deliver` path it replaces — old subscribers cannot
    /// tell the encode-once fan-out happened.
    #[test]
    fn deliver_events_writer_matches_per_event_frames() {
        let payloads = vec![event(1), event(2), event(3)];
        let mut via_helper = Vec::new();
        let frames = write_deliver_events(&mut via_helper, "feed/all", &payloads).unwrap();
        assert_eq!(frames, 3);
        let mut via_frames = Vec::new();
        for p in &payloads {
            write_msg(
                &mut via_frames,
                &Frame::Deliver { topic: "feed/all".into(), payload: p.clone() },
            )
            .unwrap();
        }
        assert_eq!(via_helper, via_frames);
    }

    /// One `FrameReader` must switch decoders frame by frame: proto-3
    /// sessions still send control frames (acks, pings, handshakes) as
    /// JSON between binary batches.
    #[test]
    fn binary_and_json_frames_interleave_on_one_stream() {
        let mut enc = BinEncoder::new();
        let mut buf = Vec::new();
        write_msg(
            &mut buf,
            &Frame::<FileEvent>::HelloPush {
                client: "mdt0".into(),
                resume_after: 0,
                proto: Some(WIRE_PROTO),
            },
        )
        .unwrap();
        write_item_batch_bin(&mut buf, &mut enc, 1, &[event(1), event(2)], None).unwrap();
        write_msg(&mut buf, &Frame::<FileEvent>::Ping).unwrap();
        write_item_batch_bin(&mut buf, &mut enc, 3, &[event(3)], None).unwrap();

        let mut reader = FrameReader::new(&buf[..]);
        assert!(matches!(reader.read_msg::<Frame<FileEvent>>().unwrap(), Frame::HelloPush { .. }));
        assert_eq!(
            reader.read_msg::<Frame<FileEvent>>().unwrap(),
            Frame::ItemBatch { first_seq: 1, payloads: vec![event(1), event(2)], trace: None }
        );
        assert_eq!(reader.read_msg::<Frame<FileEvent>>().unwrap(), Frame::<FileEvent>::Ping);
        assert_eq!(
            reader.read_msg::<Frame<FileEvent>>().unwrap(),
            Frame::ItemBatch { first_seq: 3, payloads: vec![event(3)], trace: None }
        );
    }

    /// `write_msg_bin` falls back to JSON for frames with no binary
    /// form — the stream stays `nc`-debuggable for control traffic.
    #[test]
    fn write_msg_bin_falls_back_to_json_for_control_frames() {
        let mut enc = BinEncoder::new();
        let mut buf = Vec::new();
        write_msg_bin(&mut buf, &mut enc, &Frame::<FileEvent>::Ack { up_to: 9, proto: None })
            .unwrap();
        let frames = raw_frames(&buf);
        assert_eq!(frames.len(), 1);
        assert!(!frames[0].0, "control frames must stay JSON");
        assert!(std::str::from_utf8(&frames[0].1).unwrap().contains("Ack"));
    }

    /// Satellite check: the chunker's size accounting must match the
    /// bytes actually emitted, or a chunk sized exactly at the cap
    /// overshoots it — at [`MAX_FRAME_LEN`] that turns a splittable
    /// batch into a hard `write_bin_frame` rejection. `u64` payloads
    /// encode to exactly 8 bytes, so frame sizes are fully predictable:
    /// body = kind(1) + flags(1) + first_seq(8) + count(4) + n×(4+8).
    #[test]
    fn binary_chunk_cap_is_exact_at_the_boundary() {
        let payloads: Vec<u64> = (0..9).collect();
        let three_member_body = 14 + 3 * 12;
        let mut enc = BinEncoder::new();

        // Cap exactly at a three-member body: three members per frame,
        // and every emitted body is within the cap.
        let mut buf = Vec::new();
        let frames =
            write_item_batch_bin_capped(&mut buf, &mut enc, 1, &payloads, None, three_member_body)
                .unwrap();
        assert_eq!(frames, 3);
        for (bin, body) in raw_frames(&buf) {
            assert!(bin);
            assert_eq!(body.len(), three_member_body);
        }

        // One byte under the cap must drop to two members per frame.
        let mut buf = Vec::new();
        let frames = write_item_batch_bin_capped(
            &mut buf,
            &mut enc,
            1,
            &payloads,
            None,
            three_member_body - 1,
        )
        .unwrap();
        assert_eq!(frames, 5, "9 payloads at 2/frame");
        for (_, body) in raw_frames(&buf) {
            assert!(body.len() < three_member_body);
        }
    }

    #[test]
    fn binary_split_keeps_seq_contiguous_and_repeats_trace() {
        let payloads: Vec<FileEvent> = (0..16).map(event).collect();
        let trace = Some(sdci_types::TraceContext::sampled(0xfeed, 0xbeef));
        let one_event_body = {
            let mut enc = BinEncoder::new();
            let mut buf = Vec::new();
            write_item_batch_bin(&mut buf, &mut enc, 1, &payloads[..1], trace).unwrap();
            buf.len() - FRAME_HEADER_LEN
        };
        let cap = one_event_body * 3;
        let mut enc = BinEncoder::new();
        let mut buf = Vec::new();
        let frames =
            write_item_batch_bin_capped(&mut buf, &mut enc, 1, &payloads, trace, cap).unwrap();
        assert!(frames > 1, "cap {cap} should split 16 events, got {frames} frame(s)");

        let mut cursor = &buf[..];
        let mut next_seq = 1u64;
        let mut got = Vec::new();
        for _ in 0..frames {
            match read_msg::<Frame<FileEvent>>(&mut cursor).unwrap() {
                Frame::ItemBatch { first_seq, payloads, trace: got_trace } => {
                    assert_eq!(first_seq, next_seq, "split frames must stay contiguous");
                    assert_eq!(got_trace, trace, "every split chunk repeats the frame context");
                    next_seq += payloads.len() as u64;
                    got.extend(payloads);
                }
                other => panic!("expected ItemBatch, got {other:?}"),
            }
        }
        assert!(cursor.is_empty());
        assert_eq!(got, payloads);
    }

    /// A single member larger than the cap cannot be split — it still
    /// gets its own frame (the `u32`/[`MAX_FRAME_LEN`] checks remain the
    /// backstop, exactly like the JSON path).
    #[test]
    fn binary_oversized_single_member_still_gets_a_frame() {
        let payloads = vec!["x".repeat(100), "y".into()];
        let mut enc = BinEncoder::new();
        let mut buf = Vec::new();
        let frames =
            write_item_batch_bin_capped(&mut buf, &mut enc, 1, &payloads, None, 20).unwrap();
        assert_eq!(frames, 2);
        let mut cursor = &buf[..];
        let mut got: Vec<String> = Vec::new();
        for _ in 0..frames {
            match read_msg::<Frame<String>>(&mut cursor).unwrap() {
                Frame::ItemBatch { payloads, .. } => got.extend(payloads),
                other => panic!("expected ItemBatch, got {other:?}"),
            }
        }
        assert_eq!(got, payloads);
    }

    #[test]
    fn binary_publish_split_preserves_topic_and_order() {
        let payloads: Vec<FileEvent> = (0..8).map(event).collect();
        let mut enc = BinEncoder::new();
        let mut buf = Vec::new();
        let frames =
            write_publish_batch_bin_capped(&mut buf, &mut enc, "events/mdt0", &payloads, None, 256)
                .unwrap();
        assert!(frames > 1);
        let mut cursor = &buf[..];
        let mut got = Vec::new();
        for _ in 0..frames {
            match read_msg::<Frame<FileEvent>>(&mut cursor).unwrap() {
                Frame::PublishBatch { topic, payloads, trace } => {
                    assert_eq!(topic, "events/mdt0");
                    assert_eq!(trace, None);
                    got.extend(payloads);
                }
                other => panic!("expected PublishBatch, got {other:?}"),
            }
        }
        assert!(cursor.is_empty());
        assert_eq!(got, payloads);
    }

    #[test]
    fn binary_frame_with_trailing_garbage_is_rejected() {
        let mut enc = BinEncoder::new();
        let mut buf = Vec::new();
        write_item_batch_bin(&mut buf, &mut enc, 1, &[event(1)], None).unwrap();
        // Stretch the length word over one junk byte appended to the body.
        buf.push(0xff);
        let word = (u32::from_be_bytes(buf[..4].try_into().unwrap()) & !BIN_FRAME_BIT) + 1;
        buf[..4].copy_from_slice(&(word | BIN_FRAME_BIT).to_be_bytes());
        let err = read_msg::<Frame<FileEvent>>(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("trailing"), "got: {err}");
    }

    #[test]
    fn binary_unknown_kind_and_flags_are_rejected() {
        for body in [vec![9u8, 0], vec![BIN_KIND_ITEM_BATCH, 0x7e]] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&((body.len() as u32) | BIN_FRAME_BIT).to_be_bytes());
            buf.extend_from_slice(&body);
            let err = read_msg::<Frame<FileEvent>>(&mut &buf[..]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
    }

    /// A hostile count word must not pre-allocate beyond the bytes that
    /// actually arrived.
    #[test]
    fn binary_hostile_count_is_rejected_not_allocated() {
        let mut body = Vec::new();
        bin_header(&mut body, BIN_KIND_ITEM_BATCH, None);
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes()); // count
        let mut buf = Vec::new();
        buf.extend_from_slice(&((body.len() as u32) | BIN_FRAME_BIT).to_be_bytes());
        buf.extend_from_slice(&body);
        let err = read_msg::<Frame<FileEvent>>(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn store_batch_binary_roundtrips_and_rejects_trace_section() {
        use crate::store_rpc::StoreRpc;
        use sdci_core::SequencedEvent;

        let events: Vec<SequencedEvent> =
            (1..4).map(|i| SequencedEvent { seq: i, event: event(i) }).collect();
        let reply = StoreRpc::Batch { events };
        let mut enc = BinEncoder::new();
        let mut buf = Vec::new();
        write_msg_bin(&mut buf, &mut enc, &reply).unwrap();
        assert!(raw_frames(&buf)[0].0, "store batch replies go binary");
        let back: StoreRpc = read_msg(&mut &buf[..]).unwrap();
        assert_eq!(back, reply);

        // Store batches carry no trace section; a flags bit claiming one
        // is corruption, not a quiet skip.
        let mut body = Vec::new();
        bin_header(&mut body, BIN_KIND_STORE_BATCH, Some(sdci_types::TraceContext::sampled(1, 2)));
        body.extend_from_slice(&0u32.to_le_bytes());
        let mut framed = Vec::new();
        framed.extend_from_slice(&((body.len() as u32) | BIN_FRAME_BIT).to_be_bytes());
        framed.extend_from_slice(&body);
        let err = read_msg::<StoreRpc>(&mut &framed[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
