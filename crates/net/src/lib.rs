//! sdci-net: the monitor's transport fabric over real TCP sockets.
//!
//! The in-process broker in [`sdci_mq`] carries the paper's ZeroMQ
//! semantics inside one process; this crate carries the same semantics
//! across processes, so Collector → Aggregator → Consumer can run as
//! three OS processes (or three hosts):
//!
//! * [`wire`] — the framing: 4-byte big-endian length word + one
//!   frame body. Proto ≥ 2 sessions (negotiated at the `Hello*`
//!   handshake, see [`wire::WIRE_PROTO`]) may coalesce many payloads
//!   into one `ItemBatch`/`PublishBatch` frame; proto ≥ 3 sessions
//!   additionally encode those hot-path batch frames in a compact
//!   binary form (the length word's high bit, [`BIN_FRAME_BIT`], marks
//!   a binary body). Control frames — handshakes, acks, pings — stay
//!   JSON at every version, so the session remains debuggable with
//!   `nc` even when the bulk data is binary.
//! * [`conn`] — supervision policy: jittered exponential reconnect
//!   backoff, heartbeat/liveness tunables ([`conn::NetConfig`]).
//! * [`pubsub`] — lossy PUB/SUB ([`TcpBroker`], [`TcpPublisher`],
//!   [`TcpSubscriber`]) with per-subscriber high-water-mark shedding,
//!   mirroring `sdci_mq::pubsub`. [`TcpTransport`] implements
//!   `sdci_mq::transport::Transport`, so `MonitorClusterBuilder::
//!   start_over` accepts it interchangeably with an in-process broker.
//! * [`pipe`] — lossless PUSH/PULL ([`TcpPullServer`], [`TcpPush`]):
//!   per-client sequence numbers, acknowledgements, and resend-on-
//!   reconnect give at-least-once delivery with server-side dedup —
//!   "no events are lost once they have been processed" (§5.2).
//! * [`store_rpc`] — a minimal query RPC ([`StoreServer`],
//!   [`RemoteStore`]) exposing the Aggregator's [`EventStore`] so a
//!   remote `EventConsumer` can backfill gaps after reconnecting.
//! * [`cluster`] — the sharded-tier fabric: shard-map distribution
//!   ([`MapServer`]), collector-side per-shard routing
//!   ([`ShardRouter`]), and the scatter-gather query front-end
//!   ([`ScatterStore`]) that keeps a sharded tier looking like one
//!   logical store.
//! * [`faulted`] — enforcement of an `sdci_faults::FaultPlan`
//!   installed on [`conn::NetConfig`]: every endpoint above inherits
//!   deterministic frame drop/duplicate/truncate/delay and scripted
//!   partitions at the conn/wire boundary.
//!
//! Every client endpoint is supervised: constructors return
//! immediately and a background worker connects (and re-connects,
//! forever, with backoff) on the caller's behalf. Process failure
//! therefore shows up downstream as a sequence gap — which the
//! consumer already heals from the store — not as an error the
//! application has to handle.
//!
//! [`EventStore`]: sdci_core::EventStore

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod conn;
pub mod faulted;
pub mod pipe;
pub mod pubsub;
pub mod store_rpc;
pub mod wire;

pub use cluster::{
    add_shard, fetch_map, shard_store_addr, ClusterRpc, MapServer, ScatterStore, ShardRouter,
};
pub use conn::{Backoff, NetConfig, RetryPolicy};
pub use faulted::FaultedWriter;
pub use pipe::{TcpPullServer, TcpPush};
pub use pubsub::{TcpBroker, TcpPublisher, TcpSubscriber, TcpTransport};
pub use store_rpc::{RemoteStore, StoreServer};
pub use wire::{
    BinEncoder, BinFrame, Frame, BIN_FRAME_BIT, FRAME_HEADER_LEN, MAX_FRAME_LEN, WIRE_PROTO,
};
