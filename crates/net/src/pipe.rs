//! TCP PUSH/PULL: the lossless Collector → Aggregator leg.
//!
//! The paper's §5.2 observation — "no events are lost once they have
//! been processed" — becomes a protocol here:
//!
//! * every [`TcpPush`] client has a stable identity and numbers its
//!   items with a dense per-client sequence; a fresh client adopts the
//!   server's high-water mark for its identity at the first handshake,
//!   so a restarted pusher resumes the numbering of its previous
//!   incarnation instead of colliding with it;
//! * the [`TcpPullServer`] acknowledges each item only after handing it
//!   to the local (blocking, bounded) pipeline, and remembers the
//!   highest sequence accepted per client;
//! * after a reconnect the client re-sends everything unacknowledged
//!   and the server discards duplicates by sequence number.
//!
//! The result is at-least-once delivery on the wire and exactly-once
//! delivery into the pipeline, with backpressure end to end: the pusher
//! blocks once [`NetConfig::window`] items are in flight, and the
//! server blocks reading the socket while the local pipeline is full.
//!
//! # Durability is the deployment's job
//!
//! An `Ack` means "handed to the server's in-memory pipeline", not
//! "durably stored". A server process that crashes can therefore lose
//! items it acknowledged but had not yet persisted; how large that
//! window is depends on how often the embedding process checkpoints
//! (for `sdcimon aggregator --snapshot`, the 200 ms snapshot cadence).
//! To keep a *restart* from also duplicating items that did reach the
//! checkpoint, persist [`TcpPullServer::marks`] alongside it — captured
//! *after* the durable state, see the method docs — and restore them
//! with [`TcpPullServer::bind_with_marks`].

use crate::conn::{Backoff, NetConfig};
use crate::faulted::{conn_faults, spawn_worker, FaultedWriter};
use crate::wire::{
    write_item_batch_bin, write_item_batch_traced, write_msg, BinEncoder, Frame, FrameReader,
};
use sdci_mq::pipe::{pipeline, Pull, Push};
use sdci_mq::transport::{Publish, PublishOutcome};
use sdci_types::{BinPayload, TraceCarrier, TraceContext};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Counter snapshot for a [`TcpPullServer`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PullServerStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Items handed to the local pipeline.
    pub items: u64,
    /// Re-sent items discarded as duplicates.
    pub duplicates: u64,
    /// `ItemBatch` frames received (each acked once, however many
    /// items it carried).
    pub batches: u64,
    /// Connections dropped because an item arrived beyond the client's
    /// next dense sequence number — frames were lost in transit, and
    /// accepting the jump would silently lose the gap forever.
    pub gap_rejects: u64,
    /// Gap `Nack`s sent to proto-≥2 pushers naming the expected
    /// sequence, so they fast-rewind in place instead of reconnecting.
    pub nacks: u64,
}

#[derive(Debug, Default)]
struct ServerCounters {
    accepted: AtomicU64,
    items: AtomicU64,
    duplicates: AtomicU64,
    batches: AtomicU64,
    gap_rejects: AtomicU64,
    nacks: AtomicU64,
}

/// Per-client dedup high-water marks. Each client's mark has its own
/// mutex, held across the check-push-update of every item, so two
/// connections claiming the same identity (a reconnect racing a handler
/// still blocked on the pipeline) serialize instead of double-pushing.
type SeenMarks = Arc<parking_lot::Mutex<HashMap<String, Arc<parking_lot::Mutex<u64>>>>>;

/// The PULL side: accepts [`TcpPush`] clients and funnels their items,
/// deduplicated and in per-client order, into a local bounded pipeline
/// consumed via [`TcpPullServer::pull`].
pub struct TcpPullServer<T> {
    pull: Pull<T>,
    push: Option<Push<T>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
    counters: Arc<ServerCounters>,
    seen: SeenMarks,
}

impl<T> std::fmt::Debug for TcpPullServer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpPullServer").field("addr", &self.addr).finish()
    }
}

impl<T> TcpPullServer<T>
where
    T: Send + Serialize + Deserialize + BinPayload + 'static,
{
    /// Binds `addr` and starts accepting pushers. `capacity` bounds the
    /// local pipeline; when the puller falls that far behind, incoming
    /// connections block (backpressure) rather than shed.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        capacity: usize,
        cfg: NetConfig,
    ) -> std::io::Result<Self> {
        Self::bind_with_marks(addr, capacity, cfg, HashMap::new())
    }

    /// Like [`TcpPullServer::bind`], but seeds the per-client dedup
    /// high-water marks — e.g. a [`TcpPullServer::marks`] capture
    /// persisted next to the embedding process's durable state — so
    /// that after a restart, items a reconnecting client re-sends are
    /// discarded when the restored state already holds them.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn bind_with_marks(
        addr: impl ToSocketAddrs,
        capacity: usize,
        cfg: NetConfig,
        marks: HashMap<String, u64>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (push, pull) = pipeline::<T>(capacity);
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let counters = Arc::new(ServerCounters::default());
        let seen: SeenMarks = Arc::new(parking_lot::Mutex::new(
            marks.into_iter().map(|(c, m)| (c, Arc::new(parking_lot::Mutex::new(m)))).collect(),
        ));
        let accept = {
            let push = push.clone();
            let seen = Arc::clone(&seen);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let counters = Arc::clone(&counters);
            spawn_worker(
                format!("sdci-net-pull-{}", addr.port()),
                "net.pipe.spawn_accept",
                move || {
                    pull_accept_loop(listener, push, seen, cfg, stop, conns, counters);
                },
            )?
        };
        Ok(TcpPullServer {
            pull,
            push: Some(push),
            addr,
            stop,
            accept: Some(accept),
            conns,
            counters,
            seen,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The local consuming end. `Pull::recv` returns `None` once the
    /// server has shut down and every connection has drained.
    pub fn pull(&self) -> Pull<T> {
        self.pull.clone()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PullServerStats {
        PullServerStats {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            items: self.counters.items.load(Ordering::Relaxed),
            duplicates: self.counters.duplicates.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            gap_rejects: self.counters.gap_rejects.load(Ordering::Relaxed),
            nacks: self.counters.nacks.load(Ordering::Relaxed),
        }
    }

    /// The per-client dedup high-water marks: for each client identity,
    /// the highest sequence number handed to the pipeline.
    ///
    /// Persist this next to the embedding process's durable state and
    /// restore it with [`TcpPullServer::bind_with_marks`]. Capture it
    /// *after* checkpointing downstream state: a client's mark always
    /// advances before its item can reach anything downstream of the
    /// pipeline, so marks captured after the checkpoint are ≥ every
    /// item the checkpoint holds — restored dedup then never discards a
    /// re-sent item the checkpoint is missing.
    pub fn marks(&self) -> HashMap<String, u64> {
        self.seen.lock().iter().map(|(c, m)| (c.clone(), *m.lock())).collect()
    }

    /// Stops accepting, joins every connection (each finishes its
    /// in-flight frame), and closes the local pipeline's push end so
    /// pullers observe end-of-stream after draining.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        let handles: Vec<JoinHandle<()>> = self.conns.lock().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
        self.push = None;
    }
}

impl<T> Drop for TcpPullServer<T> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn pull_accept_loop<T>(
    listener: TcpListener,
    push: Push<T>,
    seen: SeenMarks,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
    conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
    counters: Arc<ServerCounters>,
) where
    T: Send + Serialize + Deserialize + BinPayload + 'static,
{
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, peer)) => {
                counters.accepted.fetch_add(1, Ordering::Relaxed);
                sdci_obs::static_metric!(counter, "sdci_net_pull_accepted_total").inc();
                let push = push.clone();
                let seen = Arc::clone(&seen);
                let cfg = cfg.clone();
                let stop = Arc::clone(&stop);
                let counters = Arc::clone(&counters);
                let spawned =
                    spawn_worker("sdci-net-pull-conn".into(), "net.pipe.spawn_conn", move || {
                        serve_pusher(stream, push, seen, cfg, stop, counters)
                    });
                match spawned {
                    Ok(handle) => {
                        let mut guard = conns.lock();
                        guard.retain(|h| !h.is_finished());
                        guard.push(handle);
                    }
                    Err(e) => {
                        // Dropping the stream makes the pusher
                        // reconnect and re-send; a transient EAGAIN
                        // must not kill the whole server.
                        sdci_obs::error!("pull conn thread spawn failed; dropping connection"; peer = peer, error = e.to_string());
                        sdci_obs::static_metric!(counter, "sdci_net_spawn_failures_total").inc();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_pusher<T>(
    stream: TcpStream,
    push: Push<T>,
    seen: SeenMarks,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
    counters: Arc<ServerCounters>,
) where
    T: Send + Serialize + Deserialize + BinPayload + 'static,
{
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(cfg.heartbeat)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    // A `FrameReader` rather than `read_msg` on the raw socket: the
    // heartbeat read timeout may fire mid-frame, and losing the
    // already-consumed length prefix would desynchronize the stream.
    let (send_faults, recv_faults) = conn_faults(&cfg);
    let mut reader = FrameReader::with_faults(read_half, recv_faults);
    let mut writer = FaultedWriter::new(stream, send_faults);
    // Handshake: learn the client identity, tell it where we are. A
    // peer gets a full liveness window to complete its hello.
    let opened = Instant::now();
    let (client, resume_after, client_proto) = loop {
        match reader.read_msg::<Frame<T>>() {
            Ok(Frame::HelloPush { client, resume_after, proto }) => {
                break (client, resume_after, proto.unwrap_or(1))
            }
            Err(e) if timed_out(&e) && opened.elapsed() <= cfg.liveness => {}
            _ => return,
        }
    };
    // One mark per client identity, shared by every connection that
    // claims it — including the next one, when a reconnect races a
    // handler still blocked on the pipeline.
    let mark = {
        let mut map = seen.lock();
        Arc::clone(map.entry(client).or_default())
    };
    let greeting = {
        let mut m = mark.lock();
        // `resume_after` is the highest ack the client ever saw; it can
        // be ahead of our mark when our dedup state is older than the
        // client's (e.g. restored from a stale marks capture). Trust
        // the client: never re-accept items it already dropped as
        // acknowledged.
        if resume_after > *m {
            *m = resume_after;
        }
        *m
    };
    // The greeting `Ack` doubles as version negotiation: it carries our
    // protocol version so the client knows whether it may batch. A
    // proto-1 server (emulated with `cfg.proto == 1`) omits the field,
    // and the greeting is byte-identical to the PR 1 wire.
    let offered = (cfg.proto >= 2).then_some(cfg.proto);
    if write_msg(&mut writer, &Frame::<T>::Ack { up_to: greeting, proto: offered }).is_err() {
        return;
    }
    let mut last_traffic = Instant::now();
    // The expected seq named by the last gap `Nack` and when it was
    // sent, so a stalled mark draws one nack per heartbeat however many
    // in-flight frames sail past the gap before the rewound resend
    // arrives — while a rewound resend that is itself lost still earns
    // a fresh nack once the window has passed.
    let mut nacked_at: Option<(u64, Instant)> = None;
    // `stop` is checked every iteration, not just on timeouts, so a
    // client streaming at full rate cannot pin the handler past
    // shutdown. Unacked in-flight items are re-sent to the next server.
    while !stop.load(Ordering::Relaxed) {
        match reader.read_msg::<Frame<T>>() {
            Ok(Frame::Item { seq, payload }) => {
                last_traffic = Instant::now();
                // The mark's mutex is held across check-push-update so
                // the dedup decision and the pipeline hand-off are one
                // atomic step per client.
                let outcome = {
                    let mut m = mark.lock();
                    // A client sends densely from its last ack, so a
                    // jump past mark+1 means frames vanished in
                    // transit. Advancing the mark over the gap would
                    // ack — and thereby lose — items that never
                    // arrived. A proto-≥2 client is told the expected
                    // seq so it rewinds and retransmits in place; a
                    // proto-1 client gets the connection killed, which
                    // makes it resend its unacked window. (The client
                    // treats non-advancing acks as liveness, so
                    // stalling acks here would livelock, not recover.)
                    if seq > *m + 1 {
                        if client_proto < 2 {
                            gap_reject(&counters, *m, seq);
                            return;
                        }
                        Err(*m + 1)
                    } else {
                        if seq > *m {
                            // Ack only after the pipeline takes it: an ack
                            // means "processed", so a crash before this
                            // point makes the client re-send, never lose.
                            if !push.send(payload) {
                                return;
                            }
                            *m = seq;
                            counters.items.fetch_add(1, Ordering::Relaxed);
                            sdci_obs::static_metric!(counter, "sdci_net_pull_items_total").inc();
                        } else {
                            counters.duplicates.fetch_add(1, Ordering::Relaxed);
                            sdci_obs::static_metric!(counter, "sdci_net_dedup_hits_total").inc();
                        }
                        Ok(*m)
                    }
                };
                match outcome {
                    Ok(up_to) => {
                        nacked_at = None;
                        if write_msg(&mut writer, &Frame::<T>::Ack { up_to, proto: None }).is_err()
                        {
                            return;
                        }
                    }
                    Err(expected) => {
                        if nack_gap::<T>(
                            &mut writer,
                            &counters,
                            &mut nacked_at,
                            expected,
                            cfg.heartbeat,
                        )
                        .is_err()
                        {
                            return;
                        }
                    }
                }
            }
            Ok(Frame::ItemBatch { first_seq, payloads, trace }) => {
                last_traffic = Instant::now();
                counters.batches.fetch_add(1, Ordering::Relaxed);
                sdci_obs::static_metric!(counter, "sdci_net_pull_batches_total").inc();
                // The frame-level context marks the network hop: one
                // receive span per batch, parented under the sender's
                // `net.push.send`. Event-level contexts stay embedded
                // in the payloads for the stages downstream.
                let mut recv_span = trace.filter(|t| t.sampled).map(|t| {
                    sdci_obs::trace::child_of(t.trace_id, t.parent_span_id, "net.pull.recv")
                });
                if let Some(span) = recv_span.as_mut() {
                    span.set_detail(format!("{} items", payloads.len()));
                }
                // Same atomicity as the single-item path — the mark's
                // mutex spans every member's check-push-update — but the
                // lock is taken once and the whole run gets one `Ack`.
                let outcome = {
                    let mut m = mark.lock();
                    // Batch members are dense from `first_seq`, so one
                    // check covers the whole frame — same gap policy
                    // as the single-item path above.
                    if first_seq > *m + 1 {
                        if client_proto < 2 {
                            gap_reject(&counters, *m, first_seq);
                            return;
                        }
                        Err(*m + 1)
                    } else {
                        let mut fresh = 0u64;
                        let mut dups = 0u64;
                        for (i, payload) in payloads.into_iter().enumerate() {
                            let seq = first_seq + i as u64;
                            if seq > *m {
                                if !push.send(payload) {
                                    return;
                                }
                                *m = seq;
                                fresh += 1;
                            } else {
                                // A re-sent batch may be only partially
                                // stale: accept the tail, drop the prefix.
                                dups += 1;
                            }
                        }
                        counters.items.fetch_add(fresh, Ordering::Relaxed);
                        sdci_obs::static_metric!(counter, "sdci_net_pull_items_total").add(fresh);
                        counters.duplicates.fetch_add(dups, Ordering::Relaxed);
                        sdci_obs::static_metric!(counter, "sdci_net_dedup_hits_total").add(dups);
                        Ok(*m)
                    }
                };
                match outcome {
                    Ok(up_to) => {
                        nacked_at = None;
                        if write_msg(&mut writer, &Frame::<T>::Ack { up_to, proto: None }).is_err()
                        {
                            return;
                        }
                    }
                    Err(expected) => {
                        if nack_gap::<T>(
                            &mut writer,
                            &counters,
                            &mut nacked_at,
                            expected,
                            cfg.heartbeat,
                        )
                        .is_err()
                        {
                            return;
                        }
                    }
                }
            }
            Ok(Frame::Ping) => {
                last_traffic = Instant::now();
                // Re-ack as a keepalive so an idle client still hears us.
                let up_to = *mark.lock();
                if write_msg(&mut writer, &Frame::<T>::Ack { up_to, proto: None }).is_err() {
                    return;
                }
            }
            Ok(Frame::Fin) => return,
            Ok(_) => {}
            Err(e) if timed_out(&e) => {
                if last_traffic.elapsed() > cfg.liveness {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn timed_out(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Tells a proto-≥2 pusher where the stream must resume: one `Nack`
/// per stalled mark value and heartbeat window (later in-flight frames
/// past the same gap are dropped silently, without ack), so the pusher
/// rewinds its resend buffer in place instead of waiting out the
/// liveness window.
fn nack_gap<T: Serialize>(
    writer: &mut impl std::io::Write,
    counters: &ServerCounters,
    nacked_at: &mut Option<(u64, Instant)>,
    expected: u64,
    repeat_after: Duration,
) -> std::io::Result<()> {
    if nacked_at.is_some_and(|(e, at)| e == expected && at.elapsed() < repeat_after) {
        return Ok(());
    }
    *nacked_at = Some((expected, Instant::now()));
    counters.nacks.fetch_add(1, Ordering::Relaxed);
    sdci_obs::static_metric!(counter, "sdci_net_gap_nacks_total").inc();
    sdci_obs::warn!(
        "sequence gap on the push leg; nacking to request an in-place rewind";
        expected = expected,
    );
    write_msg(writer, &Frame::<T>::Nack { expected })
}

/// Accounts a sequence-gap rejection before the handler drops the
/// connection (see the gap checks in `serve_pusher`).
fn gap_reject(counters: &ServerCounters, mark: u64, offered: u64) {
    counters.gap_rejects.fetch_add(1, Ordering::Relaxed);
    sdci_obs::static_metric!(counter, "sdci_net_gap_rejects_total").inc();
    sdci_obs::warn!(
        "sequence gap on the push leg; dropping connection to force a resend";
        mark = mark,
        offered_seq = offered,
    );
}

#[derive(Debug, Default)]
struct PushState {
    /// Items accepted by `send` and not yet acknowledged by the server.
    pending: AtomicU64,
    /// Items acknowledged (processed) by the server.
    acked: AtomicU64,
    /// Successful connections (>1 means the link was re-established).
    connections: AtomicU64,
    /// In-place window resends performed in answer to a gap `Nack`.
    rewinds: AtomicU64,
}

/// The PUSH side: a cloneable, supervised sender whose items are
/// guaranteed to reach the [`TcpPullServer`]'s pipeline exactly once,
/// surviving connection loss and server restarts.
///
/// `send` blocks while the in-flight window is full (backpressure);
/// [`TcpPush::drain`] waits until everything sent has been acknowledged
/// — call it before exiting to make "collector done" mean "aggregator
/// has the events".
pub struct TcpPush<T> {
    tx: crossbeam_channel::Sender<T>,
    state: Arc<PushState>,
}

impl<T> Clone for TcpPush<T> {
    fn clone(&self) -> Self {
        TcpPush { tx: self.tx.clone(), state: Arc::clone(&self.state) }
    }
}

impl<T> std::fmt::Debug for TcpPush<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpPush").finish_non_exhaustive()
    }
}

impl<T> TcpPush<T>
where
    T: Clone + Send + Serialize + Deserialize + TraceCarrier + BinPayload + 'static,
{
    /// Starts a supervised pusher toward `addr`. `client` must be
    /// stable across restarts of the same logical pusher — it keys the
    /// server's duplicate-suppression state.
    pub fn connect(addr: SocketAddr, client: impl Into<String>, cfg: NetConfig) -> Self {
        let client = client.into();
        let (tx, rx) = crossbeam_channel::bounded::<T>(cfg.window.max(1));
        let state = Arc::new(PushState::default());
        {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("sdci-net-push-{client}"))
                .spawn(move || push_worker(addr, client, cfg, rx, state))
                .expect("spawn push worker");
        }
        TcpPush { tx, state }
    }

    /// Queues one item, blocking while the window is full. Returns
    /// `false` only if the worker has terminated (it never does while a
    /// handle is alive).
    pub fn send(&self, item: T) -> bool {
        self.state.pending.fetch_add(1, Ordering::Relaxed);
        if self.tx.send(item).is_ok() {
            true
        } else {
            self.state.pending.fetch_sub(1, Ordering::Relaxed);
            false
        }
    }

    /// Waits until every item sent on any clone has been acknowledged
    /// by the server, or `timeout` elapses. Returns `true` when fully
    /// drained.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.state.pending.load(Ordering::Relaxed) > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        true
    }

    /// Items acknowledged (processed by the server) so far.
    pub fn acked(&self) -> u64 {
        self.state.acked.load(Ordering::Relaxed)
    }

    /// Successful connections so far (>1 means the link was re-established).
    pub fn connections(&self) -> u64 {
        self.state.connections.load(Ordering::Relaxed)
    }

    /// Fast rewinds so far: in-place window resends answering a server
    /// gap `Nack`, each one a reconnect-and-wait avoided.
    pub fn fast_rewinds(&self) -> u64 {
        self.state.rewinds.load(Ordering::Relaxed)
    }
}

/// Lets a [`TcpPush`] stand in where a pub-sub publisher is expected
/// (e.g. a `Collector`'s event output). The topic is dropped: the PUSH
/// leg is point-to-point and events carry their own MDT index.
impl<T> Publish<T> for TcpPush<T>
where
    T: Clone + Send + Serialize + Deserialize + TraceCarrier + BinPayload + 'static,
{
    fn publish(&self, _topic: &str, payload: T) -> PublishOutcome {
        // `send` only fails when the worker is gone, which never
        // happens while a handle is alive — everything else queues.
        if self.send(payload) {
            PublishOutcome::Queued
        } else {
            PublishOutcome::Shed
        }
    }
}

/// Retransmits every unacked item with fresh send timestamps — after a
/// reconnect, or in place when a gap `Nack` arrives. Sequences in
/// `unacked` are dense, so on a batched session the whole window
/// re-ships as a few `ItemBatch` runs instead of one frame per item.
fn resend_window<T: Clone + Serialize + TraceCarrier + BinPayload>(
    writer: &mut impl std::io::Write,
    enc: &mut BinEncoder,
    unacked: &mut VecDeque<(u64, T, Instant)>,
    batched: bool,
    binary: bool,
    max_batch: usize,
    carry_ctx: bool,
) -> std::io::Result<()> {
    sdci_obs::static_metric!(counter, "sdci_net_push_resends_total").add(unacked.len() as u64);
    if batched && unacked.len() > 1 {
        let now = Instant::now();
        let first_seq = unacked.front().map_or(0, |(seq, _, _)| *seq);
        let payloads: Vec<T> = unacked
            .iter_mut()
            .map(|(_, item, sent_at)| {
                *sent_at = now;
                item.clone()
            })
            .collect();
        let mut offset = 0u64;
        for chunk in payloads.chunks(max_batch) {
            let trace = chunk.iter().find_map(|i| i.trace_context().filter(|c| c.sampled));
            if binary {
                // Proto-3 session: the window re-ships binary, and the
                // encoder re-splits any chunk whose encoded size would
                // overrun a frame.
                write_item_batch_bin(writer, enc, first_seq + offset, chunk, trace)?;
            } else {
                write_item_batch_traced(writer, first_seq + offset, chunk, trace)?;
            }
            offset += chunk.len() as u64;
        }
    } else {
        for (seq, item, sent_at) in unacked.iter_mut() {
            *sent_at = Instant::now();
            let mut payload = item.clone();
            if !carry_ctx {
                // Proto-1 session: the peer would not propagate (or
                // even understand dropping) the context — strip it from
                // the wire copy so the trace truncates cleanly. The
                // resend buffer keeps the original.
                payload.set_trace_context(None);
            }
            write_msg(writer, &Frame::Item { seq: *seq, payload })?;
        }
    }
    Ok(())
}

fn push_worker<T>(
    addr: SocketAddr,
    client: String,
    cfg: NetConfig,
    rx: crossbeam_channel::Receiver<T>,
    state: Arc<PushState>,
) where
    T: Clone + Send + Serialize + Deserialize + TraceCarrier + BinPayload + 'static,
{
    let window = cfg.window.max(1);
    // Proto-3 scratch buffers, reused across batches and reconnects.
    let mut enc = BinEncoder::new();
    let mut backoff = Backoff::new(cfg.retry);
    // Each entry carries its last transmission instant, so an ack's
    // round-trip is measured against the send (or resend) it answers.
    let mut unacked: VecDeque<(u64, T, Instant)> = VecDeque::new();
    let mut next_seq: u64 = 1;
    let mut last_acked: u64 = 0;
    let mut senders_gone = false;

    let ack_up_to = |up_to: u64,
                     unacked: &mut VecDeque<(u64, T, Instant)>,
                     last_acked: &mut u64,
                     state: &PushState| {
        while unacked.front().is_some_and(|(seq, _, _)| *seq <= up_to) {
            if let Some((_, _, sent_at)) = unacked.pop_front() {
                sdci_obs::static_metric!(histogram, "sdci_net_ack_rtt_seconds")
                    .observe_duration(sent_at.elapsed());
            }
            state.pending.fetch_sub(1, Ordering::Relaxed);
            state.acked.fetch_add(1, Ordering::Relaxed);
        }
        if up_to > *last_acked {
            *last_acked = up_to;
        }
    };

    'reconnect: loop {
        // `senders_gone` is only set once the queue reported
        // Disconnected, which implies it was empty — so this is the
        // all-delivered exit.
        if senders_gone && unacked.is_empty() {
            return;
        }
        let Ok(stream) = cfg.connect(addr) else {
            backoff.sleep_after_failure(Duration::ZERO, cfg.liveness);
            continue;
        };
        let session = Instant::now();
        let _ = stream.set_nodelay(true);
        if stream.set_read_timeout(Some(cfg.heartbeat)).is_err() {
            backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
            continue;
        }
        let (send_faults, recv_faults) = conn_faults(&cfg);
        let mut writer = match stream.try_clone() {
            Ok(w) => FaultedWriter::new(w, send_faults),
            Err(_) => {
                backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
                continue;
            }
        };
        // Timeout-tolerant reads: the heartbeat read timeout must not
        // desynchronize the stream when it fires mid-frame.
        let mut reader = FrameReader::with_faults(stream, recv_faults);
        let hello = Frame::<T>::HelloPush {
            client: client.clone(),
            resume_after: last_acked,
            proto: (cfg.proto >= 2).then_some(cfg.proto),
        };
        if write_msg(&mut writer, &hello).is_err() {
            backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
            continue;
        }
        // The server replies with its own high-water mark, which may be
        // ahead of ours (acks lost with the previous connection), and —
        // on proto ≥ 2 servers — its protocol version.
        let hello_sent = Instant::now();
        let (server_mark, server_proto) = loop {
            match reader.read_msg::<Frame<T>>() {
                Ok(Frame::Ack { up_to, proto }) => break (up_to, proto.unwrap_or(1)),
                Ok(_) => {}
                Err(e) if timed_out(&e) => {
                    if hello_sent.elapsed() > cfg.liveness {
                        backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
                        continue 'reconnect;
                    }
                }
                Err(_) => {
                    backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
                    continue 'reconnect;
                }
            }
        };
        // Effective session version: batch only when *both* ends speak
        // proto ≥ 2 — a proto-1 server would kill the connection on an
        // unknown `ItemBatch` variant and the resends would livelock.
        let batched = cfg.proto.min(server_proto) >= 2 && cfg.max_batch > 1;
        let max_batch = if batched { cfg.max_batch } else { 1 };
        // Trace context rides the wire only on proto-≥2 sessions; a
        // proto-1 peer predates the field, so the sender strips it and
        // the trace truncates at this hop instead of erroring.
        let carry_ctx = cfg.proto.min(server_proto) >= 2;
        // Binary hot-path frames only when *both* ends speak proto ≥ 3
        // (the greeting `Ack` announced the server's version); older
        // peers keep receiving the JSON `ItemBatch` they understand.
        let binary = batched && cfg.proto.min(server_proto) >= 3;
        if next_seq == 1 {
            // First contact of a fresh pusher process: nothing has been
            // sequenced locally yet. A nonzero server mark then belongs
            // to a previous incarnation of this client identity — adopt
            // it and number upward from there, rather than starting at
            // 1 and having every new item discarded (and still acked!)
            // as a duplicate of the old incarnation's.
            next_seq = server_mark + 1;
            last_acked = server_mark;
        } else {
            ack_up_to(server_mark, &mut unacked, &mut last_acked, &state);
        }
        // Re-send everything the server has not seen.
        if resend_window(&mut writer, &mut enc, &mut unacked, batched, binary, max_batch, carry_ctx)
            .is_err()
        {
            backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
            continue 'reconnect;
        }
        if state.connections.fetch_add(1, Ordering::Relaxed) > 0 {
            sdci_obs::static_metric!(counter, "sdci_net_pusher_reconnects_total").inc();
        }
        let mut last_write = Instant::now();
        let mut last_traffic = Instant::now();
        // An item taken out of the queue by the idle wait, fed back
        // into the next fill so it can coalesce with whatever arrived
        // behind it.
        let mut carry: Option<T> = None;
        loop {
            // Fill phase: coalesce whatever is already queued, bounded
            // by the free send window and the per-frame batch cap.
            let mut batch: Vec<T> = Vec::new();
            let budget = window.saturating_sub(unacked.len()).min(max_batch);
            if let Some(item) = carry.take() {
                batch.push(item);
            }
            while batch.len() < budget {
                match rx.try_recv() {
                    Ok(item) => batch.push(item),
                    Err(crossbeam_channel::TryRecvError::Empty) => break,
                    Err(crossbeam_channel::TryRecvError::Disconnected) => {
                        senders_gone = true;
                        break;
                    }
                }
            }
            // Adaptive flush: a partially filled batch waits up to the
            // flush deadline for stragglers, so a trickle still
            // coalesces without adding more than ~flush_interval of
            // latency. A full batch (or a full window) flushes at once.
            if batched && !batch.is_empty() && batch.len() < budget && !senders_gone {
                let deadline = Instant::now() + cfg.flush_interval;
                loop {
                    let now = Instant::now();
                    if now >= deadline || batch.len() >= budget {
                        break;
                    }
                    match rx.recv_timeout(deadline - now) {
                        Ok(item) => batch.push(item),
                        Err(crossbeam_channel::RecvTimeoutError::Timeout) => break,
                        Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                            senders_gone = true;
                            break;
                        }
                    }
                }
            }
            if !batch.is_empty() {
                let first_seq = next_seq;
                let now = Instant::now();
                for item in &batch {
                    unacked.push_back((next_seq, item.clone(), now));
                    next_seq += 1;
                }
                if batched {
                    let reason = if batch.len() >= budget { "size" } else { "deadline" };
                    sdci_obs::registry()
                        .counter_with("sdci_net_batch_flush_total", &[("reason", reason)])
                        .inc();
                    // The histogram's base unit is seconds; recording
                    // `len` seconds as nanoseconds makes the exported
                    // values read directly as batch sizes.
                    sdci_obs::static_metric!(histogram, "sdci_net_batch_size")
                        .observe_ns(batch.len() as u64 * 1_000_000_000);
                }
                // A lone item still travels as a plain `Item` — same
                // bytes as proto 1, and nothing to split.
                let ok = if batch.len() == 1 {
                    let mut payload = batch.pop().expect("batch has one item");
                    if !carry_ctx {
                        // See `resend_window`: a proto-1 session drops
                        // context at the wire (the unacked copy keeps it).
                        payload.set_trace_context(None);
                    }
                    write_msg(&mut writer, &Frame::Item { seq: first_seq, payload }).is_ok()
                } else {
                    // The batch frame carries the first sampled event's
                    // context re-parented under a send span, so the
                    // receive side can mark the network hop itself.
                    let carried =
                        batch.iter().find_map(|i| i.trace_context().filter(|c| c.sampled));
                    let mut send_span = carried.map(|t| {
                        sdci_obs::trace::child_of(t.trace_id, t.parent_span_id, "net.push.send")
                    });
                    if let Some(span) = send_span.as_mut() {
                        span.set_detail(format!("{} items", batch.len()));
                    }
                    let frame_trace = match send_span.as_ref().and_then(|s| s.context()) {
                        Some(sc) => Some(TraceContext::sampled(sc.trace_id, sc.span_id)),
                        // Tracing disabled in this process: forward the
                        // carried context unchanged.
                        None => carried,
                    };
                    if binary {
                        write_item_batch_bin(&mut writer, &mut enc, first_seq, &batch, frame_trace)
                            .is_ok()
                    } else {
                        write_item_batch_traced(&mut writer, first_seq, &batch, frame_trace).is_ok()
                    }
                };
                if !ok {
                    backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
                    continue 'reconnect;
                }
                last_write = Instant::now();
            }
            if unacked.is_empty() {
                if senders_gone {
                    let _ = write_msg(&mut writer, &Frame::<T>::Fin);
                    return;
                }
                // Idle: wait for new items, pinging to stay alive. The
                // item is carried into the next fill phase rather than
                // written here, so it can still form a batch.
                match rx.recv_timeout(cfg.heartbeat) {
                    Ok(item) => carry = Some(item),
                    Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                        if last_write.elapsed() >= cfg.heartbeat {
                            if write_msg(&mut writer, &Frame::<T>::Ping).is_err() {
                                backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
                                continue 'reconnect;
                            }
                            last_write = Instant::now();
                        }
                    }
                    Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                        senders_gone = true;
                    }
                }
            } else {
                // Window has items in flight: wait for acks, pinging to
                // elicit one when the link goes quiet (the server
                // re-acks every ping), and reconnecting — which re-sends
                // the window — once nothing has been heard for a
                // liveness interval. Without the liveness check a silent
                // partition (no RST/FIN) would hang the lossless leg
                // forever.
                match reader.read_msg::<Frame<T>>() {
                    Ok(Frame::Ack { up_to, proto: _ }) => {
                        last_traffic = Instant::now();
                        ack_up_to(up_to, &mut unacked, &mut last_acked, &state);
                    }
                    Ok(Frame::Nack { expected }) => {
                        last_traffic = Instant::now();
                        // Frames vanished mid-stream: everything before
                        // `expected` landed, everything from it on must
                        // re-ship. Rewind and retransmit on this very
                        // connection instead of waiting out liveness.
                        ack_up_to(
                            expected.saturating_sub(1),
                            &mut unacked,
                            &mut last_acked,
                            &state,
                        );
                        state.rewinds.fetch_add(1, Ordering::Relaxed);
                        sdci_obs::static_metric!(counter, "sdci_net_push_fast_rewinds_total").inc();
                        if resend_window(
                            &mut writer,
                            &mut enc,
                            &mut unacked,
                            batched,
                            binary,
                            max_batch,
                            carry_ctx,
                        )
                        .is_err()
                        {
                            backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
                            continue 'reconnect;
                        }
                        last_write = Instant::now();
                    }
                    Ok(_) => last_traffic = Instant::now(),
                    Err(e) if timed_out(&e) => {
                        if last_traffic.elapsed() > cfg.liveness {
                            backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
                            continue 'reconnect;
                        }
                        if last_write.elapsed() >= cfg.heartbeat {
                            if write_msg(&mut writer, &Frame::<T>::Ping).is_err() {
                                backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
                                continue 'reconnect;
                            }
                            last_write = Instant::now();
                        }
                    }
                    Err(_) => {
                        backoff.sleep_after_failure(session.elapsed(), cfg.liveness);
                        continue 'reconnect;
                    }
                }
            }
        }
    }
}
