//! Enforcement of a [`FaultPlan`] at the conn/wire boundary.
//!
//! Every sdci-net endpoint funnels its outbound frames through a
//! [`FaultedWriter`] and its inbound frames through a
//! [`FrameReader`](crate::wire::FrameReader) built with
//! `with_faults` — so TcpPush, TcpPublisher, TcpSubscriber, the
//! accept-side handlers, StoreServer, and RemoteStore all inherit the
//! schedule installed on their [`NetConfig`] without any per-endpoint
//! logic.
//!
//! The write side exploits an invariant of the wire module: every frame
//! is written as `write_all(header)`, `write_all(body)`, `flush()` —
//! exactly one `flush` per frame. `FaultedWriter` therefore buffers
//! bytes until `flush` and applies one fault decision per flush,
//! keeping injected faults aligned to frame boundaries so a *dropped*
//! frame never desynchronizes the length-prefixed stream (that is what
//! *truncate* is for).

use crate::conn::NetConfig;
use sdci_faults::{crash_point, Direction, FrameFault, StreamFaults};
use std::io::{self, Write};
use std::thread::JoinHandle;

/// A frame-buffering writer that applies one send-side fault decision
/// per flushed frame. With no fault stream installed it is a transparent
/// pass-through (no buffering, no copies).
pub struct FaultedWriter<W: Write> {
    inner: W,
    faults: Option<StreamFaults>,
    buf: Vec<u8>,
    /// Set after an injected truncation: the stream is intentionally
    /// corrupt, and every later write must fail like a dead socket.
    dead: bool,
}

impl<W: Write> std::fmt::Debug for FaultedWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultedWriter")
            .field("faulted", &self.faults.is_some())
            .field("buffered", &self.buf.len())
            .finish()
    }
}

impl<W: Write> FaultedWriter<W> {
    /// Wraps `inner`; `faults: None` means clean pass-through.
    pub fn new(inner: W, faults: Option<StreamFaults>) -> Self {
        FaultedWriter { inner, faults, buf: Vec::new(), dead: false }
    }

    /// The wrapped stream (e.g. to `try_clone` a TCP read half).
    pub fn get_ref(&self) -> &W {
        &self.inner
    }
}

impl<W: Write> Write for FaultedWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.faults.is_none() {
            return self.inner.write(buf);
        }
        if self.dead {
            return Err(injected_dead());
        }
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    /// Clean connections pass vectored writes straight through (one
    /// `writev` for a proto-3 header + body); faulted ones buffer every
    /// slice so the whole frame still draws a single fault decision at
    /// flush time.
    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        if self.faults.is_none() {
            return self.inner.write_vectored(bufs);
        }
        if self.dead {
            return Err(injected_dead());
        }
        let mut n = 0;
        for buf in bufs {
            self.buf.extend_from_slice(buf);
            n += buf.len();
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        let Some(faults) = self.faults.as_mut() else {
            return self.inner.flush();
        };
        if self.dead {
            return Err(injected_dead());
        }
        let frame = std::mem::take(&mut self.buf);
        if frame.is_empty() {
            return self.inner.flush();
        }
        if faults.partitioned() {
            // Black hole: the frame vanishes but the connection looks
            // alive. Liveness windows, not write errors, must notice.
            record_fault("send", "partition");
            return Ok(());
        }
        match faults.decide(Direction::Send) {
            FrameFault::Deliver => {
                self.inner.write_all(&frame)?;
                self.inner.flush()
            }
            FrameFault::Drop => {
                record_fault("send", "drop");
                Ok(())
            }
            FrameFault::Duplicate => {
                record_fault("send", "duplicate");
                self.inner.write_all(&frame)?;
                self.inner.write_all(&frame)?;
                self.inner.flush()
            }
            FrameFault::Delay(dur) => {
                record_fault("send", "delay");
                std::thread::sleep(dur);
                self.inner.write_all(&frame)?;
                self.inner.flush()
            }
            FrameFault::Truncate => {
                record_fault("send", "truncate");
                // Half a frame hits the wire, then the connection dies:
                // the peer sees a length prefix whose body never
                // completes and must recover by reconnecting.
                let _ = self.inner.write_all(&frame[..frame.len() / 2]);
                let _ = self.inner.flush();
                self.dead = true;
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected fault: frame truncated",
                ))
            }
        }
    }
}

fn injected_dead() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "injected fault: connection killed by truncation")
}

pub(crate) fn record_fault(dir: &str, kind: &str) {
    sdci_obs::registry()
        .counter_with("sdci_faults_injected_total", &[("dir", dir), ("kind", kind)])
        .inc();
}

/// Opens the per-connection send/recv fault streams for one accepted or
/// dialed connection (two independent streams so each direction's
/// decision sequence is self-contained).
pub(crate) fn conn_faults(cfg: &NetConfig) -> (Option<StreamFaults>, Option<StreamFaults>) {
    match &cfg.faults {
        Some(plan) => (Some(plan.stream()), Some(plan.stream())),
        None => (None, None),
    }
}

/// Spawns a named worker thread, routed through a `sdci-faults` fail
/// point so tests can inject the EAGAIN-style spawn failures that are
/// nearly impossible to provoke for real.
///
/// # Errors
///
/// Returns the armed fail-point error or the real `Builder::spawn`
/// failure; callers on accept paths drop the connection and keep
/// accepting, callers on bind paths propagate.
pub(crate) fn spawn_worker<F>(name: String, fail_point: &str, f: F) -> io::Result<JoinHandle<()>>
where
    F: FnOnce() + Send + 'static,
{
    crash_point(fail_point)?;
    std::thread::Builder::new().name(name).spawn(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdci_faults::FaultPlan;
    use std::sync::Arc;

    fn plan(spec: &str) -> Arc<FaultPlan> {
        Arc::new(FaultPlan::parse(spec).unwrap())
    }

    fn write_frames(writer: &mut FaultedWriter<Vec<u8>>, n: usize) -> Vec<io::Result<()>> {
        (0..n)
            .map(|i| {
                let body = format!("frame-{i}");
                writer.write_all(&(body.len() as u32).to_be_bytes())?;
                writer.write_all(body.as_bytes())?;
                writer.flush()
            })
            .collect()
    }

    #[test]
    fn clean_writer_is_pass_through() {
        let mut w = FaultedWriter::new(Vec::new(), None);
        assert!(write_frames(&mut w, 3).iter().all(|r| r.is_ok()));
        assert!(!w.get_ref().is_empty());
    }

    #[test]
    fn drop_all_writes_nothing_but_reports_success() {
        let mut w = FaultedWriter::new(Vec::new(), Some(plan("seed=1,send.drop=1").stream()));
        assert!(write_frames(&mut w, 5).iter().all(|r| r.is_ok()));
        assert!(w.get_ref().is_empty(), "dropped frames must not reach the wire");
    }

    #[test]
    fn duplicate_all_doubles_the_bytes() {
        let mut clean = FaultedWriter::new(Vec::new(), None);
        write_frames(&mut clean, 2).into_iter().for_each(|r| r.unwrap());
        let mut dup = FaultedWriter::new(Vec::new(), Some(plan("seed=1,send.dup=1").stream()));
        write_frames(&mut dup, 2).into_iter().for_each(|r| r.unwrap());
        assert_eq!(dup.get_ref().len(), 2 * clean.get_ref().len());
    }

    #[test]
    fn truncate_emits_partial_frame_and_kills_the_writer() {
        let mut w = FaultedWriter::new(Vec::new(), Some(plan("seed=1,send.trunc=1").stream()));
        let results = write_frames(&mut w, 2);
        let first = results[0].as_ref().unwrap_err();
        assert_eq!(first.kind(), io::ErrorKind::ConnectionReset);
        let second = results[1].as_ref().unwrap_err();
        assert_eq!(second.kind(), io::ErrorKind::BrokenPipe);
        let emitted = w.get_ref().len();
        assert!(emitted > 0 && emitted < 11, "half of one 11-byte frame, got {emitted}");
    }

    #[test]
    fn spawn_worker_surfaces_armed_fail_point() {
        sdci_faults::arm("test.net.spawn", 1, sdci_faults::CrashMode::Error);
        let err = spawn_worker("t".into(), "test.net.spawn", || {}).unwrap_err();
        assert!(err.to_string().contains("test.net.spawn"));
        let handle = spawn_worker("t".into(), "test.net.spawn", || {}).unwrap();
        handle.join().unwrap();
    }
}
