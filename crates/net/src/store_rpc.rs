//! A minimal query RPC over the Aggregator's [`EventStore`].
//!
//! The in-process consumer backfills gaps by querying the store through
//! a shared [`SharedStore`](sdci_core::SharedStore) handle. A remote
//! consumer gets the same
//! capability from [`RemoteStore`], a read-only
//! [`sdci_core::EventBackend`] that round-trips a [`StoreRpc::Query`]
//! to the Aggregator process's [`StoreServer`]; the
//! [`sdci_core::StoreReader`] view follows from the blanket impl.
//!
//! The protocol is deliberately tiny: one request frame, one response
//! frame, same length-prefixed JSON framing as the rest of sdci-net.
//! Failure semantics follow `StoreReader`'s contract — a query that
//! cannot be answered returns an empty slice, and the consumer simply
//! retries at the next heartbeat-detected gap.
//!
//! [`EventStore`]: sdci_core::EventStore

use crate::conn::NetConfig;
use crate::faulted::{conn_faults, spawn_worker, FaultedWriter};
use crate::wire::{write_msg, FrameReader};
use sdci_core::{EventBackend, SequencedEvent, StoreError, StoreQuery, StoreReader};
use serde::{Deserialize, Serialize};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One store-RPC message; requests and responses share the enum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoreRpc {
    /// Consumer → server: run this query against the store.
    Query {
        /// The query to run.
        query: StoreQuery,
        /// Caller's trace context, when the query runs under a sampled
        /// span — the server parents its `store_rpc.serve` span under
        /// it. Old peers ignore the extra key / read a missing one as
        /// `None`, so mixed versions interoperate (the trace simply
        /// truncates at the hop).
        trace: Option<sdci_types::TraceContext>,
        /// The client's wire-protocol version, announced per request
        /// (the store RPC has no handshake). A server at proto ≥ 3
        /// answers a `Some(p >= 3)` query with a binary `Batch`; a
        /// missing or older announcement gets JSON. Same
        /// unknown-key/missing-key tolerance as `trace`, so mixed
        /// versions interoperate.
        proto: Option<u32>,
    },
    /// Server → consumer: the matching events, in sequence order.
    Batch {
        /// Query results.
        events: Vec<SequencedEvent>,
    },
    /// Liveness probe; the server echoes it.
    Ping,
}

/// Only the bulky reply leg has a binary form: `Batch` travels as a
/// proto-3 binary frame when the query announced a proto-3 peer, while
/// the tiny `Query`/`Ping` control frames stay JSON at every version.
impl crate::wire::BinFrame for StoreRpc {
    fn encode_bin(&self, buf: &mut Vec<u8>) -> bool {
        match self {
            StoreRpc::Batch { events } => {
                crate::wire::bin_header(buf, crate::wire::BIN_KIND_STORE_BATCH, None);
                crate::wire::bin_put_payloads(buf, events);
                true
            }
            _ => false,
        }
    }

    fn decode_bin(body: &[u8]) -> std::io::Result<Self> {
        let mut r = sdci_types::BinReader::new(body);
        let (kind, trace) = crate::wire::bin_read_header(&mut r)?;
        if kind != crate::wire::BIN_KIND_STORE_BATCH {
            return Err(crate::wire::invalid(format!("unknown binary store-RPC kind {kind}")));
        }
        if trace.is_some() {
            return Err(crate::wire::invalid("store-RPC batch replies carry no trace section"));
        }
        let events = crate::wire::bin_read_payloads(&mut r)?;
        if !r.is_empty() {
            return Err(crate::wire::invalid(format!(
                "binary store-RPC frame has {} trailing bytes",
                r.remaining()
            )));
        }
        Ok(StoreRpc::Batch { events })
    }
}

/// Serves [`StoreRpc`] queries against any [`StoreReader`] — a local
/// [`SharedStore`](sdci_core::SharedStore) in the single-aggregator
/// deployment, or a [`ScatterStore`](crate::cluster::ScatterStore)
/// fronting a sharded tier.
pub struct StoreServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
    queries: Arc<AtomicU64>,
}

impl std::fmt::Debug for StoreServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreServer").field("addr", &self.addr).finish()
    }
}

impl StoreServer {
    /// Binds `addr` and answers queries against `store`.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure — including a failure to
    /// spawn the accept thread (a server that cannot accept is not
    /// bound, so `bind` reports it instead of panicking the process).
    pub fn bind<R: StoreReader + Clone + Sync>(
        addr: impl ToSocketAddrs,
        store: R,
        cfg: NetConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let queries = Arc::new(AtomicU64::new(0));
        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let queries = Arc::clone(&queries);
            spawn_worker(
                format!("sdci-net-store-{}", addr.port()),
                "net.store_rpc.spawn_accept",
                move || store_accept_loop(listener, store, cfg, stop, conns, queries),
            )?
        };
        Ok(StoreServer { addr, stop, accept: Some(accept), conns, queries })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queries answered so far.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Stops accepting and joins every connection thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        let handles: Vec<JoinHandle<()>> = self.conns.lock().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

impl Drop for StoreServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

fn store_accept_loop<R: StoreReader + Clone + Sync>(
    listener: TcpListener,
    store: R,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
    conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
    queries: Arc<AtomicU64>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let store = store.clone();
                let cfg = cfg.clone();
                let stop = Arc::clone(&stop);
                let queries = Arc::clone(&queries);
                let spawned = spawn_worker(
                    "sdci-net-store-conn".into(),
                    "net.store_rpc.spawn_conn",
                    move || serve_store_client(stream, store, cfg, stop, queries),
                );
                match spawned {
                    Ok(handle) => {
                        let mut guard = conns.lock();
                        guard.retain(|h| !h.is_finished());
                        guard.push(handle);
                    }
                    Err(e) => {
                        // A transient spawn failure (EAGAIN) costs one
                        // connection, not the whole aggregator: the
                        // stream drops (the peer reconnects) and the
                        // accept loop keeps going.
                        sdci_obs::error!("store conn thread spawn failed; dropping connection"; peer = peer, error = e.to_string());
                        sdci_obs::static_metric!(counter, "sdci_net_spawn_failures_total").inc();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_store_client<R: StoreReader>(
    stream: TcpStream,
    store: R,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
    queries: Arc<AtomicU64>,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(cfg.heartbeat)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    // Timeout-tolerant reads: the heartbeat read timeout must not
    // desynchronize the stream when it fires mid-frame.
    let (send_faults, recv_faults) = conn_faults(&cfg);
    let mut reader = FrameReader::with_faults(read_half, recv_faults);
    let mut writer = FaultedWriter::new(stream, send_faults);
    // Per-connection scratch for binary replies; reused across queries.
    let mut enc = crate::wire::BinEncoder::new();
    // `stop` is checked every iteration so a chatty client cannot pin
    // the handler past shutdown.
    while !stop.load(Ordering::Relaxed) {
        match reader.read_msg::<StoreRpc>() {
            Ok(StoreRpc::Query { query, trace, proto }) => {
                // The serve span becomes the thread's current context,
                // so the store middleware's own spans (cache hit/miss,
                // segment scan) nest under it without plumbing.
                let mut serve_span = trace.filter(|t| t.sampled).map(|t| {
                    sdci_obs::trace::child_of(t.trace_id, t.parent_span_id, "store_rpc.serve")
                });
                let events = store.query(&query);
                if let Some(span) = serve_span.as_mut() {
                    span.set_detail(format!("{} events", events.len()));
                }
                drop(serve_span);
                queries.fetch_add(1, Ordering::Relaxed);
                // Reply-path crash point: the query has run but the
                // reply has not been written. Error mode costs this one
                // connection (the client redials and retries); abort
                // mode kills the process mid-reply for the chaos
                // harness's restart/re-query coverage.
                if sdci_faults::crash_point("net.store_rpc.reply").is_err() {
                    return;
                }
                // Binary replies only when *both* sides are at proto 3:
                // the query's announcement covers the client, `cfg`
                // covers this server.
                let reply = StoreRpc::Batch { events };
                let binary = proto.is_some_and(|p| p.min(cfg.proto) >= 3);
                let sent = if binary {
                    crate::wire::write_msg_bin(&mut writer, &mut enc, &reply)
                } else {
                    write_msg(&mut writer, &reply)
                };
                if sent.is_err() {
                    return;
                }
            }
            Ok(StoreRpc::Ping) => {
                if write_msg(&mut writer, &StoreRpc::Ping).is_err() {
                    return;
                }
            }
            Ok(StoreRpc::Batch { .. }) => {} // nonsensical from a client; ignore
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Store clients are request/response; idleness is fine.
            }
            Err(_) => return,
        }
    }
}

/// Non-`Batch` frames tolerated per round trip before the reply stream
/// is declared garbage. One in-flight `Ping` echo is legitimate; a peer
/// streaming junk must not wedge the consumer forever.
const MAX_STRAY_REPLIES: u32 = 8;

/// Whether `events` is a plausible reply to `query`: every event
/// satisfies the query's constraints, the batch respects its limit, and
/// sequence numbers never descend (every store answers in seq order,
/// but a scatter front merges shards with *independent* seq spaces, so
/// a merged reply may repeat a seq — strict ascent would reject it).
/// The store RPC has no request ids, so this range check is the
/// reply-correlation mechanism: a stale reply duplicated by a faulted
/// link fails it (its events predate the new query's `after_seq`) and
/// is skipped rather than delivered as the answer to the wrong query.
/// An empty batch is always plausible — it is what a rotated-out range
/// legitimately returns, and the consumer's bounded retry already
/// treats it as non-authoritative.
fn batch_answers(query: &StoreQuery, events: &[SequencedEvent]) -> bool {
    if query.limit > 0 && events.len() > query.limit {
        return false;
    }
    events.iter().all(|e| query.matches(e)) && events.windows(2).all(|w| w[0].seq <= w[1].seq)
}

/// An established store-RPC connection: faulted write half + resumable
/// read half.
struct StoreConn {
    writer: FaultedWriter<TcpStream>,
    reader: FrameReader<TcpStream>,
}

/// A [`StoreReader`] that queries a remote [`StoreServer`].
///
/// The connection is lazy and cached; a failed round trip drops it,
/// retries once on a fresh connection, and then gives up with an empty
/// result — the consumer's backfill loop will simply query again.
///
/// Connects are bounded by [`NetConfig::connect_timeout`] and happen
/// *outside* the connection cache's lock, so one black-holed aggregator
/// address cannot stall every concurrent querier behind one SYN that
/// the kernel retries for minutes.
pub struct RemoteStore {
    addr: SocketAddr,
    cfg: NetConfig,
    conn: parking_lot::Mutex<Option<StoreConn>>,
    failures: AtomicU64,
    connect_failures: AtomicU64,
}

impl std::fmt::Debug for RemoteStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteStore").field("addr", &self.addr).finish()
    }
}

impl RemoteStore {
    /// A reader for the store served at `addr`. Does not connect until
    /// the first query.
    pub fn connect(addr: SocketAddr, cfg: NetConfig) -> Self {
        RemoteStore {
            addr,
            cfg,
            conn: parking_lot::Mutex::new(None),
            failures: AtomicU64::new(0),
            connect_failures: AtomicU64::new(0),
        }
    }

    /// Queries that exhausted their retry and returned empty.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Connection attempts that failed or timed out.
    pub fn connect_failures(&self) -> u64 {
        self.connect_failures.load(Ordering::Relaxed)
    }

    /// Dials the server with the configured connect timeout. Never
    /// called with the cache lock held.
    fn open(&self) -> Option<StoreConn> {
        match self.cfg.connect(self.addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                // The heartbeat tick bounds each read; round_trip's own
                // deadline bounds the whole exchange.
                let _ = stream.set_read_timeout(Some(self.cfg.heartbeat));
                let read_half = stream.try_clone().ok()?;
                let (send_faults, recv_faults) = conn_faults(&self.cfg);
                Some(StoreConn {
                    writer: FaultedWriter::new(stream, send_faults),
                    reader: FrameReader::with_faults(read_half, recv_faults),
                })
            }
            Err(e) => {
                self.connect_failures.fetch_add(1, Ordering::Relaxed);
                sdci_obs::static_metric!(counter, "sdci_net_store_connect_failures_total").inc();
                sdci_obs::debug!("store connect failed"; addr = self.addr, error = e.to_string());
                None
            }
        }
    }

    /// Runs `query` against the remote store, reporting failure instead
    /// of swallowing it — the error-aware twin of the [`StoreReader`]
    /// impl. A scatter-gather front-end uses this to attribute a failed
    /// leg to its shard; plain consumers keep the empty-on-failure
    /// contract via [`StoreReader::query`].
    ///
    /// # Errors
    ///
    /// Returns the last transport error once both attempts (cached
    /// connection, then a fresh dial) are exhausted.
    pub fn try_query(&self, query: &StoreQuery) -> std::io::Result<Vec<SequencedEvent>> {
        let mut last_err = None;
        for attempt in 0..2 {
            // Take the cached connection *out* of the lock: the slow
            // parts (connect, round trip, retry sleep) must not
            // serialize concurrent queriers behind one dead peer.
            let cached = self.conn.lock().take();
            let mut conn = match cached.or_else(|| self.open()) {
                Some(conn) => conn,
                None => {
                    if attempt == 0 {
                        std::thread::sleep(self.cfg.retry.base);
                    }
                    continue;
                }
            };
            // On error the stale connection is dropped and the next
            // attempt dials fresh.
            match self.round_trip(&mut conn, query) {
                Ok(events) => {
                    // Another querier may have cached its own fresh
                    // connection meanwhile; last one wins, the loser is
                    // simply closed.
                    *self.conn.lock() = Some(conn);
                    return Ok(events);
                }
                Err(e) => last_err = Some(e),
            }
        }
        self.failures.fetch_add(1, Ordering::Relaxed);
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                format!("store server {} is unreachable", self.addr),
            )
        }))
    }

    fn round_trip(
        &self,
        conn: &mut StoreConn,
        query: &StoreQuery,
    ) -> std::io::Result<Vec<SequencedEvent>> {
        // Carry the caller's sampled context (if any) so the server can
        // parent its serve span — the query leg of the distributed trace.
        let trace = sdci_obs::trace::current()
            .filter(|c| c.sampled)
            .map(|c| sdci_types::TraceContext::sampled(c.trace_id, c.span_id));
        let proto = (self.cfg.proto >= 3).then_some(self.cfg.proto);
        write_msg(&mut conn.writer, &StoreRpc::Query { query: query.clone(), trace, proto })?;
        let deadline = Instant::now() + self.cfg.liveness;
        let mut strays = 0u32;
        loop {
            match conn.reader.read_msg::<StoreRpc>() {
                Ok(StoreRpc::Batch { events }) if batch_answers(query, &events) => {
                    return Ok(events)
                }
                Ok(StoreRpc::Batch { .. }) => {
                    // A batch that cannot be an answer to *this* query —
                    // a faulted link replayed the reply to an earlier
                    // one. Requests and replies pair up strictly in
                    // order on this connection, so swallowing the stale
                    // frame and reading on re-aligns the stream; taking
                    // it at face value would hand the consumer events
                    // from the wrong range (surfacing as phantom loss
                    // or duplication in its gap accounting).
                    strays += 1;
                    if strays > MAX_STRAY_REPLIES {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "store reply stream flooded with stale Batch frames",
                        ));
                    }
                }
                Ok(_) => {
                    // A stray `Ping` echo is fine; an unbounded stream
                    // of non-`Batch` frames would wedge the consumer,
                    // so the tolerance is finite.
                    strays += 1;
                    if strays > MAX_STRAY_REPLIES {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "store reply stream flooded with non-Batch frames",
                        ));
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if Instant::now() >= deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "store query exceeded the liveness window",
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// The remote store is a read-only [`EventBackend`]: queries go over
/// the wire; writes are refused (events reach an aggregator's store
/// through the push pipeline, never through the query RPC); occupancy
/// (`stats`/`last_seq`/`len`) is unknowable from here and reports the
/// trait's zero defaults. The [`StoreReader`] view (empty result on
/// failure) arrives through the blanket impl.
impl EventBackend for RemoteStore {
    fn insert_batch(&self, _events: Vec<SequencedEvent>) -> Result<(), StoreError> {
        Err(StoreError::ReadOnly("RemoteStore"))
    }

    fn query(&self, query: &StoreQuery) -> Vec<SequencedEvent> {
        self.try_query(query).unwrap_or_default()
    }
}
