//! A minimal query RPC over the Aggregator's [`EventStore`].
//!
//! The in-process consumer backfills gaps by querying the store through
//! a shared [`SharedStore`](sdci_core::SharedStore) handle. A remote
//! consumer gets the same
//! capability from [`RemoteStore`], which implements
//! [`sdci_core::StoreReader`] by round-tripping a [`StoreRpc::Query`]
//! to the Aggregator process's [`StoreServer`].
//!
//! The protocol is deliberately tiny: one request frame, one response
//! frame, same length-prefixed JSON framing as the rest of sdci-net.
//! Failure semantics follow `StoreReader`'s contract — a query that
//! cannot be answered returns an empty slice, and the consumer simply
//! retries at the next heartbeat-detected gap.
//!
//! [`EventStore`]: sdci_core::EventStore

use crate::conn::NetConfig;
use crate::wire::{read_msg, write_msg, FrameReader};
use sdci_core::{SequencedEvent, SharedStore, StoreQuery, StoreReader};
use serde::{Deserialize, Serialize};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One store-RPC message; requests and responses share the enum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoreRpc {
    /// Consumer → server: run this query against the store.
    Query {
        /// The query to run.
        query: StoreQuery,
    },
    /// Server → consumer: the matching events, in sequence order.
    Batch {
        /// Query results.
        events: Vec<SequencedEvent>,
    },
    /// Liveness probe; the server echoes it.
    Ping,
}

/// Serves [`StoreRpc`] queries against a [`SharedStore`].
pub struct StoreServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
    queries: Arc<AtomicU64>,
}

impl std::fmt::Debug for StoreServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreServer").field("addr", &self.addr).finish()
    }
}

impl StoreServer {
    /// Binds `addr` and answers queries against `store`.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        store: SharedStore,
        cfg: NetConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let queries = Arc::new(AtomicU64::new(0));
        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let queries = Arc::clone(&queries);
            std::thread::Builder::new()
                .name(format!("sdci-net-store-{}", addr.port()))
                .spawn(move || store_accept_loop(listener, store, cfg, stop, conns, queries))
                .expect("spawn store accept thread")
        };
        Ok(StoreServer { addr, stop, accept: Some(accept), conns, queries })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queries answered so far.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Stops accepting and joins every connection thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        let handles: Vec<JoinHandle<()>> = self.conns.lock().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

impl Drop for StoreServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

fn store_accept_loop(
    listener: TcpListener,
    store: SharedStore,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
    conns: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
    queries: Arc<AtomicU64>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let store = Arc::clone(&store);
                let cfg = cfg.clone();
                let stop = Arc::clone(&stop);
                let queries = Arc::clone(&queries);
                let handle = std::thread::Builder::new()
                    .name("sdci-net-store-conn".into())
                    .spawn(move || serve_store_client(stream, store, cfg, stop, queries))
                    .expect("spawn store connection thread");
                let mut guard = conns.lock();
                guard.retain(|h| !h.is_finished());
                guard.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_store_client(
    stream: TcpStream,
    store: SharedStore,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
    queries: Arc<AtomicU64>,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(cfg.heartbeat)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    // Timeout-tolerant reads: the heartbeat read timeout must not
    // desynchronize the stream when it fires mid-frame.
    let mut reader = FrameReader::new(read_half);
    let mut writer = stream;
    // `stop` is checked every iteration so a chatty client cannot pin
    // the handler past shutdown.
    while !stop.load(Ordering::Relaxed) {
        match reader.read_msg::<StoreRpc>() {
            Ok(StoreRpc::Query { query }) => {
                let events = store.query(&query);
                queries.fetch_add(1, Ordering::Relaxed);
                if write_msg(&mut writer, &StoreRpc::Batch { events }).is_err() {
                    return;
                }
            }
            Ok(StoreRpc::Ping) => {
                if write_msg(&mut writer, &StoreRpc::Ping).is_err() {
                    return;
                }
            }
            Ok(StoreRpc::Batch { .. }) => {} // nonsensical from a client; ignore
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Store clients are request/response; idleness is fine.
            }
            Err(_) => return,
        }
    }
}

/// A [`StoreReader`] that queries a remote [`StoreServer`].
///
/// The connection is lazy and cached; a failed round trip drops it,
/// retries once on a fresh connection, and then gives up with an empty
/// result — the consumer's backfill loop will simply query again.
pub struct RemoteStore {
    addr: SocketAddr,
    cfg: NetConfig,
    conn: parking_lot::Mutex<Option<TcpStream>>,
    failures: AtomicU64,
}

impl std::fmt::Debug for RemoteStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteStore").field("addr", &self.addr).finish()
    }
}

impl RemoteStore {
    /// A reader for the store served at `addr`. Does not connect until
    /// the first query.
    pub fn connect(addr: SocketAddr, cfg: NetConfig) -> Self {
        RemoteStore { addr, cfg, conn: parking_lot::Mutex::new(None), failures: AtomicU64::new(0) }
    }

    /// Queries that exhausted their retry and returned empty.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    fn round_trip(
        &self,
        stream: &mut TcpStream,
        query: &StoreQuery,
    ) -> std::io::Result<Vec<SequencedEvent>> {
        write_msg(stream, &StoreRpc::Query { query: query.clone() })?;
        loop {
            match read_msg::<StoreRpc>(&mut &*stream)? {
                StoreRpc::Batch { events } => return Ok(events),
                _ => continue,
            }
        }
    }
}

impl StoreReader for RemoteStore {
    fn query(&self, query: &StoreQuery) -> Vec<SequencedEvent> {
        for _attempt in 0..2 {
            let mut guard = self.conn.lock();
            if guard.is_none() {
                *guard = TcpStream::connect(self.addr).ok().inspect(|s| {
                    let _ = s.set_nodelay(true);
                    let _ = s.set_read_timeout(Some(self.cfg.liveness));
                });
            }
            let Some(stream) = guard.as_mut() else {
                drop(guard);
                std::thread::sleep(self.cfg.retry.base);
                continue;
            };
            match self.round_trip(stream, query) {
                Ok(events) => return events,
                Err(_) => *guard = None, // stale connection; retry fresh
            }
        }
        self.failures.fetch_add(1, Ordering::Relaxed);
        Vec::new()
    }
}
