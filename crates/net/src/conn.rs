//! Connection supervision: reconnect backoff and liveness tuning.
//!
//! Every sdci-net client endpoint owns a background worker that keeps
//! its connection alive forever: connect, run, and on any error sleep a
//! jittered exponentially-growing delay and connect again. Servers
//! probe idle peers with `Ping` frames and declare a connection dead
//! when nothing arrives for a liveness window.

use rand::{rngs::StdRng, Rng, SeedableRng};
use sdci_faults::FaultPlan;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Reconnect backoff policy: delays grow `base`, `2*base`, `4*base`, …
/// capped at `max`, each multiplied by a random factor in `[0.5, 1.0)`
/// so a fleet of Collectors does not reconnect in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-retry delay.
    pub base: Duration,
    /// Ceiling on the un-jittered delay.
    pub max: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { base: Duration::from_millis(50), max: Duration::from_secs(2) }
    }
}

/// Tunables shared by all sdci-net endpoints.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Per-connection queue bound on the lossy PUB/SUB legs; when a
    /// subscriber (or the socket to it) falls this far behind, newer
    /// messages are shed — the same high-water-mark contract as the
    /// in-process broker.
    pub hwm: usize,
    /// Unacknowledged-item window on the lossless PUSH leg; the pusher
    /// blocks (backpressure) once this many items are in flight.
    pub window: usize,
    /// Reconnect backoff.
    pub retry: RetryPolicy,
    /// A side that has been idle this long sends a `Ping`.
    pub heartbeat: Duration,
    /// A connection that produced no traffic for this long is dead.
    pub liveness: Duration,
    /// Most payloads coalesced into one batched frame (proto ≥ 2).
    /// `1` disables batching without downgrading the protocol.
    pub max_batch: usize,
    /// How long a partially filled batch may wait for more payloads
    /// before it is flushed anyway (the adaptive-flush deadline).
    pub flush_interval: Duration,
    /// Wire protocol version this endpoint offers at the handshake
    /// ([`crate::WIRE_PROTO`]). Set to `1` to emulate a per-event-frame
    /// peer, e.g. in mixed-version tests.
    pub proto: u32,
    /// Bound on every blocking outbound `connect` — a black-holed peer
    /// address fails within this window instead of the kernel's
    /// minutes-long SYN retry budget.
    pub connect_timeout: Duration,
    /// Deterministic fault schedule enforced at the frame boundary of
    /// every connection this config opens or accepts; `None` (the
    /// default) is a clean wire.
    pub faults: Option<Arc<FaultPlan>>,
    /// Broker-side fan-out strategy: `true` (the default) encodes each
    /// delivered batch once per negotiated proto and shares the frozen
    /// frame bytes across all same-proto subscriber legs; `false`
    /// re-serializes per leg. The slow path exists only as the
    /// benchmark baseline — there is no behavioural difference.
    pub fanout_encode_once: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            hwm: 65_536,
            window: 1024,
            retry: RetryPolicy::default(),
            heartbeat: Duration::from_millis(100),
            liveness: Duration::from_secs(3),
            max_batch: 512,
            flush_interval: Duration::from_millis(1),
            proto: crate::WIRE_PROTO,
            connect_timeout: Duration::from_secs(1),
            faults: None,
            fanout_encode_once: true,
        }
    }
}

impl NetConfig {
    /// Returns this config with `plan` installed (noop plans are
    /// dropped so endpoints skip the fault wrappers entirely).
    #[must_use]
    pub fn with_faults(mut self, plan: Option<Arc<FaultPlan>>) -> Self {
        self.faults = plan.filter(|p| !p.is_noop());
        self
    }

    /// Opens an outbound connection bounded by
    /// [`NetConfig::connect_timeout`]. While the installed fault plan
    /// scripts a partition, the attempt fails like a black-holed SYN:
    /// a short stall, then `TimedOut`.
    ///
    /// # Errors
    ///
    /// Propagates the kernel connect failure, or `TimedOut` after the
    /// configured bound.
    pub fn connect(&self, addr: SocketAddr) -> io::Result<TcpStream> {
        if let Some(plan) = &self.faults {
            if plan.partitioned() {
                std::thread::sleep(self.connect_timeout.min(Duration::from_millis(20)));
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "injected partition: connect black-holed",
                ));
            }
        }
        TcpStream::connect_timeout(&addr, self.connect_timeout)
    }
}

/// Stateful jittered exponential backoff over a [`RetryPolicy`].
#[derive(Debug)]
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
    rng: StdRng,
}

impl Backoff {
    /// Creates a backoff at attempt zero. The jitter stream is seeded
    /// from wall-clock entropy so concurrent endpoints de-synchronize.
    pub fn new(policy: RetryPolicy) -> Self {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0x5DC1_0000, |d| d.subsec_nanos() as u64 ^ d.as_secs());
        Backoff { policy, attempt: 0, rng: StdRng::seed_from_u64(seed) }
    }

    /// The delay to sleep before the next connection attempt.
    pub fn next_delay(&mut self) -> Duration {
        let exp =
            self.policy.base.saturating_mul(1u32 << self.attempt.min(16)).min(self.policy.max);
        self.attempt = self.attempt.saturating_add(1);
        exp.mul_f64(self.rng.gen_range(0.5..1.0))
    }

    /// Resets after a successful connection: the next failure starts
    /// again from the base delay.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Records a failed connection attempt and sleeps the next delay.
    ///
    /// `session_lived` is how long the connection survived before it
    /// failed (`Duration::ZERO` when it never got past the handshake);
    /// a session that lived at least `healthy_after` proved the peer
    /// genuinely up, so the backoff restarts from the base delay.
    /// Gating the reset on session longevity — rather than resetting as
    /// soon as a connection is established — means a peer that accepts
    /// and immediately resets still drives the delay up instead of
    /// being hammered in a tight reconnect loop.
    pub fn sleep_after_failure(&mut self, session_lived: Duration, healthy_after: Duration) {
        if session_lived >= healthy_after {
            self.reset();
        }
        std::thread::sleep(self.next_delay());
    }

    /// Connection attempts failed since the last reset.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let policy =
            RetryPolicy { base: Duration::from_millis(100), max: Duration::from_millis(400) };
        let mut backoff = Backoff::new(policy);
        let delays: Vec<Duration> = (0..6).map(|_| backoff.next_delay()).collect();
        // Jitter scales into [0.5, 1.0) of the exponential envelope.
        assert!(delays[0] >= Duration::from_millis(50) && delays[0] < Duration::from_millis(100));
        assert!(delays[1] >= Duration::from_millis(100) && delays[1] < Duration::from_millis(200));
        for d in &delays[2..] {
            assert!(*d >= Duration::from_millis(200) && *d < Duration::from_millis(400));
        }
    }

    #[test]
    fn reset_returns_to_base() {
        let mut backoff = Backoff::new(RetryPolicy::default());
        for _ in 0..5 {
            backoff.next_delay();
        }
        assert_eq!(backoff.attempt(), 5);
        backoff.reset();
        assert_eq!(backoff.attempt(), 0);
        assert!(backoff.next_delay() < RetryPolicy::default().base);
    }

    #[test]
    fn failure_sleep_resets_only_after_a_long_session() {
        let policy = RetryPolicy { base: Duration::from_millis(1), max: Duration::from_millis(2) };
        let mut backoff = Backoff::new(policy);
        let healthy = Duration::from_millis(500);
        backoff.sleep_after_failure(Duration::ZERO, healthy);
        backoff.sleep_after_failure(Duration::from_millis(10), healthy);
        // Two short-lived failures: attempts accumulate.
        assert_eq!(backoff.attempt(), 2);
        // A session that outlived the health threshold resets first.
        backoff.sleep_after_failure(Duration::from_secs(1), healthy);
        assert_eq!(backoff.attempt(), 1);
    }

    #[test]
    fn extreme_attempts_do_not_overflow() {
        let mut backoff = Backoff::new(RetryPolicy {
            base: Duration::from_secs(1),
            max: Duration::from_secs(30),
        });
        for _ in 0..100 {
            assert!(backoff.next_delay() <= Duration::from_secs(30));
        }
    }
}
