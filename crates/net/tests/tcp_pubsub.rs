//! Loopback PUB/SUB integration: ordering, drain-on-shutdown, and the
//! lossy HWM contract over a real TCP connection.

use sdci_mq::transport::Subscribe;
use sdci_net::{NetConfig, RetryPolicy, TcpBroker, TcpPublisher, TcpSubscriber};
use std::time::Duration;

fn fast_cfg() -> NetConfig {
    NetConfig {
        hwm: 8192,
        window: 1024,
        retry: RetryPolicy { base: Duration::from_millis(10), max: Duration::from_millis(100) },
        heartbeat: Duration::from_millis(20),
        liveness: Duration::from_millis(500),
        ..NetConfig::default()
    }
}

/// Publishes probes until the subscription demonstrably reaches the
/// broker, so the lossy leg's setup race can't eat test messages.
fn wait_ready(publisher: &TcpPublisher<u64>, subscriber: &TcpSubscriber<u64>) {
    for _ in 0..1000 {
        publisher.publish("probe/x", u64::MAX);
        if subscriber.recv_timeout(Duration::from_millis(10)).is_some() {
            return;
        }
    }
    panic!("pub/sub loopback never became ready");
}

#[test]
fn events_round_trip_in_publish_order() {
    let cfg = fast_cfg();
    let broker = TcpBroker::<u64>::bind("127.0.0.1:0", 8192, cfg.clone()).unwrap();
    let addr = broker.local_addr();
    let subscriber = TcpSubscriber::<u64>::connect(addr, &["events/", "probe/"], cfg.clone());
    let publisher = TcpPublisher::<u64>::connect(addr, cfg);
    wait_ready(&publisher, &subscriber);

    const N: u64 = 500;
    for i in 0..N {
        publisher.publish("events/e", i);
    }
    let mut got = Vec::new();
    while got.len() < N as usize {
        let Some(msg) = subscriber.recv_timeout(Duration::from_secs(5)) else {
            panic!("timed out after {} of {N} events", got.len());
        };
        if msg.topic.starts_with("events/") {
            got.push(msg.payload);
        }
    }
    assert_eq!(got, (0..N).collect::<Vec<_>>(), "events must arrive in publish order");
    assert_eq!(subscriber.dropped(), 0);
    assert_eq!(publisher.dropped(), 0);
    broker.shutdown();
}

#[test]
fn shutdown_drains_queued_messages_to_subscribers() {
    let cfg = fast_cfg();
    let broker = TcpBroker::<u64>::bind("127.0.0.1:0", 8192, cfg.clone()).unwrap();
    let addr = broker.local_addr();
    let subscriber = TcpSubscriber::<u64>::connect(addr, &["events/", "probe/"], cfg.clone());
    let publisher = TcpPublisher::<u64>::connect(addr, cfg);
    wait_ready(&publisher, &subscriber);

    let before = broker.stats().messages_in;
    const N: u64 = 200;
    for i in 0..N {
        publisher.publish("events/e", i);
    }
    // Wait until the broker has actually ingested all N messages (the
    // publisher may coalesce them into fewer batch frames), then shut
    // down: the drain must still deliver every one of them.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while broker.stats().messages_in < before + N {
        assert!(std::time::Instant::now() < deadline, "broker never ingested the frames");
        std::thread::sleep(Duration::from_millis(5));
    }
    broker.shutdown();

    let mut got = 0;
    while got < N {
        let Some(msg) = subscriber.recv_timeout(Duration::from_secs(5)) else {
            panic!("shutdown lost queued messages: got {got} of {N}");
        };
        if msg.topic.starts_with("events/") {
            got += 1;
        }
    }
}

#[test]
fn slow_subscriber_sheds_at_hwm_instead_of_blocking_the_broker() {
    let mut cfg = fast_cfg();
    cfg.hwm = 8; // tiny client-side queue
    let broker = TcpBroker::<u64>::bind("127.0.0.1:0", 8192, cfg.clone()).unwrap();
    let addr = broker.local_addr();
    let subscriber = TcpSubscriber::<u64>::connect(addr, &["events/", "probe/"], cfg.clone());
    let publisher = TcpPublisher::<u64>::connect(addr, cfg);
    wait_ready(&publisher, &subscriber);

    // Nobody drains the subscriber: its bounded queue must fill and
    // newer deliveries must be shed, not pile up unboundedly.
    for i in 0..2000u64 {
        publisher.publish("events/e", i);
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while subscriber.dropped() == 0 {
        assert!(std::time::Instant::now() < deadline, "HWM shedding never engaged");
        std::thread::sleep(Duration::from_millis(5));
    }
    broker.shutdown();
}
