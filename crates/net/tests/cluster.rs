//! Sharded-tier integration at the net layer: the map service, the
//! collector-side router's drain-first cutover (including a shard
//! crash mid-cutover), and the scatter-gather store front.

use sdci_core::{EventStore, SequencedEvent, ShardMap, StoreQuery, StoreReader};
use sdci_mq::transport::Publish;
use sdci_net::{
    add_shard, fetch_map, MapServer, NetConfig, RetryPolicy, ScatterStore, ShardRouter,
    StoreServer, TcpPullServer,
};
use sdci_types::{ChangelogKind, EventKind, Fid, FileEvent, MdtIndex, SimTime};
use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn fast_cfg() -> NetConfig {
    NetConfig {
        hwm: 8192,
        window: 1024,
        retry: RetryPolicy { base: Duration::from_millis(10), max: Duration::from_millis(100) },
        heartbeat: Duration::from_millis(20),
        liveness: Duration::from_millis(500),
        ..NetConfig::default()
    }
}

fn fev(path: &str, i: u64) -> FileEvent {
    FileEvent {
        index: i,
        mdt: MdtIndex::new(0),
        changelog_kind: ChangelogKind::Create,
        kind: EventKind::Created,
        time: SimTime::from_secs(i),
        path: PathBuf::from(path),
        src_path: None,
        target: Fid::new(1, i as u32, 0),
        is_dir: false,
        extracted_unix_ns: None,
        trace: None,
    }
}

fn sev(seq: u64, path: &str) -> SequencedEvent {
    SequencedEvent { seq, event: fev(path, seq) }
}

/// Drains `pull` until `n` items arrived or it goes quiet, returning
/// the received paths in arrival order.
fn collect_paths(pull: &sdci_mq::pipe::Pull<FileEvent>, n: usize) -> Vec<PathBuf> {
    let mut got = Vec::new();
    while got.len() < n {
        match pull.recv_timeout(Duration::from_secs(2)) {
            Some(ev) => got.push(ev.path),
            None => break,
        }
    }
    got
}

#[test]
fn map_server_serves_and_bumps_the_map() {
    let cfg = fast_cfg();
    let initial = ShardMap::new(["127.0.0.1:7070"]);
    let srv = MapServer::bind("127.0.0.1:0", initial.clone(), cfg.clone()).unwrap();

    let fetched = fetch_map(srv.local_addr(), &cfg).unwrap();
    assert_eq!(fetched, initial);

    // AddShard is observed by the next GetMap from a *different*
    // connection — the server is the single writer.
    let bumped = add_shard(srv.local_addr(), "127.0.0.1:7080", &cfg).unwrap();
    assert_eq!(bumped.version(), 2);
    assert_eq!(bumped.shards().len(), 2);
    assert_eq!(bumped.shards()[1].id, 1);
    assert_eq!(fetch_map(srv.local_addr(), &cfg).unwrap(), bumped);
    assert_eq!(srv.map(), bumped);
    assert_eq!(srv.fetches(), 2);
    srv.shutdown();
}

#[test]
fn router_reroutes_after_a_version_bump_with_drain_ack() {
    let cfg = fast_cfg();
    let shard_a = TcpPullServer::<FileEvent>::bind("127.0.0.1:0", 4096, cfg.clone()).unwrap();
    let v1 = ShardMap::new([shard_a.local_addr().to_string()]);
    let router = ShardRouter::connect(v1.clone(), "col", cfg.clone()).unwrap();
    assert_eq!(router.map_version(), 1);

    // Round 1: a one-shard map routes every root to shard 0.
    let roots: Vec<String> = (0..16).map(|r| format!("/proj{r}")).collect();
    for (i, root) in roots.iter().enumerate() {
        router.publish("events/", fev(&format!("{root}/before"), i as u64));
    }
    assert!(router.drain(Duration::from_secs(10)));
    let pull_a = shard_a.pull();
    assert_eq!(collect_paths(&pull_a, roots.len()).len(), roots.len());

    // Cutover to a two-shard map. The drain must be acked (it is —
    // shard 0 is alive), after which the router routes by v2.
    let shard_b = TcpPullServer::<FileEvent>::bind("127.0.0.1:0", 4096, cfg.clone()).unwrap();
    let v2 = v1.with_shard(shard_b.local_addr().to_string());
    router.update_map(v2.clone(), Duration::from_secs(5)).unwrap();
    assert_eq!(router.map_version(), 2);
    assert_eq!(router.cutovers(), 1);
    // A stale (or equal) map is a no-op, not a re-cutover.
    router.update_map(v2.clone(), Duration::from_secs(5)).unwrap();
    assert_eq!(router.cutovers(), 1);

    // Round 2: live traffic re-routes — each root lands where v2 says.
    let mut expect_a = HashSet::new();
    let mut expect_b = HashSet::new();
    for (i, root) in roots.iter().enumerate() {
        let path = format!("{root}/after");
        let ev = fev(&path, 100 + i as u64);
        match v2.route_event(&ev).id {
            0 => expect_a.insert(PathBuf::from(&path)),
            _ => expect_b.insert(PathBuf::from(&path)),
        };
        router.publish("events/", ev);
    }
    assert!(!expect_b.is_empty(), "16 roots must split across 2 shards");
    assert!(router.drain(Duration::from_secs(10)));

    let got_a: HashSet<PathBuf> = collect_paths(&pull_a, expect_a.len()).into_iter().collect();
    let got_b: HashSet<PathBuf> =
        collect_paths(&shard_b.pull(), expect_b.len()).into_iter().collect();
    assert_eq!(got_a, expect_a, "shard 0 received off-map traffic");
    assert_eq!(got_b, expect_b, "shard 1 received off-map traffic");
    let routed: BTreeMap<_, _> = router.routed().into_iter().collect();
    assert_eq!(routed[&0], (roots.len() + expect_a.len()) as u64);
    assert_eq!(routed[&1], expect_b.len() as u64);
    shard_a.shutdown();
    shard_b.shutdown();
}

/// The chaos case the cutover protocol exists for: the old owner
/// crashes with pushes in flight, so the drain cannot complete and the
/// cutover must NOT be acked — the router keeps the old map. Once the
/// shard is back (same address, restored dedup marks), the retried
/// cutover drains, swaps, and nothing is lost or duplicated.
#[test]
fn shard_crash_mid_cutover_is_not_acked_and_the_retry_recovers() {
    let cfg = fast_cfg();
    let shard_a = TcpPullServer::<FileEvent>::bind("127.0.0.1:0", 4096, cfg.clone()).unwrap();
    let addr_a = shard_a.local_addr();
    let v1 = ShardMap::new([addr_a.to_string()]);
    let router = ShardRouter::connect(v1.clone(), "col", cfg.clone()).unwrap();

    // Round 1 is fully acked, so it can never be resent.
    for i in 0..20u64 {
        router.publish("events/", fev(&format!("/r{}/warm{i}", i % 4), i));
    }
    assert!(router.drain(Duration::from_secs(10)));
    let pull_a1 = shard_a.pull();
    assert_eq!(collect_paths(&pull_a1, 20).len(), 20);

    // Crash the shard, then keep publishing: round 2 sits unacked in
    // the router's pipe.
    let marks = shard_a.marks();
    shard_a.shutdown();
    let round2: Vec<String> = (0..15u64).map(|i| format!("/r{}/crash{i}", i % 4)).collect();
    for (i, path) in round2.iter().enumerate() {
        router.publish("events/", fev(path, 100 + i as u64));
    }

    // Mid-cutover: the old owner cannot drain, so the cutover is not
    // acked and the old map stays live.
    let shard_b = TcpPullServer::<FileEvent>::bind("127.0.0.1:0", 4096, cfg.clone()).unwrap();
    let v2 = v1.with_shard(shard_b.local_addr().to_string());
    let err = router.update_map(v2.clone(), Duration::from_millis(300)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    assert_eq!(router.map_version(), 1, "a failed cutover must not swap the map");
    assert_eq!(router.cutovers(), 0);

    // The shard restarts at the same address with its restored marks;
    // the supervised pipe reconnects and re-delivers round 2 exactly
    // once, after which the retried cutover is acked.
    let shard_a2 =
        TcpPullServer::<FileEvent>::bind_with_marks(addr_a, 4096, cfg.clone(), marks).unwrap();
    router.update_map(v2.clone(), Duration::from_secs(10)).unwrap();
    assert_eq!(router.map_version(), 2);

    // Round 3 routes by the new map.
    let mut expect_a: HashSet<PathBuf> = round2.iter().map(PathBuf::from).collect();
    let mut expect_b = HashSet::new();
    for i in 0..16u64 {
        let path = format!("/r{}/after{i}", i % 8);
        let ev = fev(&path, 200 + i);
        match v2.route_event(&ev).id {
            0 => expect_a.insert(PathBuf::from(&path)),
            _ => expect_b.insert(PathBuf::from(&path)),
        };
        router.publish("events/", ev);
    }
    assert!(!expect_b.is_empty(), "8 roots must split across 2 shards");
    assert!(router.drain(Duration::from_secs(10)));

    let got_a = collect_paths(&shard_a2.pull(), expect_a.len());
    let got_b = collect_paths(&shard_b.pull(), expect_b.len());
    assert_eq!(got_a.len(), expect_a.len(), "restarted shard lost or duplicated items");
    assert_eq!(got_a.iter().cloned().collect::<HashSet<_>>(), expect_a);
    assert_eq!(got_b.iter().cloned().collect::<HashSet<_>>(), expect_b);
    assert_eq!(shard_a2.stats().duplicates, 0, "restored marks must dedup the resend window");
    shard_a2.shutdown();
    shard_b.shutdown();
}

#[test]
fn scatter_store_merges_in_seq_order_and_degrades_on_shard_loss() {
    let cfg = fast_cfg();
    let store0 = {
        let s = EventStore::new(4096);
        for seq in 1..=6 {
            s.insert(sev(seq, &format!("/a/{seq}"))).unwrap();
        }
        Arc::new(s)
    };
    let store1 = {
        let s = EventStore::new(4096);
        for seq in 1..=4 {
            s.insert(sev(seq, &format!("/b/{seq}"))).unwrap();
        }
        Arc::new(s)
    };
    let srv0 = StoreServer::bind("127.0.0.1:0", Arc::clone(&store0), cfg.clone()).unwrap();
    let srv1 = StoreServer::bind("127.0.0.1:0", Arc::clone(&store1), cfg.clone()).unwrap();
    let scatter =
        ScatterStore::new(vec![(0, srv0.local_addr()), (1, srv1.local_addr())], cfg.clone());

    // Shards keep independent seq spaces; the merge interleaves them in
    // (seq, shard slot) order — ties resolve to the lower slot.
    let merged = scatter.query(&StoreQuery::after_seq(0));
    assert_eq!(merged.len(), 10);
    let seqs: Vec<u64> = merged.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![1, 1, 2, 2, 3, 3, 4, 4, 5, 6]);
    assert_eq!(merged[0].event.path, Path::new("/a/1"));
    assert_eq!(merged[1].event.path, Path::new("/b/1"));

    // after_seq and limit both apply per shard, then at the merge.
    let tail = scatter.query(&StoreQuery::after_seq(4));
    assert_eq!(
        tail.iter().map(|e| e.event.path.clone()).collect::<Vec<_>>(),
        vec![PathBuf::from("/a/5"), PathBuf::from("/a/6")]
    );
    let limited = scatter.query(&StoreQuery::after_seq(0).limit(5));
    assert_eq!(limited.len(), 5);
    assert_eq!(limited.last().unwrap().seq, 3);
    assert_eq!(scatter.degraded(), 0);

    // Kill shard 1: the query is degraded but answered — shard 0's
    // events come back, and the failure is attributed to shard 1.
    srv1.shutdown();
    let degraded = scatter.query(&StoreQuery::after_seq(0));
    assert_eq!(degraded.len(), 6, "the live shard must still answer");
    assert!(degraded.iter().all(|e| e.event.path.starts_with("/a")));
    assert_eq!(scatter.degraded(), 1);
    let errors: BTreeMap<_, _> = scatter.shard_errors().into_iter().collect();
    assert_eq!(errors[&0], 0);
    assert_eq!(errors[&1], 1);
    srv0.shutdown();
}
