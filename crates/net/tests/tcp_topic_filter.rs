//! Property test: a TCP subscriber receives exactly the publications
//! whose topics match one of its prefixes, in publish order — the same
//! filter contract as the in-process broker.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use sdci_mq::transport::Subscribe;
use sdci_net::{NetConfig, RetryPolicy, TcpBroker, TcpPublisher, TcpSubscriber};
use std::time::Duration;

fn fast_cfg() -> NetConfig {
    NetConfig {
        hwm: 8192,
        window: 1024,
        retry: RetryPolicy { base: Duration::from_millis(10), max: Duration::from_millis(100) },
        heartbeat: Duration::from_millis(20),
        liveness: Duration::from_millis(500),
        ..NetConfig::default()
    }
}

const TOPICS: &[&str] =
    &["a/x", "a/y", "ab/q", "b/x", "b/y/z", "c", "c/z", "events/mdt0", "events/mdt1"];
const PREFIXES: &[&str] = &["a", "a/", "ab", "b/", "b/y", "c", "events/", "events/mdt1"];

fn run_case(topic_ids: Vec<usize>, prefix_ids: Vec<usize>) -> Result<(), TestCaseError> {
    let cfg = fast_cfg();
    let broker = TcpBroker::<u64>::bind("127.0.0.1:0", 8192, cfg.clone()).unwrap();
    let addr = broker.local_addr();
    // `zz` carries the readiness probe and the end-of-case sentinel; no
    // case topic starts with it.
    let mut prefixes: Vec<&str> = prefix_ids.iter().map(|&i| PREFIXES[i]).collect();
    prefixes.push("zz");
    let subscriber = TcpSubscriber::<u64>::connect(addr, &prefixes, cfg.clone());
    let publisher = TcpPublisher::<u64>::connect(addr, cfg);

    let mut ready = false;
    for _ in 0..1000 {
        publisher.publish("zz/probe", u64::MAX);
        if subscriber.recv_timeout(Duration::from_millis(10)).is_some() {
            ready = true;
            break;
        }
    }
    assert!(ready, "pub/sub loopback never became ready");

    for (i, &t) in topic_ids.iter().enumerate() {
        publisher.publish(TOPICS[t], i as u64);
    }
    publisher.publish("zz/done", u64::MAX);

    let expected: Vec<(String, u64)> = topic_ids
        .iter()
        .enumerate()
        .filter(|(_, &t)| prefixes.iter().any(|p| TOPICS[t].starts_with(p)))
        .map(|(i, &t)| (TOPICS[t].to_string(), i as u64))
        .collect();

    let mut got = Vec::new();
    loop {
        let Some(msg) = subscriber.recv_timeout(Duration::from_secs(5)) else {
            panic!("sentinel never arrived; got {} messages so far", got.len());
        };
        if msg.topic == "zz/done" {
            break;
        }
        if msg.topic.starts_with("zz/") {
            continue; // residual readiness probes
        }
        got.push((msg.topic, msg.payload));
    }
    prop_assert_eq!(got, expected);
    broker.shutdown();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn tcp_subscriber_sees_exactly_the_prefix_matches(
        topic_ids in proptest::collection::vec(0usize..TOPICS.len(), 0..40),
        prefix_ids in proptest::collection::vec(0usize..PREFIXES.len(), 1..4),
    ) {
        run_case(topic_ids, prefix_ids)?;
    }
}
