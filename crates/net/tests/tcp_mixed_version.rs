//! Mixed-version wire sessions: proto-1 (per-event JSON), proto-2
//! (batched JSON), and proto-3 (batched binary) peers must interoperate
//! losslessly in every pairing — the full 3×3 matrix — with trace
//! context carried exactly when both ends are ≥ 2, and batched sessions
//! must keep the exactly-once contract across a server kill-restart,
//! including deduplication of a resent partially-applied batch.

use sdci_net::wire::{
    read_msg, write_item_batch, write_item_batch_bin, write_msg, BinEncoder, Frame,
};
use sdci_net::{NetConfig, RetryPolicy, TcpPullServer, TcpPush};
use sdci_types::{
    ChangelogKind, EventKind, Fid, FileEvent, MdtIndex, SimTime, TraceCarrier, TraceContext,
};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn fast_cfg() -> NetConfig {
    NetConfig {
        hwm: 8192,
        window: 1024,
        retry: RetryPolicy { base: Duration::from_millis(10), max: Duration::from_millis(100) },
        heartbeat: Duration::from_millis(20),
        liveness: Duration::from_millis(500),
        ..NetConfig::default()
    }
}

/// A config that emulates a peer from before the batch protocol existed.
fn proto1_cfg() -> NetConfig {
    NetConfig { proto: 1, ..fast_cfg() }
}

/// A config pinned to an explicit protocol version.
fn proto_cfg(proto: u32) -> NetConfig {
    NetConfig { proto, ..fast_cfg() }
}

fn drain_all(server: &TcpPullServer<u64>, n: usize) -> Vec<u64> {
    let pull = server.pull();
    let mut got = Vec::new();
    while let Some(item) = pull.recv_timeout(Duration::from_secs(2)) {
        got.push(item);
        if got.len() == n {
            break;
        }
    }
    got
}

#[test]
fn batched_pusher_against_per_event_server_falls_back_losslessly() {
    // The server speaks proto 1: its greeting carries no version, so the
    // proto-2 pusher must settle on per-event `Item` frames.
    let server = TcpPullServer::<u64>::bind("127.0.0.1:0", 4096, proto1_cfg()).unwrap();
    let push = TcpPush::connect(server.local_addr(), "new-client", fast_cfg());
    const N: u64 = 500;
    for i in 0..N {
        assert!(push.send(i));
    }
    assert!(push.drain(Duration::from_secs(10)), "mixed-version session never drained");
    assert_eq!(drain_all(&server, N as usize), (0..N).collect::<Vec<_>>());
    let stats = server.stats();
    assert_eq!(stats.items, N);
    assert_eq!(stats.duplicates, 0);
    assert_eq!(stats.batches, 0, "a proto-1 server must never receive batch frames");
    server.shutdown();
}

#[test]
fn per_event_pusher_against_batched_server_is_lossless() {
    // The pusher predates batching (proto 1): it ignores the greeting's
    // advertised version and streams per-event frames; the proto-2
    // server must accept them unchanged.
    let server = TcpPullServer::<u64>::bind("127.0.0.1:0", 4096, fast_cfg()).unwrap();
    let push = TcpPush::connect(server.local_addr(), "old-client", proto1_cfg());
    const N: u64 = 500;
    for i in 0..N {
        assert!(push.send(i));
    }
    assert!(push.drain(Duration::from_secs(10)), "mixed-version session never drained");
    assert_eq!(drain_all(&server, N as usize), (0..N).collect::<Vec<_>>());
    let stats = server.stats();
    assert_eq!(stats.items, N);
    assert_eq!(stats.duplicates, 0);
    assert_eq!(stats.batches, 0, "a proto-1 pusher never sends batch frames");
    server.shutdown();
}

fn traced_event(i: u64) -> FileEvent {
    FileEvent {
        index: i,
        mdt: MdtIndex::new(0),
        changelog_kind: ChangelogKind::Create,
        kind: EventKind::Created,
        time: SimTime::from_secs(i),
        path: PathBuf::from(format!("/t/f{i}")),
        src_path: None,
        target: Fid::new(1, i as u32, 0),
        is_dir: false,
        extracted_unix_ns: None,
        trace: Some(TraceContext::sampled(0x1111_2222_3333_4444, i + 1)),
    }
}

fn drain_events(server: &TcpPullServer<FileEvent>, n: usize) -> Vec<FileEvent> {
    let pull = server.pull();
    let mut got = Vec::new();
    while let Some(item) = pull.recv_timeout(Duration::from_secs(2)) {
        got.push(item);
        if got.len() == n {
            break;
        }
    }
    got
}

#[test]
fn trace_context_is_stripped_for_a_proto1_server_and_the_trace_truncates_cleanly() {
    // The server predates TraceContext entirely: the proto-2 pusher
    // must not put the context on the wire (neither as a frame field
    // nor inside payloads), so the session stays byte-compatible and
    // the distributed trace simply truncates at this hop — no wire
    // error, no lost events.
    let server = TcpPullServer::<FileEvent>::bind("127.0.0.1:0", 4096, proto1_cfg()).unwrap();
    let push = TcpPush::connect(server.local_addr(), "traced-new", fast_cfg());
    const N: u64 = 100;
    for i in 0..N {
        assert!(push.send(traced_event(i)));
    }
    assert!(push.drain(Duration::from_secs(10)), "traced mixed-version session never drained");
    let got = drain_events(&server, N as usize);
    assert_eq!(got.len(), N as usize, "context stripping must not lose events");
    assert!(
        got.iter().all(|ev| ev.trace_context().is_none()),
        "a proto-1 session must not carry trace context"
    );
    let stats = server.stats();
    assert_eq!(stats.items, N);
    assert_eq!(stats.batches, 0, "a proto-1 server must never receive batch frames");
    server.shutdown();
}

#[test]
fn proto1_pusher_delivers_contextless_events_to_a_proto2_server() {
    // The other fallback direction: an old pusher feeding a new server.
    // A genuinely old peer would not even have the field; emulate it
    // with a proto-1 session, which strips the context on send. The
    // proto-2 server must accept the events unchanged and read the
    // absent context as None.
    let server = TcpPullServer::<FileEvent>::bind("127.0.0.1:0", 4096, fast_cfg()).unwrap();
    let push = TcpPush::connect(server.local_addr(), "traced-old", proto1_cfg());
    const N: u64 = 100;
    for i in 0..N {
        assert!(push.send(traced_event(i)));
    }
    assert!(push.drain(Duration::from_secs(10)), "traced mixed-version session never drained");
    let got = drain_events(&server, N as usize);
    assert_eq!(got.len(), N as usize);
    assert!(
        got.iter().all(|ev| ev.trace_context().is_none()),
        "a proto-1 pusher's events must arrive without context"
    );
    assert_eq!(server.stats().duplicates, 0);
    server.shutdown();
}

#[test]
fn matched_proto2_session_carries_the_context_end_to_end() {
    // Control for the two fallback tests: when both peers speak
    // proto 2 the context must survive the hop intact.
    let server = TcpPullServer::<FileEvent>::bind("127.0.0.1:0", 4096, fast_cfg()).unwrap();
    let push = TcpPush::connect(server.local_addr(), "traced-both", fast_cfg());
    const N: u64 = 100;
    for i in 0..N {
        assert!(push.send(traced_event(i)));
    }
    assert!(push.drain(Duration::from_secs(10)));
    let got = drain_events(&server, N as usize);
    assert_eq!(got.len(), N as usize);
    for ev in &got {
        let ctx = ev.trace_context().expect("proto-2 session must carry the context");
        assert_eq!(ctx.trace_id, 0x1111_2222_3333_4444);
        assert_eq!(ctx.parent_span_id, ev.index + 1);
        assert!(ctx.sampled);
    }
    server.shutdown();
}

#[test]
fn full_proto_matrix_is_lossless_with_correct_trace_and_batch_semantics() {
    // Every (server, client) pairing of protocols 1, 2, and 3 must move
    // the same traced events with zero loss and zero duplication. The
    // effective session is min(server, client): trace context rides the
    // wire iff the session is ≥ 2 (older sessions strip it and the
    // trace truncates cleanly), and batch frames appear iff the session
    // is ≥ 2 (a proto-1 side must never see one, whatever the other end
    // offered).
    const N: u64 = 200;
    for server_proto in [1u32, 2, 3] {
        for client_proto in [1u32, 2, 3] {
            let cell = format!("server proto {server_proto} / client proto {client_proto}");
            let server =
                TcpPullServer::<FileEvent>::bind("127.0.0.1:0", 4096, proto_cfg(server_proto))
                    .unwrap();
            let push = TcpPush::connect(
                server.local_addr(),
                format!("matrix-s{server_proto}-c{client_proto}"),
                proto_cfg(client_proto),
            );
            for i in 0..N {
                assert!(push.send(traced_event(i)));
            }
            assert!(push.drain(Duration::from_secs(10)), "{cell}: session never drained");
            let got = drain_events(&server, N as usize);
            assert_eq!(got.len(), N as usize, "{cell}: lost events");
            let session = server_proto.min(client_proto);
            for (i, ev) in got.iter().enumerate() {
                let i = i as u64;
                assert_eq!(ev.index, i, "{cell}: events reordered");
                assert_eq!(ev.path, PathBuf::from(format!("/t/f{i}")), "{cell}: payload corrupted");
                assert_eq!(ev.target, Fid::new(1, i as u32, 0), "{cell}: payload corrupted");
                if session >= 2 {
                    let ctx = ev.trace_context().unwrap_or_else(|| {
                        panic!("{cell}: a proto-{session} session must carry the trace context")
                    });
                    assert_eq!(ctx.trace_id, 0x1111_2222_3333_4444, "{cell}: context corrupted");
                    assert_eq!(ctx.parent_span_id, i + 1, "{cell}: context corrupted");
                } else {
                    assert!(
                        ev.trace_context().is_none(),
                        "{cell}: a proto-1 session must strip the trace context"
                    );
                }
            }
            let stats = server.stats();
            assert_eq!(stats.items, N, "{cell}: item count off");
            assert_eq!(stats.duplicates, 0, "{cell}: duplicated items");
            if session >= 2 {
                assert!(stats.batches > 0, "{cell}: a batched session should coalesce frames");
            } else {
                assert_eq!(stats.batches, 0, "{cell}: a proto-1 side must never see batch frames");
            }
            server.shutdown();
        }
    }
}

#[test]
fn raw_proto3_binary_batch_is_accepted_and_acked() {
    // Byte-level compatibility check for the proto-3 leg: a hand-rolled
    // client announces proto 3, receives the server's JSON greeting (the
    // control plane stays JSON at every version), ships one *binary*
    // `ItemBatch`, and must be acked exactly like its JSON twin.
    let server = TcpPullServer::<u64>::bind("127.0.0.1:0", 64, fast_cfg()).unwrap();

    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_msg(
        &mut writer,
        &Frame::<u64>::HelloPush { client: "bin".into(), resume_after: 0, proto: Some(3) },
    )
    .unwrap();
    assert_eq!(
        read_msg::<Frame<u64>>(&mut reader).unwrap(),
        Frame::Ack { up_to: 0, proto: Some(3) }
    );

    let payloads: Vec<u64> = (1..=10).collect();
    let mut enc = BinEncoder::new();
    assert_eq!(write_item_batch_bin(&mut writer, &mut enc, 1, &payloads, None).unwrap(), 1);
    assert_eq!(read_msg::<Frame<u64>>(&mut reader).unwrap(), Frame::Ack { up_to: 10, proto: None });
    write_msg(&mut writer, &Frame::<u64>::Fin).unwrap();

    let stats = server.stats();
    assert_eq!(stats.items, 10);
    assert_eq!(stats.batches, 1);
    assert_eq!(drain_all(&server, 10), (1..=10).collect::<Vec<_>>());
    server.shutdown();
}

#[test]
fn batched_session_survives_server_kill_restart_without_loss() {
    let cfg = fast_cfg();
    let server1 = TcpPullServer::<u64>::bind("127.0.0.1:0", 8192, cfg.clone()).unwrap();
    let addr = server1.local_addr();
    let push = TcpPush::connect(addr, "mdt0", cfg.clone());

    const A: u64 = 2000;
    for i in 0..A {
        assert!(push.send(i));
    }
    assert!(push.drain(Duration::from_secs(10)));
    assert_eq!(drain_all(&server1, A as usize), (0..A).collect::<Vec<_>>());
    assert!(
        server1.stats().batches > 0,
        "a burst of {A} rapid sends on a proto-2 session should coalesce into batch frames"
    );
    server1.shutdown();

    // Unacked items queue while the port is dark — at most a window's
    // worth, since `send` blocks on the full queue and nobody drains it
    // until the link is back. The restarted server (fresh marks) must
    // receive the batched resend exactly once.
    const B: u64 = 800;
    for i in A..A + B {
        assert!(push.send(i));
    }
    std::thread::sleep(Duration::from_millis(50));
    let server2 = TcpPullServer::<u64>::bind(addr, 8192, cfg).unwrap();
    assert!(push.drain(Duration::from_secs(10)), "pusher never caught up after the restart");
    assert_eq!(
        drain_all(&server2, B as usize),
        (A..A + B).collect::<Vec<_>>(),
        "kill-restart lost or duplicated batched items"
    );
    assert_eq!(server2.stats().items, B);
    assert_eq!(server2.stats().duplicates, 0);
    assert!(push.connections() >= 2, "expected at least one reconnect");
    server2.shutdown();
}

#[test]
fn resent_partial_batch_is_deduplicated_not_reapplied() {
    // A server restored from a snapshot already holding client c's
    // items through seq 5 — as if it crashed mid-batch after applying a
    // prefix. The client, restarted from a stale checkpoint, resends
    // the whole batch 1..=10 in a single `ItemBatch`. The server must
    // accept only the fresh tail, count the prefix as duplicates, and
    // ack the batch once.
    let marks: HashMap<String, u64> = [("c".to_string(), 5u64)].into_iter().collect();
    let server =
        TcpPullServer::<u64>::bind_with_marks("127.0.0.1:0", 64, fast_cfg(), marks).unwrap();

    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_msg(
        &mut writer,
        &Frame::<u64>::HelloPush { client: "c".into(), resume_after: 0, proto: Some(2) },
    )
    .unwrap();
    assert_eq!(
        read_msg::<Frame<u64>>(&mut reader).unwrap(),
        // The server always announces its own version (now 3); the
        // proto-2 client simply settles on min(2, 3) = 2.
        Frame::Ack { up_to: 5, proto: Some(3) }
    );

    let payloads: Vec<u64> = (1..=10).collect();
    write_item_batch(&mut writer, 1, &payloads).unwrap();
    // One ack for the whole batch, at the post-batch mark.
    assert_eq!(read_msg::<Frame<u64>>(&mut reader).unwrap(), Frame::Ack { up_to: 10, proto: None });
    write_msg(&mut writer, &Frame::<u64>::Fin).unwrap();

    let stats = server.stats();
    assert_eq!(stats.items, 5, "only the fresh tail 6..=10 is accepted");
    assert_eq!(stats.duplicates, 5, "the already-applied prefix 1..=5 is deduplicated");
    assert_eq!(stats.batches, 1);
    assert_eq!(drain_all(&server, 5), (6..=10).collect::<Vec<_>>());
    assert_eq!(server.marks().get("c"), Some(&10));
    server.shutdown();
}

#[test]
fn deliver_direction_proto_matrix_is_lossless_across_all_nine_cells() {
    // The mirror of the push matrix, for the fan-out direction: every
    // (broker, subscriber) pairing of protocols 1, 2, and 3 must
    // deliver a published burst losslessly and in order. The effective
    // session is min(broker, subscriber): a session ≥ 2 coalesces the
    // burst into `DeliverBatch` frames (strictly fewer frames than
    // messages), a proto-1 session gets exactly one `Deliver` frame per
    // message. Trace context is embedded in the payload on this leg, so
    // it survives every cell — stripping is a publish-leg concern.
    use sdci_mq::transport::Subscribe;
    use sdci_net::{TcpBroker, TcpSubscriber};
    use std::time::Instant;

    const N: u64 = 200;
    for broker_proto in [1u32, 2, 3] {
        for sub_proto in [1u32, 2, 3] {
            let cell = format!("broker proto {broker_proto} / subscriber proto {sub_proto}");
            let broker =
                TcpBroker::<FileEvent>::bind("127.0.0.1:0", 8192, proto_cfg(broker_proto)).unwrap();
            let subscriber = TcpSubscriber::<FileEvent>::connect(
                broker.local_addr(),
                &["t/"],
                proto_cfg(sub_proto),
            );
            let publisher = broker.publisher();

            // Probe until the leg demonstrably delivers, then quiesce so
            // the frame counter baseline below excludes the probes.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                publisher.publish("t/probe", traced_event(u64::MAX));
                if subscriber.recv_timeout(Duration::from_millis(10)).is_some() {
                    break;
                }
                assert!(Instant::now() < deadline, "{cell}: loopback never became ready");
            }
            while subscriber.recv_timeout(Duration::from_millis(100)).is_some() {}
            let frames_before = broker.stats().frames_out;

            for i in 0..N {
                publisher.publish("t/e", traced_event(i));
            }
            let mut got = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(10);
            while got.len() < N as usize && Instant::now() < deadline {
                if let Some(msg) = subscriber.recv_timeout(Duration::from_millis(100)) {
                    if msg.payload.index != u64::MAX {
                        got.push(msg.payload);
                    }
                }
            }
            assert_eq!(got.len(), N as usize, "{cell}: lost deliveries");
            for (i, ev) in got.iter().enumerate() {
                let i = i as u64;
                assert_eq!(ev.index, i, "{cell}: deliveries reordered");
                assert_eq!(ev.path, PathBuf::from(format!("/t/f{i}")), "{cell}: payload corrupted");
                let ctx = ev
                    .trace_context()
                    .unwrap_or_else(|| panic!("{cell}: payload-embedded context dropped"));
                assert_eq!(ctx.parent_span_id, i + 1, "{cell}: context corrupted");
            }

            let delta = broker.stats().frames_out - frames_before;
            let session = broker_proto.min(sub_proto);
            if session >= 2 {
                assert!(
                    delta < N,
                    "{cell}: a batched session should deliver the burst in fewer frames \
                     than messages (got {delta} frames for {N} messages)"
                );
            } else {
                assert_eq!(delta, N, "{cell}: a proto-1 session is one frame per message");
            }
            broker.shutdown();
        }
    }
}
