//! Fault-injection regression tests: the deterministic chaos the
//! `sdci-faults` plan injects at the conn/wire boundary must be
//! survivable — the lossless push leg stays exactly-once, store
//! queries stay time-bounded, and a failed thread spawn costs one
//! connection, never the process.

use sdci_core::{EventStore, SequencedEvent, StoreQuery, StoreReader};
use sdci_faults::{arm, process_epoch, CrashMode, FaultPlan};
use sdci_net::store_rpc::StoreRpc;
use sdci_net::wire::write_msg;
use sdci_net::{NetConfig, RemoteStore, RetryPolicy, StoreServer, TcpPullServer, TcpPush};
use sdci_types::{ChangelogKind, EventKind, Fid, FileEvent, MdtIndex, SimTime};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast_cfg() -> NetConfig {
    NetConfig {
        hwm: 8192,
        window: 256,
        retry: RetryPolicy { base: Duration::from_millis(10), max: Duration::from_millis(100) },
        heartbeat: Duration::from_millis(20),
        liveness: Duration::from_millis(400),
        ..NetConfig::default()
    }
}

fn faulted_cfg(spec: &str) -> NetConfig {
    let plan = Arc::new(FaultPlan::parse(spec).expect("valid fault spec"));
    fast_cfg().with_faults(Some(plan))
}

fn sev(seq: u64) -> SequencedEvent {
    SequencedEvent {
        seq,
        event: FileEvent {
            index: seq,
            mdt: MdtIndex::new(0),
            changelog_kind: ChangelogKind::Create,
            kind: EventKind::Created,
            time: SimTime::from_secs(seq),
            path: PathBuf::from(format!("/f/{seq}")),
            src_path: None,
            target: Fid::new(1, seq as u32, 0),
            is_dir: false,
            extracted_unix_ns: None,
            trace: None,
        },
    }
}

fn seeded_store(n: u64) -> Arc<EventStore> {
    let store = EventStore::new(4096);
    for i in 1..=n {
        store.insert(sev(i)).unwrap();
    }
    Arc::new(store)
}

/// The §5.2 guarantee under a hostile wire: with frames being dropped,
/// duplicated, truncated (killing the connection), and delayed on the
/// pusher's sockets, every item still reaches the pipeline exactly
/// once, in order — dedup marks plus gap rejection plus resend-on-
/// reconnect absorb every injected fault. Three seeds, same invariant.
#[test]
fn lossy_faulted_push_leg_still_delivers_exactly_once() {
    for seed in [7u64, 41, 1999] {
        let server = TcpPullServer::<u64>::bind("127.0.0.1:0", 4096, fast_cfg()).unwrap();
        let spec = format!("seed={seed},drop=0.06,dup=0.05,trunc=0.03,delay=0.05:1ms");
        let push = TcpPush::connect(server.local_addr(), "chaos", faulted_cfg(&spec));
        const N: u64 = 120;
        for i in 0..N {
            assert!(push.send(i), "seed {seed}: send rejected");
        }
        assert!(push.drain(Duration::from_secs(60)), "seed {seed}: acks never fully arrived");

        let pull = server.pull();
        let mut got = Vec::new();
        while let Some(item) = pull.recv_timeout(Duration::from_secs(5)) {
            got.push(item);
            if got.len() == N as usize {
                break;
            }
        }
        assert_eq!(got, (0..N).collect::<Vec<_>>(), "seed {seed}: lost or reordered items");
        assert_eq!(server.stats().items, N, "seed {seed}: pipeline item count drifted");
        drop(push);
        server.shutdown();
    }
}

/// A scripted partition black-holes connects: `RemoteStore::query` must
/// give up within its bounded retry schedule — not hang the caller on
/// a kernel SYN retry — and account every failed dial.
#[test]
fn remote_store_query_is_bounded_during_a_partition() {
    // The target address never even gets dialed: the partition window
    // covers the whole test.
    let cfg = faulted_cfg("seed=3,partition=60s@0ms");
    let store = RemoteStore::connect("127.0.0.1:9".parse().unwrap(), cfg);
    let started = Instant::now();
    let events = store.query(&StoreQuery::after_seq(0));
    assert!(events.is_empty());
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "query took {:?}; the connect path is not bounded",
        started.elapsed()
    );
    assert_eq!(store.connect_failures(), 2, "both attempts should have failed to dial");
    assert_eq!(store.failures(), 1);
}

/// A peer flooding the reply stream with non-`Batch` frames must not
/// wedge the consumer: the round trip fails after a bounded number of
/// strays and the query returns empty.
#[test]
fn remote_store_round_trip_is_bounded_under_a_non_batch_flood() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let flood = std::thread::spawn(move || {
        // One connection per query attempt; answer each with Pings
        // forever (until the client hangs up).
        for _ in 0..2 {
            let Ok((stream, _)) = listener.accept() else { return };
            std::thread::spawn(move || {
                let mut writer = stream;
                while write_msg(&mut writer, &StoreRpc::Ping).is_ok() {}
            });
        }
    });

    let store = RemoteStore::connect(addr, fast_cfg());
    let started = Instant::now();
    let events = store.query(&StoreQuery::after_seq(0));
    assert!(events.is_empty());
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "query took {:?}; the stray-reply loop is not bounded",
        started.elapsed()
    );
    assert_eq!(store.failures(), 1);
    flood.join().unwrap();
}

/// Thread-spawn failure containment, via the armed fail points the
/// chaos harness uses: an accept-thread failure surfaces as a `bind`
/// error (no panic), and a per-connection failure costs exactly that
/// connection — the retry lands on a freshly spawned handler.
#[test]
fn store_server_spawn_failures_are_contained() {
    let store = seeded_store(25);

    // Accept-thread spawn failure: bind reports it instead of
    // panicking the process...
    arm("net.store_rpc.spawn_accept", 1, CrashMode::Error);
    let err = StoreServer::bind("127.0.0.1:0", Arc::clone(&store), fast_cfg()).unwrap_err();
    assert!(err.to_string().contains("net.store_rpc.spawn_accept"), "unhelpful error: {err}");
    // ...and the point self-disarms, so the next bind succeeds.
    let server = StoreServer::bind("127.0.0.1:0", Arc::clone(&store), fast_cfg()).unwrap();

    // Per-connection spawn failure: the first dial gets a connection
    // nobody serves (the client times out and redials); the server
    // survives and the second connection answers.
    arm("net.store_rpc.spawn_conn", 1, CrashMode::Error);
    let remote = RemoteStore::connect(server.local_addr(), fast_cfg());
    let events = remote.query(&StoreQuery::after_seq(0));
    assert_eq!(events.len(), 25, "query must succeed once a handler thread spawns");
    assert_eq!(server.queries(), 1);

    // Reply-path failure: the handler dies *between* running the query
    // and writing the reply. The client sees a dead connection, redials,
    // and the retry lands on a fresh handler that answers.
    arm("net.store_rpc.reply", 1, CrashMode::Error);
    let events = remote.query(&StoreQuery::after_seq(0));
    assert_eq!(events.len(), 25, "retry after a killed reply must be answered");
    assert_eq!(server.queries(), 3, "the killed reply's query still ran server-side");
    server.shutdown();
}

/// Reply correlation on the store RPC: the protocol has no request ids,
/// so a stale `Batch` reply replayed by a faulted link (a duplicated
/// frame sitting in the socket buffer) arrives exactly where the answer
/// to the *next* query is expected. The client must reject it by range
/// — its events predate the new query's `after_seq` — and keep reading
/// until the genuine reply, instead of handing the consumer events from
/// the wrong range.
#[test]
fn stale_replayed_batch_reply_never_answers_the_wrong_query() {
    use sdci_net::wire::FrameReader;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept store client");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = FrameReader::new(stream);

        // Query #1 answered correctly.
        let q1 = reader.read_msg::<StoreRpc>().expect("read first query");
        assert!(matches!(q1, StoreRpc::Query { .. }));
        let batch1: Vec<SequencedEvent> = (1..=5).map(sev).collect();
        write_msg(&mut writer, &StoreRpc::Batch { events: batch1.clone() }).unwrap();

        // Query #2's reply is preceded by a replay of reply #1 — the
        // observable effect of a duplicate fault on the reply stream.
        let q2 = reader.read_msg::<StoreRpc>().expect("read second query");
        assert!(matches!(q2, StoreRpc::Query { .. }));
        write_msg(&mut writer, &StoreRpc::Batch { events: batch1 }).unwrap();
        write_msg(&mut writer, &StoreRpc::Batch { events: (6..=10).map(sev).collect() }).unwrap();
    });

    let remote = RemoteStore::connect(addr, fast_cfg());
    let first = remote.query(&StoreQuery::after_seq(0));
    assert_eq!(first.iter().map(|e| e.seq).collect::<Vec<_>>(), (1..=5).collect::<Vec<_>>());

    // The stale replay answers this query's range check with seqs <= 5;
    // it must be skipped, not returned.
    let second = remote.query(&StoreQuery::after_seq(5));
    assert_eq!(
        second.iter().map(|e| e.seq).collect::<Vec<_>>(),
        (6..=10).collect::<Vec<_>>(),
        "a replayed stale reply must never be taken as the answer to a later query"
    );
    assert_eq!(remote.failures(), 0);
    server.join().unwrap();
}

/// A fanout-leg death between the broker's local dequeue and the socket
/// write (the `net.pubsub.fanout` crash point in error mode) costs that
/// subscriber one in-flight message and one connection — the lossy feed
/// contract — and nothing else: the broker survives, the supervised
/// subscriber reconnects and resubscribes, and later messages flow.
#[test]
fn fanout_crash_point_costs_one_subscriber_connection() {
    use sdci_mq::transport::Subscribe;
    use sdci_net::{TcpBroker, TcpPublisher, TcpSubscriber};

    let cfg = fast_cfg();
    let broker = TcpBroker::<u64>::bind("127.0.0.1:0", 8192, cfg.clone()).unwrap();
    let addr = broker.local_addr();
    let subscriber = TcpSubscriber::<u64>::connect(addr, &["events/"], cfg.clone());
    let publisher = TcpPublisher::<u64>::connect(addr, cfg);

    // Publish probes until one demonstrably flows end to end, so the
    // armed point below fires on an established fanout leg.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        publisher.publish("events/probe", u64::MAX);
        if subscriber.recv_timeout(Duration::from_millis(10)).is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "pub/sub loopback never became ready");
    }

    // The next dequeued message dies mid-fanout: dropped for this
    // subscriber only, connection closed.
    arm("net.pubsub.fanout", 1, CrashMode::Error);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut delivered_after_kill = None;
    for i in 0u64.. {
        publisher.publish("events/e", i);
        if let Some(msg) = subscriber.recv_timeout(Duration::from_millis(10)) {
            if subscriber.connections() >= 2 {
                delivered_after_kill = Some(msg.payload);
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no delivery after the fanout kill (connections: {})",
            subscriber.connections()
        );
    }
    assert!(delivered_after_kill.is_some());
    assert!(subscriber.connections() >= 2, "the killed fanout leg should have forced a reconnect");
    broker.shutdown();
}

/// Child body for `shutdown_drain_is_faultable_in_abort_mode`: inert in
/// a normal suite run, armed only when that test re-executes this
/// binary with `SDCI_DRAIN_ABORT_CHILD=1`. The sequence pins the drain:
/// the leg is proven live and then quiesced *before* the crash point is
/// armed, so the only frames left to cross it are the burst queued
/// immediately ahead of `shutdown()` — the graceful-drain flush.
#[test]
fn drain_abort_child() {
    use sdci_mq::transport::Subscribe;
    use sdci_net::{TcpBroker, TcpSubscriber};

    if std::env::var("SDCI_DRAIN_ABORT_CHILD").is_err() {
        return;
    }
    let cfg = fast_cfg();
    let broker = TcpBroker::<u64>::bind("127.0.0.1:0", 8192, cfg.clone()).unwrap();
    let subscriber = TcpSubscriber::<u64>::connect(broker.local_addr(), &["q/"], cfg);
    let publisher = broker.publisher();

    // Prove the fanout leg end-to-end live...
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        publisher.publish("q/probe", 0);
        if subscriber.recv_timeout(Duration::from_millis(10)).is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "pub/sub loopback never became ready");
    }
    // ...then quiesce it: every probe the client has received was
    // already written by the leg (the crash point passed, unarmed), and
    // once the stream stays silent nothing else is in flight.
    while subscriber.recv_timeout(Duration::from_millis(100)).is_some() {}
    println!("leg-live-and-quiet");

    arm("net.pubsub.fanout", 1, CrashMode::Abort);
    for i in 0..32u64 {
        publisher.publish("q/drain", i);
    }
    broker.shutdown();
    // The armed abort fires while the queued burst is being flushed to
    // the subscriber; this line is unreachable unless the drain skipped
    // the crash point.
    println!("DRAIN-COMPLETE");
}

/// The graceful-drain path must not bypass fault injection: the old
/// shutdown flush wrote directly to the socket and skipped the
/// `net.pubsub.fanout` crash point entirely, so no chaos schedule could
/// ever fault it. Live delivery and the shutdown drain now share one
/// delivery site, and an armed abort timed at the drain kills the
/// process mid-flush — observed here as a child that dies by signal
/// after quiescing but before completing `shutdown()`.
#[test]
fn shutdown_drain_is_faultable_in_abort_mode() {
    let exe = std::env::current_exe().unwrap();
    let out = std::process::Command::new(exe)
        .args(["drain_abort_child", "--exact", "--test-threads=1", "--nocapture"])
        .env("SDCI_DRAIN_ABORT_CHILD", "1")
        .output()
        .expect("re-exec test binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("leg-live-and-quiet"), "child never quiesced its leg:\n{stdout}");
    assert!(!out.status.success(), "armed drain abort did not kill the child:\n{stdout}");
    assert!(
        !stdout.contains("DRAIN-COMPLETE"),
        "shutdown drain completed past an armed fanout abort:\n{stdout}"
    );
}

/// Partition windows are anchored to one shared process epoch, not to
/// each plan's construction time: a spec parsed *after* its window has
/// closed must agree that the partition is over. (The old per-plan
/// anchoring restarted the window on every parse, so connections
/// created later saw a partition everyone else had already healed
/// from.)
#[test]
fn partition_windows_share_one_process_epoch() {
    let epoch = process_epoch();
    // A window open from the epoch until ~300ms from now.
    let window_end = epoch.elapsed() + Duration::from_millis(300);
    let spec = format!("seed=5,partition={}us@0us", window_end.as_micros());

    let first = FaultPlan::parse(&spec).unwrap();
    assert!(first.partitioned(), "a window covering process-start..now+300ms must be active");

    std::thread::sleep(Duration::from_millis(500));

    // Re-parsing the same spec after the window closed must not
    // restart it; per-plan anchoring would report elapsed ≈ 0 here and
    // call the partition active again.
    let second = FaultPlan::parse(&spec).unwrap();
    assert!(
        !second.partitioned(),
        "a plan parsed after the window closed must share the healed epoch"
    );
    assert!(!first.partitioned(), "the original plan agrees the window closed");
}
