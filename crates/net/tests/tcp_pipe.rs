//! PUSH/PULL integration: lossless delivery, acknowledgement-gated
//! drains, and survival of a server restart on the same port — the
//! Collector-side guarantee that "no events are lost once they have
//! been processed" (§5.2).

use sdci_net::{NetConfig, RetryPolicy, TcpPullServer, TcpPush};
use std::time::Duration;

fn fast_cfg() -> NetConfig {
    NetConfig {
        hwm: 8192,
        window: 1024,
        retry: RetryPolicy { base: Duration::from_millis(10), max: Duration::from_millis(100) },
        heartbeat: Duration::from_millis(20),
        liveness: Duration::from_millis(500),
    }
}

#[test]
fn pushed_items_arrive_exactly_once_in_order() {
    let cfg = fast_cfg();
    let server = TcpPullServer::<u64>::bind("127.0.0.1:0", 4096, cfg.clone()).unwrap();
    let push = TcpPush::connect(server.local_addr(), "c1", cfg);
    const N: u64 = 1000;
    for i in 0..N {
        assert!(push.send(i));
    }
    assert!(push.drain(Duration::from_secs(10)), "acks never fully arrived");
    assert_eq!(push.acked(), N);

    let pull = server.pull();
    let mut got = Vec::new();
    while let Some(item) = pull.recv_timeout(Duration::from_secs(2)) {
        got.push(item);
        if got.len() == N as usize {
            break;
        }
    }
    assert_eq!(got, (0..N).collect::<Vec<_>>());
    assert_eq!(server.stats().items, N);
    assert_eq!(server.stats().duplicates, 0);
    server.shutdown();
}

#[test]
fn pusher_survives_a_server_restart_on_the_same_port_without_loss() {
    let cfg = fast_cfg();
    let server1 = TcpPullServer::<u64>::bind("127.0.0.1:0", 4096, cfg.clone()).unwrap();
    let addr = server1.local_addr();
    let push = TcpPush::connect(addr, "mdt0", cfg.clone());

    // Batch 1: fully acknowledged before the server goes away, so the
    // client must never re-send any of it.
    const A: u64 = 150;
    for i in 0..A {
        assert!(push.send(i));
    }
    assert!(push.drain(Duration::from_secs(10)));
    let pull1 = server1.pull();
    let mut batch1 = Vec::new();
    while let Some(item) = pull1.recv_timeout(Duration::from_secs(2)) {
        batch1.push(item);
        if batch1.len() == A as usize {
            break;
        }
    }
    assert_eq!(batch1, (0..A).collect::<Vec<_>>());
    server1.shutdown();

    // Batch 2 goes into the void: the client queues and retries with
    // backoff while the port is closed.
    const B: u64 = 150;
    for i in A..A + B {
        assert!(push.send(i));
    }
    std::thread::sleep(Duration::from_millis(50)); // let some attempts fail

    let server2 = TcpPullServer::<u64>::bind(addr, 4096, cfg).unwrap();
    assert!(push.drain(Duration::from_secs(10)), "pusher never caught up after the restart");
    let pull2 = server2.pull();
    let mut batch2 = Vec::new();
    while let Some(item) = pull2.recv_timeout(Duration::from_secs(2)) {
        batch2.push(item);
        if batch2.len() == B as usize {
            break;
        }
    }
    assert_eq!(batch2, (A..A + B).collect::<Vec<_>>(), "restart lost or duplicated items");
    assert!(push.connections() >= 2, "expected at least one reconnect");
    server2.shutdown();
}

#[test]
fn two_pushers_multiplex_without_crosstalk() {
    let cfg = fast_cfg();
    let server = TcpPullServer::<u64>::bind("127.0.0.1:0", 8192, cfg.clone()).unwrap();
    let addr = server.local_addr();
    let a = TcpPush::connect(addr, "a", cfg.clone());
    let b = TcpPush::connect(addr, "b", cfg);
    const N: u64 = 500;
    let ta = {
        let a = a.clone();
        std::thread::spawn(move || (0..N).for_each(|i| assert!(a.send(i * 2))))
    };
    let tb = {
        let b = b.clone();
        std::thread::spawn(move || (0..N).for_each(|i| assert!(b.send(i * 2 + 1))))
    };
    ta.join().unwrap();
    tb.join().unwrap();
    assert!(a.drain(Duration::from_secs(10)));
    assert!(b.drain(Duration::from_secs(10)));

    let pull = server.pull();
    let mut evens = Vec::new();
    let mut odds = Vec::new();
    for _ in 0..2 * N {
        let item = pull.recv_timeout(Duration::from_secs(2)).expect("missing item");
        if item.is_multiple_of(2) {
            evens.push(item)
        } else {
            odds.push(item)
        }
    }
    // Interleaving across clients is arbitrary; per-client order is not.
    assert_eq!(evens, (0..N).map(|i| i * 2).collect::<Vec<_>>());
    assert_eq!(odds, (0..N).map(|i| i * 2 + 1).collect::<Vec<_>>());
    server.shutdown();
}
