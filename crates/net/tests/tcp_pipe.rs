//! PUSH/PULL integration: lossless delivery, acknowledgement-gated
//! drains, and survival of a server restart on the same port — the
//! Collector-side guarantee that "no events are lost once they have
//! been processed" (§5.2).

use sdci_net::wire::{read_msg, write_msg, Frame};
use sdci_net::{NetConfig, RetryPolicy, TcpPullServer, TcpPush};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn fast_cfg() -> NetConfig {
    NetConfig {
        hwm: 8192,
        window: 1024,
        retry: RetryPolicy { base: Duration::from_millis(10), max: Duration::from_millis(100) },
        heartbeat: Duration::from_millis(20),
        liveness: Duration::from_millis(500),
        ..NetConfig::default()
    }
}

#[test]
fn pushed_items_arrive_exactly_once_in_order() {
    let cfg = fast_cfg();
    let server = TcpPullServer::<u64>::bind("127.0.0.1:0", 4096, cfg.clone()).unwrap();
    let push = TcpPush::connect(server.local_addr(), "c1", cfg);
    const N: u64 = 1000;
    for i in 0..N {
        assert!(push.send(i));
    }
    assert!(push.drain(Duration::from_secs(10)), "acks never fully arrived");
    assert_eq!(push.acked(), N);

    let pull = server.pull();
    let mut got = Vec::new();
    while let Some(item) = pull.recv_timeout(Duration::from_secs(2)) {
        got.push(item);
        if got.len() == N as usize {
            break;
        }
    }
    assert_eq!(got, (0..N).collect::<Vec<_>>());
    assert_eq!(server.stats().items, N);
    assert_eq!(server.stats().duplicates, 0);
    server.shutdown();
}

#[test]
fn pusher_survives_a_server_restart_on_the_same_port_without_loss() {
    let cfg = fast_cfg();
    let server1 = TcpPullServer::<u64>::bind("127.0.0.1:0", 4096, cfg.clone()).unwrap();
    let addr = server1.local_addr();
    let push = TcpPush::connect(addr, "mdt0", cfg.clone());

    // Batch 1: fully acknowledged before the server goes away, so the
    // client must never re-send any of it.
    const A: u64 = 150;
    for i in 0..A {
        assert!(push.send(i));
    }
    assert!(push.drain(Duration::from_secs(10)));
    let pull1 = server1.pull();
    let mut batch1 = Vec::new();
    while let Some(item) = pull1.recv_timeout(Duration::from_secs(2)) {
        batch1.push(item);
        if batch1.len() == A as usize {
            break;
        }
    }
    assert_eq!(batch1, (0..A).collect::<Vec<_>>());
    server1.shutdown();

    // Batch 2 goes into the void: the client queues and retries with
    // backoff while the port is closed.
    const B: u64 = 150;
    for i in A..A + B {
        assert!(push.send(i));
    }
    std::thread::sleep(Duration::from_millis(50)); // let some attempts fail

    let server2 = TcpPullServer::<u64>::bind(addr, 4096, cfg).unwrap();
    assert!(push.drain(Duration::from_secs(10)), "pusher never caught up after the restart");
    let pull2 = server2.pull();
    let mut batch2 = Vec::new();
    while let Some(item) = pull2.recv_timeout(Duration::from_secs(2)) {
        batch2.push(item);
        if batch2.len() == B as usize {
            break;
        }
    }
    assert_eq!(batch2, (A..A + B).collect::<Vec<_>>(), "restart lost or duplicated items");
    assert!(push.connections() >= 2, "expected at least one reconnect");
    server2.shutdown();
}

#[test]
fn restarted_pusher_with_same_client_id_loses_nothing() {
    let cfg = fast_cfg();
    let server = TcpPullServer::<u64>::bind("127.0.0.1:0", 4096, cfg.clone()).unwrap();
    let addr = server.local_addr();
    const A: u64 = 100;
    {
        let push = TcpPush::connect(addr, "mdt0", cfg.clone());
        for i in 0..A {
            assert!(push.send(i));
        }
        assert!(push.drain(Duration::from_secs(10)));
        // Dropping the handle finishes the worker with a clean Fin.
    }

    // Second incarnation of the same logical pusher. It must adopt the
    // server's high-water mark at the handshake and number upward from
    // there — numbering from 1 again would have every item discarded
    // (and still acked) as a duplicate of the first incarnation's.
    let push2 = TcpPush::connect(addr, "mdt0", cfg);
    const B: u64 = 100;
    for i in A..A + B {
        assert!(push2.send(i));
    }
    assert!(push2.drain(Duration::from_secs(10)), "second incarnation never fully acked");

    let pull = server.pull();
    let mut got = Vec::new();
    while let Some(item) = pull.recv_timeout(Duration::from_secs(2)) {
        got.push(item);
        if got.len() == (A + B) as usize {
            break;
        }
    }
    assert_eq!(got, (0..A + B).collect::<Vec<_>>(), "restart lost or duplicated items");
    assert_eq!(server.stats().duplicates, 0);
    assert_eq!(server.marks().get("mdt0"), Some(&(A + B)));
    server.shutdown();
}

#[test]
fn marks_restored_at_bind_deduplicate_resends() {
    let cfg = fast_cfg();
    // A "restarted" server whose restored state already holds client
    // c's items up to 50 — e.g. from a snapshot + marks sidecar.
    let marks: HashMap<String, u64> = [("c".to_string(), 50u64)].into_iter().collect();
    let server = TcpPullServer::<u64>::bind_with_marks("127.0.0.1:0", 64, cfg, marks).unwrap();

    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_msg(
        &mut writer,
        &Frame::<u64>::HelloPush { client: "c".into(), resume_after: 48, proto: None },
    )
    .unwrap();
    // The greeting advertises the server's wire protocol; this proto-1
    // client simply ignores it.
    assert_eq!(
        read_msg::<Frame<u64>>(&mut reader).unwrap(),
        Frame::Ack { up_to: 50, proto: Some(3) }
    );

    // A resend of something the restored state already holds is
    // discarded (but still acked)...
    write_msg(&mut writer, &Frame::<u64>::Item { seq: 50, payload: 999 }).unwrap();
    assert_eq!(read_msg::<Frame<u64>>(&mut reader).unwrap(), Frame::Ack { up_to: 50, proto: None });
    // ...while genuinely new items are accepted.
    write_msg(&mut writer, &Frame::<u64>::Item { seq: 51, payload: 51 }).unwrap();
    assert_eq!(read_msg::<Frame<u64>>(&mut reader).unwrap(), Frame::Ack { up_to: 51, proto: None });
    write_msg(&mut writer, &Frame::<u64>::Fin).unwrap();

    assert_eq!(server.stats().duplicates, 1);
    assert_eq!(server.stats().items, 1);
    assert_eq!(server.pull().recv_timeout(Duration::from_secs(2)), Some(51));
    assert_eq!(server.marks().get("c"), Some(&51));

    // A client claiming acks beyond our mark is authoritative: it will
    // never resend those items, so the mark fast-forwards.
    let stream2 = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer2 = stream2.try_clone().unwrap();
    let mut reader2 = BufReader::new(stream2);
    write_msg(
        &mut writer2,
        &Frame::<u64>::HelloPush { client: "c".into(), resume_after: 70, proto: None },
    )
    .unwrap();
    assert_eq!(
        read_msg::<Frame<u64>>(&mut reader2).unwrap(),
        Frame::Ack { up_to: 70, proto: Some(3) }
    );
    write_msg(&mut writer2, &Frame::<u64>::Fin).unwrap();
    assert_eq!(server.marks().get("c"), Some(&70));
    server.shutdown();
}

#[test]
fn pusher_reconnects_when_acks_stop_flowing() {
    // A fake server whose first connection accepts the handshake, then
    // swallows everything without ever acking — a silent partition as
    // far as the pusher can tell. The pusher must declare the link dead
    // after its liveness window and reconnect; the second connection
    // behaves and acks, so the re-sent window drains.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (first, _) = listener.accept().unwrap();
        let mut writer = first.try_clone().unwrap();
        let mut reader = BufReader::new(first);
        let _hello: Frame<u64> = read_msg(&mut reader).unwrap();
        write_msg(&mut writer, &Frame::<u64>::Ack { up_to: 0, proto: None }).unwrap();
        // Swallow items and pings in the background; never respond.
        std::thread::spawn(move || while read_msg::<Frame<u64>>(&mut reader).is_ok() {});

        let (second, _) = listener.accept().unwrap();
        let mut writer = second.try_clone().unwrap();
        let mut reader = BufReader::new(second);
        let _hello: Frame<u64> = read_msg(&mut reader).unwrap();
        write_msg(&mut writer, &Frame::<u64>::Ack { up_to: 0, proto: None }).unwrap();
        loop {
            match read_msg::<Frame<u64>>(&mut reader) {
                Ok(Frame::Item { seq, .. }) => {
                    write_msg(&mut writer, &Frame::<u64>::Ack { up_to: seq, proto: None }).unwrap();
                }
                Ok(Frame::Ping) => {
                    write_msg(&mut writer, &Frame::<u64>::Ack { up_to: 0, proto: None }).unwrap();
                }
                Ok(Frame::Fin) | Err(_) => return,
                Ok(_) => {}
            }
        }
    });

    let push = TcpPush::<u64>::connect(addr, "p", fast_cfg());
    assert!(push.send(7));
    assert!(
        push.drain(Duration::from_secs(10)),
        "pusher hung on the silent connection instead of reconnecting"
    );
    assert!(push.connections() >= 2, "expected a liveness-triggered reconnect");
    drop(push);
    fake.join().unwrap();
}

#[test]
fn two_pushers_multiplex_without_crosstalk() {
    let cfg = fast_cfg();
    let server = TcpPullServer::<u64>::bind("127.0.0.1:0", 8192, cfg.clone()).unwrap();
    let addr = server.local_addr();
    let a = TcpPush::connect(addr, "a", cfg.clone());
    let b = TcpPush::connect(addr, "b", cfg);
    const N: u64 = 500;
    let ta = {
        let a = a.clone();
        std::thread::spawn(move || (0..N).for_each(|i| assert!(a.send(i * 2))))
    };
    let tb = {
        let b = b.clone();
        std::thread::spawn(move || (0..N).for_each(|i| assert!(b.send(i * 2 + 1))))
    };
    ta.join().unwrap();
    tb.join().unwrap();
    assert!(a.drain(Duration::from_secs(10)));
    assert!(b.drain(Duration::from_secs(10)));

    let pull = server.pull();
    let mut evens = Vec::new();
    let mut odds = Vec::new();
    for _ in 0..2 * N {
        let item = pull.recv_timeout(Duration::from_secs(2)).expect("missing item");
        if item.is_multiple_of(2) {
            evens.push(item)
        } else {
            odds.push(item)
        }
    }
    // Interleaving across clients is arbitrary; per-client order is not.
    assert_eq!(evens, (0..N).map(|i| i * 2).collect::<Vec<_>>());
    assert_eq!(odds, (0..N).map(|i| i * 2 + 1).collect::<Vec<_>>());
    server.shutdown();
}

#[test]
fn server_stats_stay_exact_across_an_abrupt_pusher_death_and_resend() {
    let cfg = fast_cfg();
    let server = TcpPullServer::<u64>::bind("127.0.0.1:0", 64, cfg).unwrap();

    // First incarnation: delivers items 1..=5, then dies mid-stream
    // (socket dropped with no Fin), as a SIGKILLed collector would.
    {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        write_msg(
            &mut writer,
            &Frame::<u64>::HelloPush { client: "c".into(), resume_after: 0, proto: None },
        )
        .unwrap();
        assert_eq!(
            read_msg::<Frame<u64>>(&mut reader).unwrap(),
            Frame::Ack { up_to: 0, proto: Some(3) }
        );
        for seq in 1..=5u64 {
            write_msg(&mut writer, &Frame::<u64>::Item { seq, payload: seq }).unwrap();
            assert_eq!(
                read_msg::<Frame<u64>>(&mut reader).unwrap(),
                Frame::Ack { up_to: seq, proto: None }
            );
        }
    }

    // Second incarnation restarts from a stale checkpoint (acks only
    // recorded through 2) and resends 3..=5 before new items 6..=7. The
    // server's counters must attribute the overlap to `duplicates` and
    // keep `items` exactly equal to what the pipeline received.
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_msg(
        &mut writer,
        &Frame::<u64>::HelloPush { client: "c".into(), resume_after: 2, proto: None },
    )
    .unwrap();
    // The handshake ack fast-forwards the restarted pusher to the
    // server's authoritative mark.
    assert_eq!(
        read_msg::<Frame<u64>>(&mut reader).unwrap(),
        Frame::Ack { up_to: 5, proto: Some(3) }
    );
    for seq in 3..=7u64 {
        write_msg(&mut writer, &Frame::<u64>::Item { seq, payload: seq }).unwrap();
        let expect = seq.max(5);
        assert_eq!(
            read_msg::<Frame<u64>>(&mut reader).unwrap(),
            Frame::Ack { up_to: expect, proto: None }
        );
    }
    write_msg(&mut writer, &Frame::<u64>::Fin).unwrap();

    let pull = server.pull();
    let mut got = Vec::new();
    while let Some(item) = pull.recv_timeout(Duration::from_secs(2)) {
        got.push(item);
        if got.len() == 7 {
            break;
        }
    }
    assert_eq!(got, (1..=7).collect::<Vec<_>>(), "pipeline saw a duplicate or a gap");

    let stats = server.stats();
    assert_eq!(stats.accepted, 2, "one original connection plus one reconnect");
    assert_eq!(stats.items, 7, "exactly the de-duplicated item count");
    assert_eq!(stats.duplicates, 3, "the 3..=5 overlap, nothing else");
    assert_eq!(server.marks().get("c"), Some(&7));
    server.shutdown();
}

#[test]
fn gap_nack_rewinds_a_proto2_pusher_in_place() {
    // Generous heartbeat: the nack re-send window must not expire
    // between the two back-to-back gapped frames below.
    let cfg = NetConfig {
        heartbeat: Duration::from_secs(1),
        liveness: Duration::from_secs(5),
        ..fast_cfg()
    };
    let server = TcpPullServer::<u64>::bind("127.0.0.1:0", 64, cfg).unwrap();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_msg(
        &mut writer,
        &Frame::<u64>::HelloPush { client: "c".into(), resume_after: 0, proto: Some(2) },
    )
    .unwrap();
    assert_eq!(
        read_msg::<Frame<u64>>(&mut reader).unwrap(),
        Frame::Ack { up_to: 0, proto: Some(3) }
    );
    write_msg(&mut writer, &Frame::<u64>::Item { seq: 1, payload: 1 }).unwrap();
    assert_eq!(read_msg::<Frame<u64>>(&mut reader).unwrap(), Frame::Ack { up_to: 1, proto: None });

    // Seq 2 vanished in transit; two in-flight frames sail past the
    // gap. The server names the expected seq exactly once and drops
    // the too-high frames without acking them.
    write_msg(&mut writer, &Frame::<u64>::Item { seq: 3, payload: 3 }).unwrap();
    write_msg(&mut writer, &Frame::<u64>::Item { seq: 4, payload: 4 }).unwrap();
    assert_eq!(read_msg::<Frame<u64>>(&mut reader).unwrap(), Frame::Nack { expected: 2 });

    // The rewound retransmission is accepted on the same connection.
    for seq in 2..=4u64 {
        write_msg(&mut writer, &Frame::<u64>::Item { seq, payload: seq }).unwrap();
        assert_eq!(
            read_msg::<Frame<u64>>(&mut reader).unwrap(),
            Frame::Ack { up_to: seq, proto: None }
        );
    }
    write_msg(&mut writer, &Frame::<u64>::Fin).unwrap();

    let pull = server.pull();
    let mut got = Vec::new();
    while let Some(item) = pull.recv_timeout(Duration::from_secs(2)) {
        got.push(item);
        if got.len() == 4 {
            break;
        }
    }
    assert_eq!(got, vec![1, 2, 3, 4], "pipeline saw a duplicate or a gap");
    let stats = server.stats();
    assert_eq!(stats.nacks, 1, "one stalled mark draws exactly one nack");
    assert_eq!(stats.gap_rejects, 0, "a proto-2 gap must not kill the connection");
    assert_eq!(stats.items, 4);
    server.shutdown();
}

#[test]
fn gap_from_a_proto1_pusher_still_drops_the_connection() {
    let server = TcpPullServer::<u64>::bind("127.0.0.1:0", 64, fast_cfg()).unwrap();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_msg(
        &mut writer,
        &Frame::<u64>::HelloPush { client: "old".into(), resume_after: 0, proto: None },
    )
    .unwrap();
    assert_eq!(
        read_msg::<Frame<u64>>(&mut reader).unwrap(),
        Frame::Ack { up_to: 0, proto: Some(3) }
    );
    // A proto-1 client would not understand a Nack, so the gap policy
    // stays what it always was: kill the connection to force a resend.
    write_msg(&mut writer, &Frame::<u64>::Item { seq: 2, payload: 2 }).unwrap();
    assert!(read_msg::<Frame<u64>>(&mut reader).is_err(), "connection should be dropped");
    let stats = server.stats();
    assert_eq!(stats.gap_rejects, 1);
    assert_eq!(stats.nacks, 0);
    server.shutdown();
}

/// End to end: with send-side frame drops injected, the pusher recovers
/// via server nacks (in-place rewinds) — every item still arrives
/// exactly once, and at least one recovery took the fast path instead
/// of a liveness-timeout reconnect.
#[test]
fn dropped_frames_recover_via_fast_rewind() {
    let plan = std::sync::Arc::new(sdci_faults::FaultPlan::parse("seed=11,drop=0.08").unwrap());
    let server = TcpPullServer::<u64>::bind("127.0.0.1:0", 4096, fast_cfg()).unwrap();
    // One frame per item (no batching): enough frames on the wire that
    // the drop rate reliably opens a gap mid-stream.
    let push_cfg = NetConfig { max_batch: 1, ..fast_cfg() }.with_faults(Some(plan));
    let push = TcpPush::connect(server.local_addr(), "rewind", push_cfg);
    const N: u64 = 200;
    for i in 0..N {
        assert!(push.send(i));
    }
    assert!(push.drain(Duration::from_secs(60)), "acks never fully arrived");

    let pull = server.pull();
    let mut got = Vec::new();
    while let Some(item) = pull.recv_timeout(Duration::from_secs(5)) {
        got.push(item);
        if got.len() == N as usize {
            break;
        }
    }
    assert_eq!(got, (0..N).collect::<Vec<_>>(), "lost or reordered items");
    assert_eq!(server.stats().items, N);
    assert!(
        push.fast_rewinds() >= 1,
        "seed no longer exercises the nack fast path (rewinds = {})",
        push.fast_rewinds()
    );
    server.shutdown();
}
