//! Kill-the-feed integration: an [`EventConsumer`] reading the
//! Aggregator's feed over TCP keeps a consistent, ordered view across a
//! feed-server restart by backfilling the gap from the store (§4 step 3
//! fault tolerance, over real sockets).

use sdci_core::{Aggregator, EventConsumer};
use sdci_mq::pubsub::Broker;
use sdci_net::{NetConfig, RetryPolicy, TcpBroker, TcpSubscriber};
use sdci_types::{ChangelogKind, EventKind, Fid, FileEvent, MdtIndex, SimTime};
use std::path::PathBuf;
use std::time::Duration;

fn fast_cfg() -> NetConfig {
    NetConfig {
        hwm: 8192,
        window: 1024,
        retry: RetryPolicy { base: Duration::from_millis(10), max: Duration::from_millis(100) },
        heartbeat: Duration::from_millis(20),
        liveness: Duration::from_millis(500),
        ..NetConfig::default()
    }
}

fn event(i: u64) -> FileEvent {
    FileEvent {
        index: i,
        mdt: MdtIndex::new(0),
        changelog_kind: ChangelogKind::Create,
        kind: EventKind::Created,
        time: SimTime::from_nanos(i),
        path: PathBuf::from(format!("/feed/f{i}")),
        src_path: None,
        target: Fid::new(1, i as u32, 0),
        is_dir: false,
        extracted_unix_ns: None,
        trace: None,
    }
}

#[test]
fn consumer_backfills_events_published_while_the_feed_server_was_down() {
    let cfg = fast_cfg();
    // In-process aggregator; only the consumer feed crosses TCP here.
    let events = Broker::<FileEvent>::new(8192);
    let agg = Aggregator::start(events.subscribe(&["events/"]), 100_000, 8192);
    let publisher = events.publisher();

    let feed1 = TcpBroker::serve(agg.feed().clone(), "127.0.0.1:0", cfg.clone()).unwrap();
    let addr = feed1.local_addr();
    let feed_sub = TcpSubscriber::connect(addr, &["feed/"], cfg.clone());
    let mut consumer = EventConsumer::new(feed_sub, agg.store(), 0);

    const A: u64 = 50;
    for i in 1..=A {
        publisher.publish("events/mdt0", event(i));
    }
    let mut got = Vec::new();
    while got.len() < A as usize {
        let e = consumer.next_timeout(Duration::from_secs(5)).expect("live event");
        got.push(e.index);
    }
    assert_eq!(got, (1..=A).collect::<Vec<_>>());

    // Feed server dies. The aggregator keeps ingesting and storing.
    feed1.shutdown();
    const B: u64 = 50;
    for i in A + 1..=A + B {
        publisher.publish("events/mdt0", event(i));
    }
    // Wait for the aggregator to sequence all of batch 2 into the store.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while agg.snapshot().stored < A + B {
        assert!(std::time::Instant::now() < deadline, "aggregator never ingested batch 2");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Feed server restarts on the same port; the subscriber reconnects
    // on its own, hears a heartbeat with last_seq = A + B, and the
    // consumer heals the gap from the store.
    let feed2 = TcpBroker::serve(agg.feed().clone(), addr, cfg).unwrap();
    let mut got2 = Vec::new();
    while got2.len() < B as usize {
        let e = consumer
            .next_timeout(Duration::from_secs(10))
            .expect("backfilled event after reconnect");
        got2.push(e.index);
    }
    assert_eq!(got2, (A + 1..=A + B).collect::<Vec<_>>(), "gap must backfill in order");
    let stats = consumer.stats();
    assert_eq!(stats.delivered, A + B);
    assert_eq!(stats.lost, 0, "nothing may be lost across the restart");
    assert!(stats.recovered >= B, "batch 2 must come from the store, not the live feed");

    feed2.shutdown();
    agg.shutdown();
}
