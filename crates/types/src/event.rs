//! ChangeLog records and processed file events.
//!
//! The monitor pipeline transforms [`RawChangelogRecord`]s (FID-based rows
//! extracted from an MDT ChangeLog, §4 step 1) into [`FileEvent`]s
//! (path-resolved, consumer-friendly events, §4 step 2) which the
//! Aggregator stores and publishes (§4 step 3).

use crate::{Fid, MdtIndex, SimTime, TraceCarrier, TraceContext};
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::path::{Path, PathBuf};

/// The Lustre ChangeLog record type.
///
/// Codes and mnemonics match Lustre's `changelog_rec_type` as they appear
/// in `lfs changelog` output and in Table 1 of the paper (`01CREAT`,
/// `02MKDIR`, `06UNLNK`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are the Lustre mnemonics, documented as a group
pub enum ChangelogKind {
    Mark,
    Create,
    Mkdir,
    HardLink,
    SoftLink,
    Mknod,
    Unlink,
    Rmdir,
    Rename,
    RenameTarget,
    Open,
    Close,
    Layout,
    Truncate,
    SetAttr,
    SetXattr,
    Hsm,
    MtimeChange,
    CtimeChange,
    AtimeChange,
    Migrate,
}

impl ChangelogKind {
    /// All record kinds, in Lustre code order.
    pub const ALL: [ChangelogKind; 21] = [
        ChangelogKind::Mark,
        ChangelogKind::Create,
        ChangelogKind::Mkdir,
        ChangelogKind::HardLink,
        ChangelogKind::SoftLink,
        ChangelogKind::Mknod,
        ChangelogKind::Unlink,
        ChangelogKind::Rmdir,
        ChangelogKind::Rename,
        ChangelogKind::RenameTarget,
        ChangelogKind::Open,
        ChangelogKind::Close,
        ChangelogKind::Layout,
        ChangelogKind::Truncate,
        ChangelogKind::SetAttr,
        ChangelogKind::SetXattr,
        ChangelogKind::Hsm,
        ChangelogKind::MtimeChange,
        ChangelogKind::CtimeChange,
        ChangelogKind::AtimeChange,
        ChangelogKind::Migrate,
    ];

    /// The numeric Lustre record-type code (`Create` = 1, `Unlink` = 6...).
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// The five-character Lustre mnemonic (`CREAT`, `UNLNK`, ...).
    pub const fn mnemonic(self) -> &'static str {
        match self {
            ChangelogKind::Mark => "MARK",
            ChangelogKind::Create => "CREAT",
            ChangelogKind::Mkdir => "MKDIR",
            ChangelogKind::HardLink => "HLINK",
            ChangelogKind::SoftLink => "SLINK",
            ChangelogKind::Mknod => "MKNOD",
            ChangelogKind::Unlink => "UNLNK",
            ChangelogKind::Rmdir => "RMDIR",
            ChangelogKind::Rename => "RENME",
            ChangelogKind::RenameTarget => "RNMTO",
            ChangelogKind::Open => "OPEN",
            ChangelogKind::Close => "CLOSE",
            ChangelogKind::Layout => "LYOUT",
            ChangelogKind::Truncate => "TRUNC",
            ChangelogKind::SetAttr => "SATTR",
            ChangelogKind::SetXattr => "XATTR",
            ChangelogKind::Hsm => "HSM",
            ChangelogKind::MtimeChange => "MTIME",
            ChangelogKind::CtimeChange => "CTIME",
            ChangelogKind::AtimeChange => "ATIME",
            ChangelogKind::Migrate => "MIGRT",
        }
    }

    /// The `lfs changelog` type column: zero-padded code + mnemonic,
    /// e.g. `01CREAT`.
    pub fn type_column(self) -> String {
        format!("{:02}{}", self.code(), self.mnemonic())
    }

    /// Looks a kind up by its numeric code.
    pub fn from_code(code: u8) -> Option<ChangelogKind> {
        Self::ALL.get(code as usize).copied()
    }

    /// The high-level classification Ripple rules match against.
    pub const fn event_kind(self) -> EventKind {
        match self {
            ChangelogKind::Create
            | ChangelogKind::Mkdir
            | ChangelogKind::HardLink
            | ChangelogKind::SoftLink
            | ChangelogKind::Mknod => EventKind::Created,
            ChangelogKind::Unlink | ChangelogKind::Rmdir => EventKind::Deleted,
            ChangelogKind::Rename | ChangelogKind::RenameTarget => EventKind::Moved,
            ChangelogKind::Close
            | ChangelogKind::Layout
            | ChangelogKind::Truncate
            | ChangelogKind::MtimeChange
            | ChangelogKind::Migrate => EventKind::Modified,
            ChangelogKind::SetAttr
            | ChangelogKind::SetXattr
            | ChangelogKind::Hsm
            | ChangelogKind::CtimeChange
            | ChangelogKind::AtimeChange => EventKind::AttribChanged,
            ChangelogKind::Mark | ChangelogKind::Open => EventKind::Other,
        }
    }

    /// True for record kinds affecting directories.
    pub const fn is_directory_op(self) -> bool {
        matches!(self, ChangelogKind::Mkdir | ChangelogKind::Rmdir)
    }
}

impl fmt::Display for ChangelogKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// High-level file-event classification.
///
/// This is the vocabulary of Ripple triggers and of inotify-style
/// monitors (Watchdog reports created/modified/moved/deleted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A file, directory, or link came into existence.
    Created,
    /// File contents changed (writes observed via close/truncate/mtime).
    Modified,
    /// The object was renamed or moved.
    Moved,
    /// The object was removed.
    Deleted,
    /// Ownership, permissions, or extended attributes changed.
    AttribChanged,
    /// Anything else (opens, internal marks).
    Other,
}

impl EventKind {
    /// All high-level kinds.
    pub const ALL: [EventKind; 6] = [
        EventKind::Created,
        EventKind::Modified,
        EventKind::Moved,
        EventKind::Deleted,
        EventKind::AttribChanged,
        EventKind::Other,
    ];

    /// A stable numeric code (the kind's position in [`EventKind::ALL`]),
    /// used by the proto-3 binary payload encoding.
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Looks a kind up by its numeric code.
    pub fn from_code(code: u8) -> Option<EventKind> {
        Self::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::Created => "created",
            EventKind::Modified => "modified",
            EventKind::Moved => "moved",
            EventKind::Deleted => "deleted",
            EventKind::AttribChanged => "attrib",
            EventKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// One row of an MDT ChangeLog, exactly as Table 1 presents it: record
/// number, type, timestamp/datestamp (both derived from [`SimTime`]),
/// flags, target FID, parent FID, and target name.
///
/// FIDs are "not useful to external services" (§4) — the monitor's
/// processing stage resolves them into a [`FileEvent`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawChangelogRecord {
    /// Record number: monotonically increasing per MDT ChangeLog.
    pub index: u64,
    /// Record type.
    pub kind: ChangelogKind,
    /// Event time (virtual).
    pub time: SimTime,
    /// Lustre record flags (e.g. `0x1` on the final unlink of a file).
    pub flags: u32,
    /// FID of the object the event applies to.
    pub target: Fid,
    /// FID of the parent directory.
    pub parent: Fid,
    /// Name of the target within the parent directory.
    pub name: String,
}

impl RawChangelogRecord {
    /// Renders the record as an `lfs changelog` text line, the format of
    /// Table 1:
    ///
    /// ```text
    /// 13106 01CREAT 20:15:37.1138 2017.09.06 0x0 t=[0x200000402:0xa046:0x0] p=[0x200000007:0x1:0x0] data1.txt
    /// ```
    pub fn to_lfs_line(&self) -> String {
        format!(
            "{} {} {} {} {:#x} t={} p={} {}",
            self.index,
            self.kind.type_column(),
            self.time.timestamp_string(),
            self.time.datestamp_string(),
            self.flags,
            self.target,
            self.parent,
            self.name
        )
    }

    /// Approximate in-memory/wire footprint in bytes, used by the
    /// resource-accounting model (Table 3).
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.name.len()
    }
}

impl fmt::Display for RawChangelogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_lfs_line())
    }
}

/// A processed, path-resolved file event — what the Aggregator stores and
/// publishes to consumers such as Ripple agents.
///
/// Serde is implemented by hand (not derived) for one reason: the
/// `trace` field must be *omitted* when `None`, not serialized as
/// `null`, so unsampled events, old snapshot lines, and proto-1 wire
/// frames stay byte-identical to what the pre-tracing code emitted.
/// Every other field keeps the derive's exact layout (declaration
/// order, `Option`s as explicit `null`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEvent {
    /// ChangeLog record number on the originating MDT.
    pub index: u64,
    /// Which MDT the event was recorded on.
    pub mdt: MdtIndex,
    /// Low-level record type.
    pub changelog_kind: ChangelogKind,
    /// High-level classification (derived from `changelog_kind`).
    pub kind: EventKind,
    /// Event time (virtual).
    pub time: SimTime,
    /// Absolute path of the affected object.
    pub path: PathBuf,
    /// For renames: the absolute source path.
    pub src_path: Option<PathBuf>,
    /// Target FID (kept for consumers that need stable identity).
    pub target: Fid,
    /// True when the event applies to a directory.
    pub is_dir: bool,
    /// Wall-clock nanoseconds since the UNIX epoch when the collector
    /// extracted the underlying changelog record. Travels with the
    /// event across process boundaries so downstream stages can compute
    /// end-to-end delivery latency (the paper's Fig. 5/6 metric).
    /// `None` for events that predate the field (e.g. old snapshot
    /// lines) or synthetic events built outside the extraction path.
    pub extracted_unix_ns: Option<u64>,
    /// Distributed-tracing context, attached at extraction when the
    /// event was head-sampled and re-parented at each recorded span so
    /// every hop links to the one before it. `None` (the overwhelmingly
    /// common case) is omitted from the serialized form entirely.
    pub trace: Option<TraceContext>,
}

impl FileEvent {
    /// Builds the processed event for `record`, given the resolved
    /// absolute path of its target.
    pub fn from_record(record: &RawChangelogRecord, mdt: MdtIndex, path: PathBuf) -> FileEvent {
        FileEvent {
            index: record.index,
            mdt,
            changelog_kind: record.kind,
            kind: record.kind.event_kind(),
            time: record.time,
            path,
            src_path: None,
            target: record.target,
            is_dir: record.kind.is_directory_op(),
            extracted_unix_ns: None,
            trace: None,
        }
    }

    /// Sets the extraction wall-clock stamp (builder style).
    pub fn with_extracted_unix_ns(mut self, ns: u64) -> FileEvent {
        self.extracted_unix_ns = Some(ns);
        self
    }

    /// Sets the tracing context (builder style).
    pub fn with_trace(mut self, ctx: TraceContext) -> FileEvent {
        self.trace = Some(ctx);
        self
    }

    /// The absolute path of the affected object.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Approximate in-memory/wire footprint in bytes, used by the
    /// resource-accounting model (Table 3).
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.path.as_os_str().len()
            + self.src_path.as_ref().map_or(0, |p| p.as_os_str().len())
    }
}

impl fmt::Display for FileEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} mdt{} #{} {}",
            self.time,
            self.kind,
            self.mdt.as_u32(),
            self.index,
            self.path.display()
        )?;
        if let Some(src) = &self.src_path {
            write!(f, " (from {})", src.display())?;
        }
        Ok(())
    }
}

impl TraceCarrier for FileEvent {
    fn trace_context(&self) -> Option<TraceContext> {
        self.trace
    }

    fn set_trace_context(&mut self, ctx: Option<TraceContext>) {
        self.trace = ctx;
    }
}

impl Serialize for FileEvent {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("index".to_string(), self.index.to_value()),
            ("mdt".to_string(), self.mdt.to_value()),
            ("changelog_kind".to_string(), self.changelog_kind.to_value()),
            ("kind".to_string(), self.kind.to_value()),
            ("time".to_string(), self.time.to_value()),
            ("path".to_string(), self.path.to_value()),
            ("src_path".to_string(), self.src_path.to_value()),
            ("target".to_string(), self.target.to_value()),
            ("is_dir".to_string(), self.is_dir.to_value()),
            ("extracted_unix_ns".to_string(), self.extracted_unix_ns.to_value()),
        ];
        // Omitted-when-None: unsampled events serialize exactly as they
        // did before the field existed.
        if let Some(trace) = &self.trace {
            fields.push(("trace".to_string(), trace.to_value()));
        }
        Value::Map(fields)
    }
}

fn event_field<T: Deserialize>(map: &Value, name: &str) -> Result<T, DeError> {
    T::from_value(map.get(name).unwrap_or(&Value::Null))
        .map_err(|e| DeError::msg(format!("FileEvent.{name}: {e}")))
}

impl Deserialize for FileEvent {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(FileEvent {
            index: event_field(value, "index")?,
            mdt: event_field(value, "mdt")?,
            changelog_kind: event_field(value, "changelog_kind")?,
            kind: event_field(value, "kind")?,
            time: event_field(value, "time")?,
            path: event_field(value, "path")?,
            src_path: event_field(value, "src_path")?,
            target: event_field(value, "target")?,
            is_dir: event_field(value, "is_dir")?,
            extracted_unix_ns: event_field(value, "extracted_unix_ns")?,
            // A missing key reads as None, so events serialized before
            // the field existed (old snapshots, proto-1 peers)
            // deserialize cleanly with no context.
            trace: event_field(value, "trace")?,
        })
    }
}

/// Binary layout: fields in declaration order using the [`crate::bin`]
/// primitives — fixed LE integers, one-byte enum codes
/// ([`ChangelogKind::code`], [`EventKind::code`]), length-prefixed path
/// strings, and one-byte presence tags for the three `Option` fields
/// (the binary twin of the JSON format's omitted-when-`None` `trace`).
impl crate::bin::BinPayload for FileEvent {
    fn encode_bin(&self, buf: &mut Vec<u8>) {
        self.index.encode_bin(buf);
        self.mdt.encode_bin(buf);
        buf.push(self.changelog_kind.code());
        buf.push(self.kind.code());
        self.time.encode_bin(buf);
        self.path.encode_bin(buf);
        self.src_path.encode_bin(buf);
        self.target.encode_bin(buf);
        self.is_dir.encode_bin(buf);
        self.extracted_unix_ns.encode_bin(buf);
        self.trace.encode_bin(buf);
    }

    fn decode_bin(r: &mut crate::bin::BinReader<'_>) -> Result<Self, crate::bin::BinDecodeError> {
        use crate::bin::BinDecodeError;
        Ok(FileEvent {
            index: u64::decode_bin(r)?,
            mdt: MdtIndex::decode_bin(r)?,
            changelog_kind: {
                let code = r.u8()?;
                ChangelogKind::from_code(code).ok_or_else(|| {
                    BinDecodeError::msg(format!("invalid ChangelogKind code {code}"))
                })?
            },
            kind: {
                let code = r.u8()?;
                EventKind::from_code(code)
                    .ok_or_else(|| BinDecodeError::msg(format!("invalid EventKind code {code}")))?
            },
            time: SimTime::decode_bin(r)?,
            path: PathBuf::decode_bin(r)?,
            src_path: Option::<PathBuf>::decode_bin(r)?,
            target: Fid::decode_bin(r)?,
            is_dir: bool::decode_bin(r)?,
            extracted_unix_ns: Option::<u64>::decode_bin(r)?,
            trace: Option::<TraceContext>::decode_bin(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    fn sample_record() -> RawChangelogRecord {
        RawChangelogRecord {
            index: 13106,
            kind: ChangelogKind::Create,
            time: SimTime::EPOCH
                + SimDuration::from_secs(20 * 3600 + 15 * 60 + 37)
                + SimDuration::from_millis(113)
                + SimDuration::from_micros(800),
            flags: 0x0,
            target: Fid::new(0x200000402, 0xa046, 0),
            parent: Fid::ROOT,
            name: "data1.txt".into(),
        }
    }

    #[test]
    fn type_column_matches_table1() {
        assert_eq!(ChangelogKind::Create.type_column(), "01CREAT");
        assert_eq!(ChangelogKind::Mkdir.type_column(), "02MKDIR");
        assert_eq!(ChangelogKind::Unlink.type_column(), "06UNLNK");
    }

    #[test]
    fn codes_are_lustre_codes() {
        assert_eq!(ChangelogKind::Mark.code(), 0);
        assert_eq!(ChangelogKind::Create.code(), 1);
        assert_eq!(ChangelogKind::Unlink.code(), 6);
        assert_eq!(ChangelogKind::Rename.code(), 8);
        assert_eq!(ChangelogKind::SetAttr.code(), 14);
        assert_eq!(ChangelogKind::Migrate.code(), 20);
    }

    #[test]
    fn from_code_roundtrips() {
        for kind in ChangelogKind::ALL {
            assert_eq!(ChangelogKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(ChangelogKind::from_code(21), None);
    }

    #[test]
    fn lfs_line_matches_table1_row() {
        assert_eq!(
            sample_record().to_lfs_line(),
            "13106 01CREAT 20:15:37.1138 2017.09.06 0x0 \
             t=[0x200000402:0xa046:0x0] p=[0x200000007:0x1:0x0] data1.txt"
        );
    }

    #[test]
    fn event_kind_classification() {
        assert_eq!(ChangelogKind::Create.event_kind(), EventKind::Created);
        assert_eq!(ChangelogKind::Mkdir.event_kind(), EventKind::Created);
        assert_eq!(ChangelogKind::Unlink.event_kind(), EventKind::Deleted);
        assert_eq!(ChangelogKind::Rmdir.event_kind(), EventKind::Deleted);
        assert_eq!(ChangelogKind::Rename.event_kind(), EventKind::Moved);
        assert_eq!(ChangelogKind::Close.event_kind(), EventKind::Modified);
        assert_eq!(ChangelogKind::SetAttr.event_kind(), EventKind::AttribChanged);
    }

    #[test]
    fn file_event_from_record() {
        let rec = sample_record();
        let ev = FileEvent::from_record(&rec, MdtIndex::new(0), PathBuf::from("/data1.txt"));
        assert_eq!(ev.kind, EventKind::Created);
        assert_eq!(ev.index, rec.index);
        assert_eq!(ev.path(), Path::new("/data1.txt"));
        assert!(!ev.is_dir);
        assert!(ev.to_string().contains("/data1.txt"));
    }

    #[test]
    fn serde_roundtrip() {
        let rec = sample_record();
        let json = serde_json::to_string(&rec).unwrap();
        assert_eq!(serde_json::from_str::<RawChangelogRecord>(&json).unwrap(), rec);
        let ev = FileEvent::from_record(&rec, MdtIndex::new(2), PathBuf::from("/a/b"));
        let json = serde_json::to_string(&ev).unwrap();
        assert_eq!(serde_json::from_str::<FileEvent>(&json).unwrap(), ev);
    }

    #[test]
    fn trace_field_is_omitted_when_none_and_roundtrips_when_some() {
        let rec = sample_record();
        let ev = FileEvent::from_record(&rec, MdtIndex::new(0), PathBuf::from("/a"));
        let json = serde_json::to_string(&ev).unwrap();
        assert!(!json.contains("trace"), "None must be omitted, not null: {json}");

        let traced = ev.clone().with_trace(TraceContext::sampled(0xabc, 7));
        let json = serde_json::to_string(&traced).unwrap();
        assert!(json.contains("\"trace\""), "Some must serialize: {json}");
        assert_eq!(serde_json::from_str::<FileEvent>(&json).unwrap(), traced);

        // A pre-tracing serialized event (no trace key at all) must
        // deserialize with trace: None.
        let legacy = serde_json::to_string(&ev).unwrap();
        assert_eq!(serde_json::from_str::<FileEvent>(&legacy).unwrap().trace, None);
    }

    #[test]
    fn event_kind_codes_roundtrip() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(EventKind::from_code(6), None);
    }

    #[test]
    fn binary_event_roundtrips_and_packs_denser_than_json() {
        use crate::bin::{BinPayload, BinReader};
        let rec = sample_record();
        let mut ev = FileEvent::from_record(&rec, MdtIndex::new(2), PathBuf::from("/a/b.txt"));
        ev.src_path = Some(PathBuf::from("/a/old.txt"));
        ev = ev.with_extracted_unix_ns(123_456).with_trace(TraceContext::sampled(0xabc, 7));
        let mut buf = Vec::new();
        ev.encode_bin(&mut buf);
        let mut r = BinReader::new(&buf);
        assert_eq!(FileEvent::decode_bin(&mut r).unwrap(), ev);
        assert!(r.is_empty());
        let json = serde_json::to_string(&ev).unwrap();
        assert!(
            buf.len() * 2 < json.len(),
            "binary ({}) should be well under half of JSON ({})",
            buf.len(),
            json.len()
        );
    }

    #[test]
    fn binary_event_rejects_invalid_enum_codes() {
        use crate::bin::{BinPayload, BinReader};
        let ev = FileEvent::from_record(&sample_record(), MdtIndex::new(0), PathBuf::from("/x"));
        let mut buf = Vec::new();
        ev.encode_bin(&mut buf);
        // Byte 12 is the ChangelogKind code (after index u64 + mdt u32).
        buf[12] = 99;
        assert!(FileEvent::decode_bin(&mut BinReader::new(&buf)).is_err());
    }

    #[test]
    fn footprints_are_positive_and_grow_with_names() {
        let mut rec = sample_record();
        let small = rec.footprint_bytes();
        rec.name = "x".repeat(100);
        assert!(rec.footprint_bytes() > small);
    }
}
