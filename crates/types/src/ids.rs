//! Newtype identifiers for the components of the system.
//!
//! Using distinct types for MDT indices, collector ids, rule ids, and so on
//! prevents the classic "which u32 was this again?" class of bug when the
//! monitor cluster wires many components together.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! index_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// The raw index.
            pub const fn as_u32(self) -> u32 {
                self.0
            }

            /// The raw index as a usize (for direct slice indexing).
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl From<$name> for u32 {
            fn from(v: $name) -> u32 {
                v.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

index_newtype! {
    /// Index of a MetaData Target (one per metadata server in the
    /// simulated Lustre deployment). Displays as Lustre does: `MDT0003`
    /// is `MdtIndex::new(3)`.
    MdtIndex, "MDT"
}

index_newtype! {
    /// Index of an Object Storage Target.
    OstIndex, "OST"
}

index_newtype! {
    /// Identifier of a Collector service (the paper deploys exactly one
    /// per MDS).
    CollectorId, "collector-"
}

index_newtype! {
    /// Identifier of a consumer subscribed to the Aggregator (e.g. a
    /// Ripple agent).
    ConsumerId, "consumer-"
}

index_newtype! {
    /// Identifier of a pub-sub subscription inside the message fabric.
    SubscriptionId, "sub-"
}

/// Identifier of a Ripple agent deployed on a storage resource.
///
/// Agents are user-visible and user-named ("laptop", "alcf-lustre"), so
/// unlike the numeric component ids this is a string newtype.
#[derive(Debug, Default, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AgentId(String);

impl AgentId {
    /// Wraps an agent name.
    pub fn new(name: impl Into<String>) -> Self {
        AgentId(name.into())
    }

    /// The agent name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for AgentId {
    fn from(s: &str) -> Self {
        AgentId(s.to_owned())
    }
}

impl From<String> for AgentId {
    fn from(s: String) -> Self {
        AgentId(s)
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Identifier of a Ripple rule registered with the cloud service.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct RuleId(u64);

impl RuleId {
    /// Wraps a raw rule id.
    pub const fn new(id: u64) -> Self {
        RuleId(id)
    }

    /// The raw id.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(MdtIndex::new(3).to_string(), "MDT3");
        assert_eq!(OstIndex::new(0).to_string(), "OST0");
        assert_eq!(CollectorId::new(2).to_string(), "collector-2");
        assert_eq!(RuleId::new(7).to_string(), "rule-7");
        assert_eq!(AgentId::new("laptop").to_string(), "laptop");
    }

    #[test]
    fn conversions() {
        let m: MdtIndex = 5u32.into();
        assert_eq!(m.as_u32(), 5);
        assert_eq!(m.as_usize(), 5);
        assert_eq!(u32::from(m), 5);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(MdtIndex::new(1));
        set.insert(MdtIndex::new(1));
        set.insert(MdtIndex::new(2));
        assert_eq!(set.len(), 2);
        assert!(MdtIndex::new(1) < MdtIndex::new(2));
    }

    #[test]
    fn agent_id_from_string_types() {
        assert_eq!(AgentId::from("a"), AgentId::new("a"));
        assert_eq!(AgentId::from(String::from("a")).as_str(), "a");
    }
}
