//! Rates and sizes.
//!
//! The paper's headline measurements are event rates (Table 2, §5.2) and
//! memory footprints (Table 3, §3's inotify analysis). [`EventsPerSec`]
//! and [`ByteSize`] keep those quantities typed and render them the way
//! the paper reports them.

use crate::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// A rate in events per second.
///
/// # Example
///
/// ```
/// use sdci_types::{EventsPerSec, SimDuration};
///
/// let rate = EventsPerSec::from_count(9593, SimDuration::from_secs(1));
/// assert_eq!(rate.per_sec().round() as u64, 9593);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct EventsPerSec(f64);

impl EventsPerSec {
    /// The zero rate.
    pub const ZERO: EventsPerSec = EventsPerSec(0.0);

    /// Wraps a raw events-per-second value (negative values clamp to 0).
    pub fn new(per_sec: f64) -> Self {
        EventsPerSec(per_sec.max(0.0))
    }

    /// The rate implied by observing `count` events over `elapsed`.
    ///
    /// A zero elapsed time yields the zero rate rather than infinity, so
    /// degenerate measurements stay finite.
    pub fn from_count(count: u64, elapsed: SimDuration) -> Self {
        if elapsed.is_zero() {
            EventsPerSec::ZERO
        } else {
            EventsPerSec(count as f64 / elapsed.as_secs_f64())
        }
    }

    /// Events per second.
    pub fn per_sec(self) -> f64 {
        self.0
    }

    /// The percentage by which this rate falls short of `other`
    /// (the paper: Iota reporting is "14.91% lower than the maximum event
    /// generation rate"). Returns 0 when `other` is zero.
    pub fn percent_below(self, other: EventsPerSec) -> f64 {
        if other.0 <= 0.0 {
            0.0
        } else {
            ((other.0 - self.0) / other.0 * 100.0).max(0.0)
        }
    }

    /// Scales the rate by a factor (e.g. the paper's ×25 Aurora
    /// extrapolation).
    pub fn scale(self, factor: f64) -> EventsPerSec {
        EventsPerSec::new(self.0 * factor)
    }
}

impl Add for EventsPerSec {
    type Output = EventsPerSec;
    fn add(self, rhs: EventsPerSec) -> EventsPerSec {
        EventsPerSec(self.0 + rhs.0)
    }
}

impl AddAssign for EventsPerSec {
    fn add_assign(&mut self, rhs: EventsPerSec) {
        self.0 += rhs.0;
    }
}

impl Sum for EventsPerSec {
    fn sum<I: Iterator<Item = EventsPerSec>>(iter: I) -> EventsPerSec {
        iter.fold(EventsPerSec::ZERO, Add::add)
    }
}

impl fmt::Display for EventsPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} events/s", self.0)
    }
}

/// A size in bytes, rendered with binary prefixes.
///
/// # Example
///
/// ```
/// use sdci_types::ByteSize;
///
/// assert_eq!(ByteSize::from_mib(512).to_string(), "512.0 MiB");
/// assert_eq!(ByteSize::from_kib(1).as_bytes(), 1024);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// From raw bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// From KiB.
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * 1024)
    }

    /// From MiB.
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib * 1024 * 1024)
    }

    /// From GiB.
    pub const fn from_gib(gib: u64) -> Self {
        ByteSize(gib * 1024 * 1024 * 1024)
    }

    /// From TiB.
    pub const fn from_tib(tib: u64) -> Self {
        ByteSize(tib * 1024 * 1024 * 1024 * 1024)
    }

    /// From PiB.
    pub const fn from_pib(pib: u64) -> Self {
        ByteSize(pib * 1024 * 1024 * 1024 * 1024 * 1024)
    }

    /// Raw bytes.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Size in MiB as a float (Table 3 reports memory in MB).
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }

    /// Multiplies by a count, saturating.
    pub const fn saturating_mul(self, count: u64) -> ByteSize {
        ByteSize(self.0.saturating_mul(count))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        self.saturating_add(rhs)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const UNITS: [(&str, u64); 5] = [
            ("PiB", 1 << 50),
            ("TiB", 1 << 40),
            ("GiB", 1 << 30),
            ("MiB", 1 << 20),
            ("KiB", 1 << 10),
        ];
        for (unit, scale) in UNITS {
            if self.0 >= scale {
                return write!(f, "{:.1} {unit}", self.0 as f64 / scale as f64);
            }
        }
        write!(f, "{} B", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_from_count() {
        let r = EventsPerSec::from_count(1366, SimDuration::from_secs(1));
        assert!((r.per_sec() - 1366.0).abs() < 1e-9);
        let r = EventsPerSec::from_count(100, SimDuration::from_millis(500));
        assert!((r.per_sec() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn rate_zero_elapsed_is_zero() {
        assert_eq!(EventsPerSec::from_count(100, SimDuration::ZERO), EventsPerSec::ZERO);
    }

    #[test]
    fn percent_below_matches_paper_math() {
        // Iota: 8162 reported vs 9593 generated => 14.91% lower.
        let gap = EventsPerSec::new(8162.0).percent_below(EventsPerSec::new(9593.0));
        assert!((gap - 14.91).abs() < 0.02, "gap was {gap}");
        assert_eq!(EventsPerSec::new(5.0).percent_below(EventsPerSec::ZERO), 0.0);
    }

    #[test]
    fn rate_sum_and_scale() {
        let total: EventsPerSec = [352.0, 534.0, 832.0].into_iter().map(EventsPerSec::new).sum();
        assert!((total.per_sec() - 1718.0).abs() < 1e-9);
        assert!((EventsPerSec::new(127.13).scale(25.0).per_sec() - 3178.25).abs() < 1e-9);
    }

    #[test]
    fn byte_size_constructors() {
        assert_eq!(ByteSize::from_kib(1).as_bytes(), 1024);
        assert_eq!(ByteSize::from_mib(1).as_bytes(), 1 << 20);
        assert_eq!(ByteSize::from_gib(1).as_bytes(), 1 << 30);
        assert_eq!(ByteSize::from_tib(1).as_bytes(), 1 << 40);
        assert_eq!(ByteSize::from_pib(1).as_bytes(), 1 << 50);
    }

    #[test]
    fn byte_size_display() {
        assert_eq!(ByteSize::from_bytes(100).to_string(), "100 B");
        assert_eq!(ByteSize::from_kib(2).to_string(), "2.0 KiB");
        assert_eq!(ByteSize::from_mib(512).to_string(), "512.0 MiB");
        assert_eq!(ByteSize::from_pib(7).to_string(), "7.0 PiB");
    }

    #[test]
    fn inotify_watch_memory_example() {
        // §3: 1 KiB per watch × 524,288 directories > 512 MiB.
        let total = ByteSize::from_kib(1).saturating_mul(524_288);
        assert_eq!(total, ByteSize::from_mib(512));
        assert!((total.as_mib_f64() - 512.0).abs() < 1e-9);
    }
}
