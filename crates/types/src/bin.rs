//! Proto-3 binary payload encoding.
//!
//! The JSON wire format (see `sdci-net::wire`) keeps every frame
//! `nc`-debuggable, but hot-path batches pay for it: every event is
//! rendered through a `Value` tree and re-parsed on receive. Proto-3
//! sessions instead carry batch payloads in this compact binary form:
//!
//! * fixed-width **little-endian** integers (`u8`/`u32`/`u64`),
//! * length-prefixed byte strings (`u32` LE length + raw UTF-8 bytes),
//! * optional sections as a one-byte presence tag (`0` absent,
//!   `1` present) followed by the value — the binary twin of the JSON
//!   format's omitted-when-`None` fields,
//! * sequences as a `u32` LE count followed by the items.
//!
//! [`BinPayload`] is deliberately *not* the vendored serde: the Value
//! tree is exactly the allocation cost proto-3 exists to avoid, so
//! encoding appends straight to a caller-owned scratch buffer and
//! decoding borrows from the received frame via [`BinReader`]. Both
//! sides are infallible on well-formed input and reject truncated or
//! trailing bytes with a [`BinDecodeError`].
//!
//! The scratch-buffer design is what makes the broker's encode-once
//! fan-out cheap on the deliver direction too: a `DeliverBatch` run is
//! rendered through one encoder into one frozen byte buffer that every
//! same-proto subscriber leg then shares by reference — the encode
//! cost is paid once per run, not once per subscriber.

use crate::{Fid, MdtIndex, SimTime, TraceContext};
use std::fmt;
use std::path::PathBuf;

/// A malformed binary payload: truncated field, invalid enum code,
/// non-UTF-8 string bytes, or trailing garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinDecodeError(String);

impl BinDecodeError {
    /// Builds an error from any displayable message.
    pub fn msg(msg: impl fmt::Display) -> BinDecodeError {
        BinDecodeError(msg.to_string())
    }
}

impl fmt::Display for BinDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "binary payload: {}", self.0)
    }
}

impl std::error::Error for BinDecodeError {}

/// A cursor over a received binary payload. All reads are bounds-checked
/// and borrow from the underlying frame; nothing is copied until a field
/// needs an owned value.
#[derive(Debug)]
pub struct BinReader<'a> {
    buf: &'a [u8],
}

impl<'a> BinReader<'a> {
    /// Wraps a payload slice.
    pub fn new(buf: &'a [u8]) -> BinReader<'a> {
        BinReader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// True when every byte has been consumed — decoders check this to
    /// reject trailing garbage.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinDecodeError> {
        if self.buf.len() < n {
            return Err(BinDecodeError::msg(format!(
                "truncated: need {n} bytes, have {}",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, BinDecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, BinDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, BinDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], BinDecodeError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, BinDecodeError> {
        std::str::from_utf8(self.bytes()?).map_err(BinDecodeError::msg)
    }
}

/// Appends a `u32`-length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(bytes);
}

/// A type with a proto-3 binary form. Encoding appends to a reusable
/// scratch buffer; decoding reads from a [`BinReader`] positioned at the
/// value's first byte.
pub trait BinPayload: Sized {
    /// Appends the binary encoding of `self` to `buf`.
    fn encode_bin(&self, buf: &mut Vec<u8>);

    /// Decodes one value, consuming exactly its bytes from `r`.
    ///
    /// # Errors
    ///
    /// Returns [`BinDecodeError`] on truncated fields, invalid enum
    /// codes, or non-UTF-8 string bytes.
    fn decode_bin(r: &mut BinReader<'_>) -> Result<Self, BinDecodeError>;
}

impl BinPayload for u64 {
    fn encode_bin(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }

    fn decode_bin(r: &mut BinReader<'_>) -> Result<Self, BinDecodeError> {
        r.u64()
    }
}

impl BinPayload for u32 {
    fn encode_bin(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }

    fn decode_bin(r: &mut BinReader<'_>) -> Result<Self, BinDecodeError> {
        r.u32()
    }
}

impl BinPayload for bool {
    fn encode_bin(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }

    fn decode_bin(r: &mut BinReader<'_>) -> Result<Self, BinDecodeError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(BinDecodeError::msg(format!("invalid bool byte {other}"))),
        }
    }
}

impl BinPayload for String {
    fn encode_bin(&self, buf: &mut Vec<u8>) {
        put_bytes(buf, self.as_bytes());
    }

    fn decode_bin(r: &mut BinReader<'_>) -> Result<Self, BinDecodeError> {
        Ok(r.str()?.to_string())
    }
}

/// Paths cross the wire as UTF-8, matching the JSON format (the vendored
/// serde renders them through `Value::Str`); monitor paths come from the
/// simulation and are always valid UTF-8.
impl BinPayload for PathBuf {
    fn encode_bin(&self, buf: &mut Vec<u8>) {
        put_bytes(buf, self.to_string_lossy().as_bytes());
    }

    fn decode_bin(r: &mut BinReader<'_>) -> Result<Self, BinDecodeError> {
        Ok(PathBuf::from(r.str()?))
    }
}

impl BinPayload for () {
    fn encode_bin(&self, _buf: &mut Vec<u8>) {}

    fn decode_bin(_r: &mut BinReader<'_>) -> Result<Self, BinDecodeError> {
        Ok(())
    }
}

impl<T: BinPayload> BinPayload for Option<T> {
    fn encode_bin(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode_bin(buf);
            }
        }
    }

    fn decode_bin(r: &mut BinReader<'_>) -> Result<Self, BinDecodeError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_bin(r)?)),
            other => Err(BinDecodeError::msg(format!("invalid option tag {other}"))),
        }
    }
}

impl<T: BinPayload> BinPayload for Vec<T> {
    fn encode_bin(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for item in self {
            item.encode_bin(buf);
        }
    }

    fn decode_bin(r: &mut BinReader<'_>) -> Result<Self, BinDecodeError> {
        let count = r.u32()? as usize;
        // Guard the pre-allocation against a hostile count: the frame
        // cannot hold more items than it has bytes.
        let mut items = Vec::with_capacity(count.min(r.remaining()));
        for _ in 0..count {
            items.push(T::decode_bin(r)?);
        }
        Ok(items)
    }
}

impl BinPayload for SimTime {
    fn encode_bin(&self, buf: &mut Vec<u8>) {
        self.as_nanos().encode_bin(buf);
    }

    fn decode_bin(r: &mut BinReader<'_>) -> Result<Self, BinDecodeError> {
        Ok(SimTime::from_nanos(r.u64()?))
    }
}

impl BinPayload for MdtIndex {
    fn encode_bin(&self, buf: &mut Vec<u8>) {
        self.as_u32().encode_bin(buf);
    }

    fn decode_bin(r: &mut BinReader<'_>) -> Result<Self, BinDecodeError> {
        Ok(MdtIndex::new(r.u32()?))
    }
}

impl BinPayload for Fid {
    fn encode_bin(&self, buf: &mut Vec<u8>) {
        self.seq.encode_bin(buf);
        self.oid.encode_bin(buf);
        self.ver.encode_bin(buf);
    }

    fn decode_bin(r: &mut BinReader<'_>) -> Result<Self, BinDecodeError> {
        Ok(Fid { seq: r.u64()?, oid: r.u32()?, ver: r.u32()? })
    }
}

impl BinPayload for TraceContext {
    fn encode_bin(&self, buf: &mut Vec<u8>) {
        self.trace_id.encode_bin(buf);
        self.parent_span_id.encode_bin(buf);
        self.sampled.encode_bin(buf);
    }

    fn decode_bin(r: &mut BinReader<'_>) -> Result<Self, BinDecodeError> {
        Ok(TraceContext {
            trace_id: r.u64()?,
            parent_span_id: r.u64()?,
            sampled: bool::decode_bin(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: BinPayload + PartialEq + fmt::Debug>(value: T) {
        let mut buf = Vec::new();
        value.encode_bin(&mut buf);
        let mut r = BinReader::new(&buf);
        assert_eq!(T::decode_bin(&mut r).unwrap(), value);
        assert!(r.is_empty(), "decoder must consume exactly the encoding");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(7u32);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("héllo/wörld"));
        roundtrip(String::new());
        roundtrip(PathBuf::from("/data/run7/out.txt"));
        roundtrip(Option::<u64>::None);
        roundtrip(Some(42u64));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(SimTime::from_nanos(123_456_789));
        roundtrip(MdtIndex::new(3));
        roundtrip(Fid { seq: 0x200000402, oid: 0xa046, ver: 0 });
        roundtrip(TraceContext::sampled(0xabcd, 0x1234));
    }

    #[test]
    fn integers_are_little_endian_fixed_width() {
        let mut buf = Vec::new();
        0x0102_0304_0506_0708u64.encode_bin(&mut buf);
        assert_eq!(buf, [0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        buf.clear();
        0x0A0B_0C0Du32.encode_bin(&mut buf);
        assert_eq!(buf, [0x0D, 0x0C, 0x0B, 0x0A]);
    }

    #[test]
    fn strings_are_length_prefixed() {
        let mut buf = Vec::new();
        String::from("ab").encode_bin(&mut buf);
        assert_eq!(buf, [2, 0, 0, 0, b'a', b'b']);
    }

    #[test]
    fn truncation_and_bad_tags_are_errors() {
        assert!(u64::decode_bin(&mut BinReader::new(&[1, 2, 3])).is_err());
        assert!(bool::decode_bin(&mut BinReader::new(&[9])).is_err());
        assert!(Option::<u64>::decode_bin(&mut BinReader::new(&[2])).is_err());
        // String length prefix runs past the buffer.
        assert!(String::decode_bin(&mut BinReader::new(&[200, 0, 0, 0, b'x'])).is_err());
        // Hostile item count with no bytes behind it.
        assert!(Vec::<u64>::decode_bin(&mut BinReader::new(&[255, 255, 255, 255])).is_err());
        // Non-UTF-8 string bytes.
        assert!(String::decode_bin(&mut BinReader::new(&[1, 0, 0, 0, 0xFF])).is_err());
    }
}
