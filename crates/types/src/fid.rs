//! Lustre File IDentifiers.
//!
//! Lustre identifies every filesystem object by a FID — a
//! `(sequence, object id, version)` triple that is unique for the life of
//! the filesystem and independent of the object's path. ChangeLog records
//! reference objects only by FID (see Table 1 of the paper), which is why
//! the monitor's processing stage must run `fid2path` before events are
//! useful to external consumers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A Lustre File IDentifier.
///
/// Renders in Lustre's bracketed hex form:
///
/// ```
/// use sdci_types::Fid;
///
/// let fid = Fid::new(0x200000402, 0xa046, 0);
/// assert_eq!(fid.to_string(), "[0x200000402:0xa046:0x0]");
/// let parsed: Fid = "[0x200000402:0xa046:0x0]".parse()?;
/// assert_eq!(parsed, fid);
/// # Ok::<(), sdci_types::ParseFidError>(())
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Fid {
    /// Sequence number. Lustre assigns each client/MDT a range of
    /// sequences; the simulator assigns one sequence range per MDT.
    pub seq: u64,
    /// Object id within the sequence.
    pub oid: u32,
    /// Version (zero for all live objects).
    pub ver: u32,
}

impl Fid {
    /// The zero FID, used by Lustre to mean "no object".
    pub const ZERO: Fid = Fid { seq: 0, oid: 0, ver: 0 };

    /// The root FID of a Lustre filesystem (`[0x200000007:0x1:0x0]`),
    /// matching the parent FID of root-level entries in Table 1.
    pub const ROOT: Fid = Fid { seq: 0x200000007, oid: 0x1, ver: 0 };

    /// Creates a FID from its components.
    pub const fn new(seq: u64, oid: u32, ver: u32) -> Self {
        Fid { seq, oid, ver }
    }

    /// True for the "no object" FID.
    pub const fn is_zero(self) -> bool {
        self.seq == 0 && self.oid == 0 && self.ver == 0
    }
}

impl fmt::Display for Fid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}:{:#x}:{:#x}]", self.seq, self.oid, self.ver)
    }
}

/// Error returned when parsing a [`Fid`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFidError {
    input: String,
}

impl fmt::Display for ParseFidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid FID syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseFidError {}

impl FromStr for Fid {
    type Err = ParseFidError;

    /// Parses `[0xSEQ:0xOID:0xVER]` (brackets optional).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseFidError { input: s.to_owned() };
        let inner = s.trim().trim_start_matches('[').trim_end_matches(']');
        let mut parts = inner.split(':');
        let mut next_hex = |max: u64| -> Result<u64, ParseFidError> {
            let part = parts.next().ok_or_else(err)?.trim();
            let digits =
                part.strip_prefix("0x").or_else(|| part.strip_prefix("0X")).unwrap_or(part);
            let v = u64::from_str_radix(digits, 16).map_err(|_| err())?;
            if v > max {
                return Err(err());
            }
            Ok(v)
        };
        let seq = next_hex(u64::MAX)?;
        let oid = next_hex(u32::MAX as u64)? as u32;
        let ver = next_hex(u32::MAX as u64)? as u32;
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(Fid { seq, oid, ver })
    }
}

/// An allocator handing out FIDs from a private sequence range.
///
/// Each simulated MDT owns one `FidSequence`, mirroring Lustre's
/// sequence-controller design: FIDs minted by different MDTs can never
/// collide because their sequence ranges are disjoint.
///
/// # Example
///
/// ```
/// use sdci_types::FidSequence;
///
/// let mut seq = FidSequence::for_mdt(0);
/// let a = seq.next_fid();
/// let b = seq.next_fid();
/// assert_ne!(a, b);
/// assert_eq!(a.seq, b.seq);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FidSequence {
    seq: u64,
    next_oid: u32,
}

impl FidSequence {
    /// Base of the normal-FID sequence space (mirrors Lustre's
    /// `FID_SEQ_NORMAL` = 0x200000400).
    pub const NORMAL_BASE: u64 = 0x2_0000_0400;

    /// The sequence allocator for MDT `index`.
    pub const fn for_mdt(index: u32) -> Self {
        // One sequence per MDT, spaced well apart so ranges stay disjoint
        // even if a future revision mints multiple sequences per MDT.
        FidSequence { seq: Self::NORMAL_BASE + (index as u64) * 0x1_0000, next_oid: 1 }
    }

    /// Mints the next FID in this sequence.
    ///
    /// # Panics
    ///
    /// Panics after `u32::MAX` allocations from one sequence (a real MDT
    /// would roll to a fresh sequence; the simulator treats exhaustion as
    /// a configuration error).
    pub fn next_fid(&mut self) -> Fid {
        let oid = self.next_oid;
        self.next_oid = self.next_oid.checked_add(1).expect("FID sequence exhausted");
        Fid { seq: self.seq, oid, ver: 0 }
    }

    /// The sequence number this allocator mints from.
    pub const fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of FIDs minted so far.
    pub const fn minted(&self) -> u64 {
        (self.next_oid - 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_table1_format() {
        assert_eq!(Fid::new(0x200000402, 0xa046, 0).to_string(), "[0x200000402:0xa046:0x0]");
        assert_eq!(Fid::ROOT.to_string(), "[0x200000007:0x1:0x0]");
    }

    #[test]
    fn parse_roundtrip() {
        for fid in [Fid::ZERO, Fid::ROOT, Fid::new(0x61b4, 0xca2c7dde, 0x2)] {
            assert_eq!(fid.to_string().parse::<Fid>().unwrap(), fid);
        }
    }

    #[test]
    fn parse_accepts_unbracketed() {
        assert_eq!("0x1:0x2:0x3".parse::<Fid>().unwrap(), Fid::new(1, 2, 3));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "[0x1:0x2]", "[1:2:3:4]", "[zz:0x1:0x0]", "[0x1:0x1ffffffff:0x0]"] {
            assert!(bad.parse::<Fid>().is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn sequences_for_distinct_mdts_are_disjoint() {
        let mut a = FidSequence::for_mdt(0);
        let mut b = FidSequence::for_mdt(1);
        let fa: Vec<Fid> = (0..100).map(|_| a.next_fid()).collect();
        let fb: Vec<Fid> = (0..100).map(|_| b.next_fid()).collect();
        for x in &fa {
            assert!(!fb.contains(x));
        }
    }

    #[test]
    fn sequence_mints_unique_fids() {
        let mut s = FidSequence::for_mdt(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(s.next_fid()));
        }
        assert_eq!(s.minted(), 1000);
    }

    #[test]
    fn zero_fid_is_zero() {
        assert!(Fid::ZERO.is_zero());
        assert!(!Fid::ROOT.is_zero());
    }
}
