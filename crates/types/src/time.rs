//! Virtual time.
//!
//! The paper's experiments are rate measurements (events per second) on two
//! hardware testbeds. Our reproduction replaces the testbeds with calibrated
//! performance profiles driving a discrete-event simulation, so all
//! timestamps in the system are *virtual*: nanoseconds since the simulation
//! epoch. [`SimTime`] is an instant, [`SimDuration`] a span. Both are thin
//! wrappers over `u64` nanoseconds with saturating arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use std::time::Duration;

/// A span of virtual time, in nanoseconds.
///
/// # Example
///
/// ```
/// use sdci_types::SimDuration;
///
/// let d = SimDuration::from_micros(1_500);
/// assert_eq!(d.as_nanos(), 1_500_000);
/// assert_eq!((d * 2).as_millis_f64(), 3.0);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    ///
    /// # Panics
    ///
    /// Panics on overflow (more than ~584,942 years).
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating on overflow.
    ///
    /// Negative or NaN inputs yield [`SimDuration::ZERO`].
    pub fn from_secs_f64(secs: f64) -> Self {
        // NaN and negative inputs both land here.
        if secs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos as u64)
        }
    }

    /// The duration of one operation at `rate` operations per second.
    ///
    /// Zero, negative, or NaN rates yield [`SimDuration::MAX`] (an operation
    /// that never completes).
    pub fn per_op(rate: f64) -> Self {
        // NaN and non-positive rates both mean "never completes".
        if rate.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            SimDuration::MAX
        } else {
            SimDuration::from_secs_f64(1.0 / rate)
        }
    }

    /// Total nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Total microseconds, truncating.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Total milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Total whole seconds, truncating.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a non-negative float, saturating.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl From<Duration> for SimDuration {
    fn from(d: Duration) -> Self {
        SimDuration(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl From<SimDuration> for Duration {
    fn from(d: SimDuration) -> Self {
        Duration::from_nanos(d.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics when `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

/// An instant of virtual time: nanoseconds since the simulation epoch.
///
/// The simulation epoch renders as `2017.09.06 00:00:00.0000` in ChangeLog
/// text output, matching the datestamps in Table 1 of the paper.
///
/// # Example
///
/// ```
/// use sdci_types::{SimDuration, SimTime};
///
/// let t = SimTime::EPOCH + SimDuration::from_secs(5);
/// assert_eq!(t.elapsed_since_epoch().as_secs(), 5);
/// assert!(t > SimTime::EPOCH);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (virtual time zero).
    pub const EPOCH: SimTime = SimTime(0);
    /// The end of virtual time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// An instant `nanos` nanoseconds after the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// An instant `secs` seconds after the epoch.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since the epoch.
    pub const fn elapsed_since_epoch(self) -> SimDuration {
        SimDuration(self.0)
    }

    /// Time elapsed since `earlier`, saturating to zero when `earlier` is
    /// in the future.
    pub const fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating instant + duration.
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Renders the wall-clock time-of-day component, `HH:MM:SS.ffff`,
    /// with the paper's four fractional digits (hundreds of microseconds).
    pub fn timestamp_string(self) -> String {
        let total_secs = self.0 / 1_000_000_000;
        let sub_100us = (self.0 % 1_000_000_000) / 100_000;
        let (h, m, s) = (total_secs / 3600 % 24, total_secs / 60 % 60, total_secs % 60);
        format!("{h:02}:{m:02}:{s:02}.{sub_100us:04}")
    }

    /// Renders the datestamp component, `YYYY.MM.DD`, counting days from
    /// the fixed epoch date 2017.09.06 used in Table 1.
    ///
    /// Month lengths follow the real calendar from September 2017 onward;
    /// this is presentation-only and has no effect on event semantics.
    pub fn datestamp_string(self) -> String {
        const DAYS_IN_MONTH: [u64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
        let mut days = self.0 / 1_000_000_000 / 86_400;
        let (mut year, mut month0, mut day) = (2017u64, 8u64, 6u64); // 2017 Sep 06
        while days > 0 {
            let leap = year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
            let len = if month0 == 1 && leap { 29 } else { DAYS_IN_MONTH[month0 as usize] };
            if day < len {
                day += 1;
            } else {
                day = 1;
                month0 += 1;
                if month0 == 12 {
                    month0 = 0;
                    year += 1;
                }
            }
            days -= 1;
        }
        format!("{year}.{:02}.{day:02}", month0 + 1)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.as_nanos()))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.timestamp_string(), self.datestamp_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5_000));
    }

    #[test]
    fn duration_float_roundtrip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_nanos(), 1_250_000_000);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn duration_from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn per_op_inverts_rate() {
        let d = SimDuration::per_op(1000.0);
        assert_eq!(d.as_micros(), 1_000);
        assert_eq!(SimDuration::per_op(0.0), SimDuration::MAX);
        assert_eq!(SimDuration::per_op(-5.0), SimDuration::MAX);
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(SimDuration::MAX + SimDuration::from_secs(1), SimDuration::MAX);
        assert_eq!(SimDuration::ZERO - SimDuration::from_secs(1), SimDuration::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn instant_duration_since_saturates() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(4);
        assert_eq!(a - b, SimDuration::from_secs(6));
        assert_eq!(b - a, SimDuration::ZERO);
    }

    #[test]
    fn timestamp_renders_paper_format() {
        // 20:15:37.1138 from Table 1: 20h 15m 37s + 113.8ms.
        let t = SimTime::from_nanos(((20 * 3600 + 15 * 60 + 37) * 1_000_000_000) + 113_800_000);
        assert_eq!(t.timestamp_string(), "20:15:37.1138");
        assert_eq!(t.datestamp_string(), "2017.09.06");
    }

    #[test]
    fn datestamp_advances_over_month_boundaries() {
        // 2017.09.06 + 25 days = 2017.10.01
        let t = SimTime::from_secs(25 * 86_400);
        assert_eq!(t.datestamp_string(), "2017.10.01");
        // + 120 days = 2018.01.04
        let t = SimTime::from_secs(120 * 86_400);
        assert_eq!(t.datestamp_string(), "2018.01.04");
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn std_duration_conversion() {
        let d: SimDuration = Duration::from_millis(7).into();
        assert_eq!(d.as_millis(), 7);
        let back: Duration = d.into();
        assert_eq!(back, Duration::from_millis(7));
    }
}
