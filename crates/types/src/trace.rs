//! Distributed-tracing context that travels *with* events.
//!
//! The tracer itself (span recording, sampling, the `/tracez` ring)
//! lives in `sdci-obs::trace`; this module holds only the vocabulary
//! that must cross crate and process boundaries: [`TraceContext`], the
//! causal link serialized onto [`FileEvent`](crate::FileEvent)s and
//! wire frames, and [`TraceCarrier`], the capability the net layer
//! uses to read, re-parent, or strip that link from a generic payload
//! without knowing its concrete type.
//!
//! A context is three words: the trace id (shared by every span of one
//! end-to-end story), the span id of the *producing* span (which the
//! next hop adopts as its parent), and the head-sampling decision made
//! once at the root. Contexts are only ever attached to sampled
//! events, so `sampled` is carried mostly for forward compatibility
//! with tail-based schemes.

use serde::{Deserialize, Serialize};

/// The causal link one pipeline hop hands to the next.
///
/// Serialized as a three-field JSON object wherever it travels; the
/// carrying field is omitted entirely when `None` (see
/// [`FileEvent`](crate::FileEvent)'s manual serde), so unsampled
/// traffic and proto-1 peers observe byte-identical wire frames and
/// snapshot lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// Identifier shared by every span of one end-to-end trace.
    pub trace_id: u64,
    /// Span id of the producing span: the parent of whatever span the
    /// receiving hop records.
    pub parent_span_id: u64,
    /// The head-sampling decision made at the trace root.
    pub sampled: bool,
}

impl TraceContext {
    /// A sampled context parented at (`trace_id`, `parent_span_id`).
    pub fn sampled(trace_id: u64, parent_span_id: u64) -> TraceContext {
        TraceContext { trace_id, parent_span_id, sampled: true }
    }
}

/// Payloads the net layer can inspect for a trace context.
///
/// Both methods default to "carries nothing", so plain test payloads
/// (`u64`, benchmark blobs) satisfy the bound for free; event-shaped
/// payloads override both. The setter exists so a sender falling back
/// to a proto-1 session can strip the context (the old peer would
/// *tolerate* the unknown field, but stripping keeps the fallback
/// frames byte-identical to what a proto-1 sender emits) and so
/// pipeline stages can re-parent an event at each recorded span.
pub trait TraceCarrier {
    /// The context this payload carries, if any.
    fn trace_context(&self) -> Option<TraceContext> {
        None
    }

    /// Replaces (or strips, with `None`) the carried context. The
    /// default is a no-op for payloads that carry nothing.
    fn set_trace_context(&mut self, _ctx: Option<TraceContext>) {}
}

/// Plain numeric test/bench payloads carry no context.
impl TraceCarrier for u64 {}
/// Unit payloads (handshake-only frames) carry no context.
impl TraceCarrier for () {}
/// String payloads carry no context.
impl TraceCarrier for String {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_roundtrips_through_serde() {
        let ctx = TraceContext::sampled(0xdead_beef_0123, 42);
        let json = serde_json::to_string(&ctx).unwrap();
        let back: TraceContext = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ctx);
        assert!(json.contains("\"trace_id\""), "named fields on the wire: {json}");
    }

    #[test]
    fn plain_payloads_carry_nothing() {
        let mut n = 7u64;
        assert_eq!(n.trace_context(), None);
        n.set_trace_context(Some(TraceContext::sampled(1, 2)));
        assert_eq!(n.trace_context(), None, "setter is a no-op on plain payloads");
    }
}
