//! Shared vocabulary types for the SDCI reproduction.
//!
//! This crate defines the data types that cross crate boundaries in the
//! reproduction of *"Toward Scalable Monitoring on Large-Scale Storage for
//! Software Defined Cyberinfrastructure"* (PDSW-DISCS'17):
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time used by the discrete-event
//!   simulation kernel and by ChangeLog timestamps.
//! * [`Fid`] — Lustre File IDentifiers, the opaque handles recorded in
//!   ChangeLog entries (`t=[0x200000402:0xa046:0x0]`).
//! * [`ChangelogKind`] and [`EventKind`] — the low-level Lustre record type
//!   (`01CREAT`, `06UNLNK`, ...) and the high-level classification used by
//!   Ripple rules (created / modified / deleted / ...).
//! * [`RawChangelogRecord`] — a ChangeLog row exactly as Table 1 of the
//!   paper shows it (FIDs, no paths).
//! * [`FileEvent`] — the processed, path-resolved event that the monitor
//!   publishes to subscribers such as Ripple agents.
//! * newtype identifiers ([`MdtIndex`], [`AgentId`], [`RuleId`], ...) and
//!   rate/size helpers ([`EventsPerSec`], [`ByteSize`]).
//!
//! # Example
//!
//! ```
//! use sdci_types::{ChangelogKind, Fid, RawChangelogRecord, SimTime};
//!
//! let rec = RawChangelogRecord {
//!     index: 13106,
//!     kind: ChangelogKind::Create,
//!     time: SimTime::from_secs(72937),
//!     flags: 0x0,
//!     target: Fid::new(0x200000402, 0xa046, 0),
//!     parent: Fid::new(0x200000007, 0x1, 0),
//!     name: "data1.txt".into(),
//! };
//! assert_eq!(rec.kind.code(), 1);
//! assert_eq!(rec.target.to_string(), "[0x200000402:0xa046:0x0]");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bin;
mod event;
mod fid;
mod ids;
mod rate;
mod time;
mod trace;

pub use bin::{BinDecodeError, BinPayload, BinReader};
pub use event::{ChangelogKind, EventKind, FileEvent, RawChangelogRecord};
pub use fid::{Fid, FidSequence, ParseFidError};
pub use ids::{AgentId, CollectorId, ConsumerId, MdtIndex, OstIndex, RuleId, SubscriptionId};
pub use rate::{ByteSize, EventsPerSec};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceCarrier, TraceContext};
