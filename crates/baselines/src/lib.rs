//! Baseline monitoring approaches the paper compares (or plans to
//! compare) against.
//!
//! * [`robinhood`] — a Robinhood-policy-engine-style collector:
//!   "a centralized approach to collecting and aggregating data events
//!   from Lustre file systems, where metadata is sequentially extracted
//!   from each metadata server by a single client" (§2), feeding a
//!   database that supports bulk policy queries (find stale files,
//!   usage reports). §6 lists a production comparison as future work;
//!   bench `a3_robinhood` performs the modelled version.
//! * [`polling`] — the crawl-and-diff approach Ripple explored before
//!   the ChangeLog monitor: "crawling and recording file system data is
//!   prohibitively expensive over large storage systems" (§3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod polling;
pub mod robinhood;

pub use polling::{PollingMonitor, PollingStats};
pub use robinhood::{
    CentralizedModel, CentralizedReport, FindCriteria, RobinhoodDb, RobinhoodScanner,
};
