//! The crawl-and-diff (polling) baseline.
//!
//! Before the ChangeLog monitor, Ripple "explored an alternative
//! approach using a polling technique to detect file system changes.
//! However, crawling and recording file system data is prohibitively
//! expensive over large storage systems." (§3)
//!
//! [`PollingMonitor`] snapshots the namespace on every poll and diffs it
//! against the previous snapshot. Every poll touches every entry, so the
//! cost per detected event grows with filesystem size — the scaling
//! failure bench `a5_inotify_limits` quantifies.

use sdci_types::{EventKind, SimTime};
use simfs::SimFs;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;

/// A change detected by diffing snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolledChange {
    /// What happened (created/modified/deleted; renames appear as
    /// delete + create — polling cannot correlate them).
    pub kind: EventKind,
    /// The affected path.
    pub path: PathBuf,
}

/// Cumulative polling costs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PollingStats {
    /// Polls performed.
    pub polls: u64,
    /// Namespace entries visited across all polls (the crawl cost).
    pub entries_visited: u64,
    /// Changes detected.
    pub changes_detected: u64,
}

impl PollingStats {
    /// Entries visited per detected change — the inefficiency measure
    /// (∞-like large when nothing changes on a big filesystem).
    pub fn visits_per_change(&self) -> f64 {
        if self.changes_detected == 0 {
            self.entries_visited as f64
        } else {
            self.entries_visited as f64 / self.changes_detected as f64
        }
    }
}

/// A crawl-and-diff monitor over a [`SimFs`] namespace.
///
/// # Example
///
/// ```
/// use sdci_baselines::PollingMonitor;
/// use sdci_types::{EventKind, SimTime};
/// use simfs::SimFs;
///
/// let mut fs = SimFs::new();
/// let mut monitor = PollingMonitor::primed(&fs);
/// fs.create("/new.txt", SimTime::from_secs(1))?;
/// let changes = monitor.poll(&fs);
/// assert_eq!(changes.len(), 1);
/// assert_eq!(changes[0].kind, EventKind::Created);
/// # Ok::<(), simfs::FsError>(())
/// ```
pub struct PollingMonitor {
    previous: HashMap<PathBuf, SimTime>,
    stats: PollingStats,
}

impl fmt::Debug for PollingMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PollingMonitor")
            .field("tracked", &self.previous.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for PollingMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl PollingMonitor {
    /// A monitor with no baseline snapshot (the first poll reports
    /// everything as created).
    pub fn new() -> Self {
        PollingMonitor { previous: HashMap::new(), stats: PollingStats::default() }
    }

    /// A monitor primed with the current state of `fs` (the initial
    /// crawl, charged to the stats).
    pub fn primed(fs: &SimFs) -> Self {
        let mut monitor = PollingMonitor::new();
        monitor.previous = monitor.crawl(fs);
        monitor
    }

    fn crawl(&mut self, fs: &SimFs) -> HashMap<PathBuf, SimTime> {
        let walked = fs.walk();
        self.stats.entries_visited += walked.len() as u64;
        walked.into_iter().map(|(path, stat)| (path, stat.mtime)).collect()
    }

    /// Crawls the namespace and returns changes since the previous poll.
    pub fn poll(&mut self, fs: &SimFs) -> Vec<PolledChange> {
        self.stats.polls += 1;
        let current = self.crawl(fs);
        let mut changes = Vec::new();
        for (path, mtime) in &current {
            match self.previous.get(path) {
                None => changes.push(PolledChange { kind: EventKind::Created, path: path.clone() }),
                Some(old) if old != mtime => {
                    changes.push(PolledChange { kind: EventKind::Modified, path: path.clone() })
                }
                Some(_) => {}
            }
        }
        for path in self.previous.keys() {
            if !current.contains_key(path) {
                changes.push(PolledChange { kind: EventKind::Deleted, path: path.clone() });
            }
        }
        changes.sort_by(|a, b| a.path.cmp(&b.path));
        self.stats.changes_detected += changes.len() as u64;
        self.previous = current;
        changes
    }

    /// Cumulative cost counters.
    pub fn stats(&self) -> PollingStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn detects_create_modify_delete() {
        let mut fs = SimFs::new();
        fs.mkdir("/d", t(0)).unwrap();
        fs.create("/d/a", t(0)).unwrap();
        let mut monitor = PollingMonitor::primed(&fs);

        fs.create("/d/b", t(1)).unwrap();
        fs.write("/d/a", 10, t(2)).unwrap();
        let changes = monitor.poll(&fs);
        // The create also bumps /d's mtime, so the directory shows up as
        // modified — polling cannot tell container churn from content.
        assert_eq!(
            changes,
            vec![
                PolledChange { kind: EventKind::Modified, path: "/d".into() },
                PolledChange { kind: EventKind::Modified, path: "/d/a".into() },
                PolledChange { kind: EventKind::Created, path: "/d/b".into() },
            ]
        );

        fs.unlink("/d/a", t(3)).unwrap();
        let changes = monitor.poll(&fs);
        assert_eq!(
            changes,
            vec![
                PolledChange { kind: EventKind::Modified, path: "/d".into() },
                PolledChange { kind: EventKind::Deleted, path: "/d/a".into() },
            ]
        );
    }

    #[test]
    fn misses_changes_between_polls() {
        // The fundamental polling blind spot: a file created and deleted
        // between polls is never seen, and N modifications collapse to
        // one.
        let mut fs = SimFs::new();
        let mut monitor = PollingMonitor::primed(&fs);
        fs.create("/fleeting", t(1)).unwrap();
        fs.unlink("/fleeting", t(2)).unwrap();
        fs.create("/steady", t(3)).unwrap();
        for i in 0..5 {
            fs.write("/steady", 1, t(4 + i)).unwrap();
        }
        let changes = monitor.poll(&fs);
        assert_eq!(changes.len(), 1, "only /steady's net creation is visible");
        assert_eq!(changes[0].path, PathBuf::from("/steady"));
    }

    #[test]
    fn rename_appears_as_delete_plus_create() {
        let mut fs = SimFs::new();
        fs.create("/before", t(0)).unwrap();
        let mut monitor = PollingMonitor::primed(&fs);
        fs.rename("/before", "/after", t(1)).unwrap();
        let changes = monitor.poll(&fs);
        let kinds: Vec<EventKind> = changes.iter().map(|c| c.kind).collect();
        assert_eq!(kinds, vec![EventKind::Created, EventKind::Deleted]);
    }

    #[test]
    fn crawl_cost_scales_with_namespace_not_changes() {
        let mut fs = SimFs::new();
        for i in 0..500 {
            fs.create(format!("/f{i}"), t(0)).unwrap();
        }
        let mut monitor = PollingMonitor::primed(&fs);
        // Ten polls, one change total.
        fs.write("/f0", 1, t(1)).unwrap();
        for _ in 0..10 {
            monitor.poll(&fs);
        }
        let stats = monitor.stats();
        assert_eq!(stats.changes_detected, 1);
        assert_eq!(stats.entries_visited, 500 + 10 * 500);
        assert!(stats.visits_per_change() > 5_000.0);
    }

    #[test]
    fn first_poll_without_priming_reports_everything() {
        let mut fs = SimFs::new();
        fs.create("/a", t(0)).unwrap();
        fs.create("/b", t(0)).unwrap();
        let mut monitor = PollingMonitor::new();
        assert_eq!(monitor.poll(&fs).len(), 2);
    }
}
