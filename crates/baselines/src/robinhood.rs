//! A Robinhood-style centralized ChangeLog consumer.
//!
//! Robinhood maintains a database of filesystem entries fed by a single
//! client that sequentially drains each MDS ChangeLog. The database then
//! answers bulk policy queries ("find files not modified in 30 days",
//! usage reports). Contrast with the paper's monitor: one Collector *per*
//! MDS, and events are pushed to subscribers rather than queried.

use lustre_sim::{ChangelogUser, LustreFs};
use parking_lot::Mutex;
use sdci_core::model::StageCosts;
use sdci_des::{ArrivalProcess, ArrivalSchedule, Server, Simulation};
use sdci_types::{ChangelogKind, EventsPerSec, MdtIndex, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Arc;

/// One entry in the Robinhood-style database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbEntry {
    /// Last known modification/creation time.
    pub mtime: SimTime,
    /// Last record kind observed.
    pub last_kind: ChangelogKind,
}

/// The entry database: path → latest state.
#[derive(Debug, Default)]
pub struct RobinhoodDb {
    entries: HashMap<PathBuf, DbEntry>,
    records_applied: u64,
}

impl RobinhoodDb {
    /// An empty database.
    pub fn new() -> Self {
        RobinhoodDb::default()
    }

    fn apply(&mut self, path: PathBuf, kind: ChangelogKind, time: SimTime) {
        self.records_applied += 1;
        match kind {
            ChangelogKind::Unlink | ChangelogKind::Rmdir => {
                self.entries.remove(&path);
            }
            _ => {
                self.entries.insert(path, DbEntry { mtime: time, last_kind: kind });
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// ChangeLog records applied so far.
    pub fn records_applied(&self) -> u64 {
        self.records_applied
    }

    /// Policy query: entries not modified since `cutoff` (Robinhood's
    /// stale-data purge candidate list).
    pub fn stale_since(&self, cutoff: SimTime) -> Vec<PathBuf> {
        let mut out: Vec<PathBuf> =
            self.entries.iter().filter(|(_, e)| e.mtime < cutoff).map(|(p, _)| p.clone()).collect();
        out.sort();
        out
    }

    /// Policy query: entries under a path prefix (usage reports).
    pub fn under(&self, prefix: &std::path::Path) -> Vec<PathBuf> {
        let mut out: Vec<PathBuf> =
            self.entries.keys().filter(|p| p.starts_with(prefix)).cloned().collect();
        out.sort();
        out
    }

    /// Robinhood's `rbh-find` equivalent: combined criteria over the
    /// database — path prefix, shell-style name glob, and modification
    /// window — without crawling the filesystem.
    pub fn find(&self, criteria: &FindCriteria) -> Vec<PathBuf> {
        let mut out: Vec<PathBuf> = self
            .entries
            .iter()
            .filter(|(path, entry)| criteria.matches(path, entry))
            .map(|(path, _)| path.clone())
            .collect();
        out.sort();
        out
    }
}

/// Criteria for [`RobinhoodDb::find`]; all present fields must match.
#[derive(Debug, Default, Clone)]
pub struct FindCriteria {
    /// Only entries under this prefix.
    pub under: Option<PathBuf>,
    /// Only entries whose file name matches this glob (`*`, `?`).
    pub name_glob: Option<String>,
    /// Only entries modified at or after this instant.
    pub modified_since: Option<SimTime>,
    /// Only entries modified strictly before this instant.
    pub modified_before: Option<SimTime>,
}

impl FindCriteria {
    /// Criteria matching everything.
    pub fn any() -> Self {
        FindCriteria::default()
    }

    /// Restricts to entries under `prefix`.
    pub fn under(mut self, prefix: impl Into<PathBuf>) -> Self {
        self.under = Some(prefix.into());
        self
    }

    /// Restricts to names matching `glob`.
    pub fn named(mut self, glob: impl Into<String>) -> Self {
        self.name_glob = Some(glob.into());
        self
    }

    /// Restricts to entries modified at or after `t`.
    pub fn modified_since(mut self, t: SimTime) -> Self {
        self.modified_since = Some(t);
        self
    }

    /// Restricts to entries modified strictly before `t`.
    pub fn modified_before(mut self, t: SimTime) -> Self {
        self.modified_before = Some(t);
        self
    }

    fn matches(&self, path: &std::path::Path, entry: &DbEntry) -> bool {
        if let Some(prefix) = &self.under {
            if !path.starts_with(prefix) {
                return false;
            }
        }
        if let Some(glob) = &self.name_glob {
            let name =
                path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
            if !glob_name_match(glob, &name) {
                return false;
            }
        }
        if let Some(since) = self.modified_since {
            if entry.mtime < since {
                return false;
            }
        }
        if let Some(before) = self.modified_before {
            if entry.mtime >= before {
                return false;
            }
        }
        true
    }
}

/// Minimal `*`/`?` glob (same two-pointer algorithm the rule engine
/// uses; duplicated here so the baseline crate stays independent of
/// `ripple`).
fn glob_name_match(pattern: &str, name: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let n: Vec<char> = name.chars().collect();
    let (mut pi, mut ni) = (0usize, 0usize);
    let (mut star_p, mut star_n) = (usize::MAX, 0usize);
    while ni < n.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star_p = pi;
            star_n = ni;
            pi += 1;
        } else if star_p != usize::MAX {
            pi = star_p + 1;
            star_n += 1;
            ni = star_n;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// The single-client scanner: sequentially drains every MDT ChangeLog
/// into the database.
pub struct RobinhoodScanner {
    fs: Arc<Mutex<LustreFs>>,
    users: Vec<(MdtIndex, ChangelogUser, u64)>,
    db: RobinhoodDb,
    batch: usize,
}

impl fmt::Debug for RobinhoodScanner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RobinhoodScanner")
            .field("mdts", &self.users.len())
            .field("db_entries", &self.db.len())
            .finish()
    }
}

impl RobinhoodScanner {
    /// Registers the scanner as a ChangeLog user on every MDT.
    pub fn new(fs: Arc<Mutex<LustreFs>>, batch: usize) -> Self {
        let users = {
            let mut guard = fs.lock();
            (0..guard.mdt_count())
                .map(|m| {
                    let mdt = MdtIndex::new(m);
                    let log = guard.changelog_mut(mdt);
                    (mdt, log.register_user(), log.last_index())
                })
                .collect()
        };
        RobinhoodScanner { fs, users, db: RobinhoodDb::new(), batch: batch.max(1) }
    }

    /// One full sequential pass over all MDTs (the single client visits
    /// each in turn). Returns records applied this pass.
    pub fn scan_once(&mut self) -> u64 {
        let mut applied = 0;
        for (mdt, user, last_seen) in &mut self.users {
            loop {
                let batch = {
                    let guard = self.fs.lock();
                    guard.changelog(*mdt).read_from(*last_seen, self.batch)
                };
                if batch.is_empty() {
                    break;
                }
                for record in &batch {
                    *last_seen = record.index;
                    let resolved = {
                        let guard = self.fs.lock();
                        guard.resolve_record_path(record)
                    };
                    if let Ok(path) = resolved {
                        self.db.apply(path, record.kind, record.time);
                        applied += 1;
                    }
                }
                let mut guard = self.fs.lock();
                let log = guard.changelog_mut(*mdt);
                let _ = log.ack(*user, *last_seen);
                log.purge();
            }
        }
        applied
    }

    /// The database.
    pub fn db(&self) -> &RobinhoodDb {
        &self.db
    }
}

/// Parameters of the modelled centralized collector (for the A3
/// comparison bench).
#[derive(Debug, Clone, PartialEq)]
pub struct CentralizedModel {
    /// Number of MDTs being drained by the single client.
    pub mdt_count: u32,
    /// Total event-generation rate across all MDTs (events/s).
    pub generation_rate: f64,
    /// Generation window.
    pub duration: SimDuration,
    /// Stage costs (same calibration as the distributed monitor).
    pub costs: StageCosts,
    /// Per-MDT-switch overhead of the sequential client (connection
    /// re-establishment / cursor seek).
    pub switch_overhead: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

/// Outcome of a centralized-model run.
#[derive(Debug, Clone, PartialEq)]
pub struct CentralizedReport {
    /// Events generated in the window.
    pub generated: u64,
    /// Events ingested into the database within the window.
    pub ingested_in_window: u64,
    /// Achieved ingest rate.
    pub ingest_rate: EventsPerSec,
    /// Utilization of the single client.
    pub client_utilization: f64,
}

impl CentralizedModel {
    /// Runs the model: all events funnel through one sequential client
    /// whose per-event service is extract + cold resolution + refactor
    /// (Robinhood resolves paths the same way), plus amortized
    /// MDT-switch overhead.
    pub fn run(&self) -> CentralizedReport {
        let mut sim = Simulation::new(self.seed);
        let window_end = SimTime::EPOCH + self.duration;
        let client = Server::new("robinhood-client", 1);
        let ingested = Rc::new(RefCell::new((0u64, 0u64))); // (generated, ingested)

        let per_event = self.costs.extract
            + self.costs.resolve_fixed
            + self.costs.resolve_marginal
            + self.costs.refactor
            // The sequential client round-robins MDTs; amortize one
            // switch per event scaled by MDT count (it must visit all
            // logs to make progress on any).
            + SimDuration::from_nanos(
                self.switch_overhead.as_nanos() * self.mdt_count as u64 / 64,
            );

        {
            let client = client.clone();
            let ingested = Rc::clone(&ingested);
            ArrivalSchedule::new(ArrivalProcess::Uniform { rate: self.generation_rate })
                .until(window_end)
                .start(&mut sim, move |sim, _| {
                    ingested.borrow_mut().0 += 1;
                    let ingested = Rc::clone(&ingested);
                    client.submit(sim, per_event, move |_, finish| {
                        if finish <= window_end {
                            ingested.borrow_mut().1 += 1;
                        }
                    });
                });
        }
        sim.run();

        let (generated, in_window) = *ingested.borrow();
        CentralizedReport {
            generated,
            ingested_in_window: in_window,
            ingest_rate: EventsPerSec::from_count(in_window, self.duration),
            client_utilization: client.stats().utilization(self.duration, 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lustre_sim::{DnePolicy, LustreConfig};

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn scanner_builds_database() {
        let fs = Arc::new(Mutex::new(LustreFs::new(LustreConfig::aws_testbed())));
        let mut scanner = RobinhoodScanner::new(Arc::clone(&fs), 64);
        {
            let mut guard = fs.lock();
            guard.mkdir("/proj", t(0)).unwrap();
            for i in 0..20 {
                guard.create(format!("/proj/f{i}"), t(i + 1)).unwrap();
            }
            guard.unlink("/proj/f3", t(30)).unwrap();
        }
        let applied = scanner.scan_once();
        assert_eq!(applied, 22);
        // 1 dir + 20 files - 1 unlinked.
        assert_eq!(scanner.db().len(), 20);
        assert!(!scanner
            .db()
            .under(std::path::Path::new("/proj"))
            .contains(&PathBuf::from("/proj/f3")));
        // ChangeLog purged behind the scan.
        assert!(fs.lock().changelog(MdtIndex::new(0)).is_empty());
    }

    #[test]
    fn scanner_covers_all_mdts() {
        let fs = Arc::new(Mutex::new(LustreFs::new(
            LustreConfig::builder("multi")
                .mdt_count(4)
                .dne_policy(DnePolicy::RoundRobinTopLevel)
                .build(),
        )));
        let mut scanner = RobinhoodScanner::new(Arc::clone(&fs), 16);
        {
            let mut guard = fs.lock();
            for d in 0..8 {
                guard.mkdir(format!("/d{d}"), t(0)).unwrap();
                guard.create(format!("/d{d}/f"), t(1)).unwrap();
            }
        }
        assert_eq!(scanner.scan_once(), 16);
        assert_eq!(scanner.db().len(), 16);
    }

    #[test]
    fn stale_query_supports_purge_policy() {
        let fs = Arc::new(Mutex::new(LustreFs::new(LustreConfig::aws_testbed())));
        let mut scanner = RobinhoodScanner::new(Arc::clone(&fs), 64);
        {
            let mut guard = fs.lock();
            guard.create("/old.dat", t(10)).unwrap();
            guard.create("/new.dat", t(1000)).unwrap();
        }
        scanner.scan_once();
        let stale = scanner.db().stale_since(t(500));
        assert_eq!(stale, vec![PathBuf::from("/old.dat")]);
        assert_eq!(scanner.db().under(std::path::Path::new("/")).len(), 2);
    }

    #[test]
    fn find_combines_criteria() {
        let fs = Arc::new(Mutex::new(LustreFs::new(LustreConfig::aws_testbed())));
        let mut scanner = RobinhoodScanner::new(Arc::clone(&fs), 64);
        {
            let mut guard = fs.lock();
            guard.mkdir("/proj", t(0)).unwrap();
            guard.create("/proj/run-1.h5", t(10)).unwrap();
            guard.create("/proj/run-2.h5", t(200)).unwrap();
            guard.create("/proj/notes.txt", t(10)).unwrap();
            guard.create("/other.h5", t(10)).unwrap();
        }
        scanner.scan_once();
        let db = scanner.db();
        assert_eq!(db.find(&FindCriteria::any().named("*.h5")).len(), 3, "all h5 files anywhere");
        assert_eq!(db.find(&FindCriteria::any().under("/proj").named("run-?.h5")).len(), 2);
        let old_h5 =
            db.find(&FindCriteria::any().under("/proj").named("*.h5").modified_before(t(100)));
        assert_eq!(old_h5, vec![PathBuf::from("/proj/run-1.h5")]);
        assert_eq!(db.find(&FindCriteria::any().modified_since(t(100))).len(), 1);
        assert_eq!(db.find(&FindCriteria::any()).len(), 5);
    }

    #[test]
    fn incremental_scans_pick_up_where_left_off() {
        let fs = Arc::new(Mutex::new(LustreFs::new(LustreConfig::aws_testbed())));
        let mut scanner = RobinhoodScanner::new(Arc::clone(&fs), 8);
        fs.lock().create("/a", t(1)).unwrap();
        assert_eq!(scanner.scan_once(), 1);
        assert_eq!(scanner.scan_once(), 0);
        fs.lock().create("/b", t(2)).unwrap();
        assert_eq!(scanner.scan_once(), 1);
        assert_eq!(scanner.db().records_applied(), 2);
    }

    #[test]
    fn centralized_model_does_not_scale_with_mdts() {
        let costs = StageCosts {
            extract: SimDuration::from_micros(4),
            resolve_fixed: SimDuration::from_micros(95),
            resolve_marginal: SimDuration::from_micros(23),
            resolve_cached: SimDuration::from_nanos(300),
            refactor: SimDuration::from_micros(4),
            aggregate: SimDuration::from_nanos(100),
            consume: SimDuration::from_nanos(100),
        };
        let base = CentralizedModel {
            mdt_count: 1,
            generation_rate: 20_000.0,
            duration: SimDuration::from_secs(3),
            costs,
            switch_overhead: SimDuration::from_micros(640),
            seed: 1,
        };
        let one = base.clone().run();
        let four = CentralizedModel { mdt_count: 4, ..base }.run();
        assert!(
            four.ingest_rate.per_sec() <= one.ingest_rate.per_sec() * 1.01,
            "centralized ingest cannot speed up with more MDTs: {} vs {}",
            four.ingest_rate,
            one.ingest_rate
        );
        assert!(one.client_utilization > 0.95, "client saturated under overload");
    }
}
