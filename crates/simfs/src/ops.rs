//! The operation bus: every namespace mutation is broadcast as an [`FsOp`].
//!
//! This is the seam between the generic filesystem and the two monitoring
//! technologies the paper contrasts: the Lustre simulator turns `FsOp`s
//! into ChangeLog records on the owning MDT, and the inotify simulator
//! turns them into watch events on the affected directories.

use crate::node::InodeId;
use sdci_types::SimTime;
use std::fmt;
use std::path::PathBuf;

/// What kind of mutation occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsOpKind {
    /// A regular file was created.
    Create,
    /// A directory was created.
    Mkdir,
    /// A symlink was created.
    Symlink,
    /// An extra hard link was created.
    HardLink,
    /// A regular file or symlink was unlinked. The payload notes whether
    /// this removed the last link.
    Unlink {
        /// True when this unlink removed the object's final link.
        last_link: bool,
    },
    /// A directory was removed.
    Rmdir,
    /// An object was renamed (possibly across directories).
    Rename,
    /// File contents were written/extended.
    Write,
    /// File contents were truncated.
    Truncate,
    /// Ownership/permissions changed.
    SetAttr,
    /// Extended attributes changed.
    SetXattr,
}

impl fmt::Display for FsOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FsOpKind::Create => "create",
            FsOpKind::Mkdir => "mkdir",
            FsOpKind::Symlink => "symlink",
            FsOpKind::HardLink => "hardlink",
            FsOpKind::Unlink { .. } => "unlink",
            FsOpKind::Rmdir => "rmdir",
            FsOpKind::Rename => "rename",
            FsOpKind::Write => "write",
            FsOpKind::Truncate => "truncate",
            FsOpKind::SetAttr => "setattr",
            FsOpKind::SetXattr => "setxattr",
        };
        f.write_str(s)
    }
}

/// A record of one namespace mutation, delivered to [`Observer`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsOp {
    /// What happened.
    pub kind: FsOpKind,
    /// When it happened.
    pub time: SimTime,
    /// The affected object.
    pub inode: InodeId,
    /// The object's parent directory after the operation (source parent
    /// for unlink/rmdir).
    pub parent: InodeId,
    /// The object's name after the operation.
    pub name: String,
    /// Absolute path of the object after the operation.
    pub path: PathBuf,
    /// For renames: the previous parent directory.
    pub src_parent: Option<InodeId>,
    /// For renames: the previous absolute path.
    pub src_path: Option<PathBuf>,
    /// True when the object is a directory.
    pub is_dir: bool,
}

/// A sink for filesystem operations.
///
/// Implementations must not call back into the originating
/// [`SimFs`](crate::SimFs) (the filesystem is mutably borrowed while
/// notifying).
pub trait Observer {
    /// Called after each successful namespace mutation.
    fn on_op(&mut self, op: &FsOp);
}

impl<F: FnMut(&FsOp)> Observer for F {
    fn on_op(&mut self, op: &FsOp) {
        self(op)
    }
}

/// Handle identifying a registered observer, used to detach it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObserverId(pub(crate) u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_display() {
        assert_eq!(FsOpKind::Create.to_string(), "create");
        assert_eq!(FsOpKind::Unlink { last_link: true }.to_string(), "unlink");
    }

    #[test]
    fn closures_are_observers() {
        let mut count = 0;
        {
            let mut obs = |_op: &FsOp| count += 1;
            let op = FsOp {
                kind: FsOpKind::Create,
                time: SimTime::EPOCH,
                inode: InodeId(2),
                parent: InodeId(1),
                name: "x".into(),
                path: PathBuf::from("/x"),
                src_parent: None,
                src_path: None,
                is_dir: false,
            };
            obs.on_op(&op);
            obs.on_op(&op);
        }
        assert_eq!(count, 2);
    }
}
