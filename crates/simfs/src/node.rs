//! Inodes and file types.

use sdci_types::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an inode within one [`SimFs`](crate::SimFs).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct InodeId(pub(crate) u64);

impl InodeId {
    /// The root directory's inode id.
    pub const ROOT: InodeId = InodeId(1);

    /// The raw id.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for InodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inode:{}", self.0)
    }
}

/// The type of a filesystem object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileType {
    /// Regular file.
    File,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
}

impl FileType {
    /// True for [`FileType::Directory`].
    pub const fn is_dir(self) -> bool {
        matches!(self, FileType::Directory)
    }
}

impl fmt::Display for FileType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FileType::File => "file",
            FileType::Directory => "directory",
            FileType::Symlink => "symlink",
        };
        f.write_str(s)
    }
}

/// One inode: type, size, times, link count, and (for directories) the
/// entry map.
#[derive(Debug, Clone)]
pub(crate) struct Inode {
    pub id: InodeId,
    pub file_type: FileType,
    pub size: u64,
    pub mode: u32,
    pub nlink: u32,
    pub mtime: SimTime,
    pub ctime: SimTime,
    pub atime: SimTime,
    /// Primary parent (for path reconstruction). Directories have exactly
    /// one; hard-linked files keep the first surviving parent.
    pub parent: Option<InodeId>,
    /// Name under the primary parent.
    pub name: String,
    /// Directory entries (empty for non-directories). BTreeMap keeps
    /// `read_dir` output deterministic.
    pub entries: BTreeMap<String, InodeId>,
    /// Symlink target (None for non-symlinks).
    pub link_target: Option<String>,
    /// Extended attributes.
    pub xattrs: BTreeMap<String, Vec<u8>>,
}

impl Inode {
    pub(crate) fn new_dir(id: InodeId, parent: Option<InodeId>, name: &str, now: SimTime) -> Self {
        Inode {
            id,
            file_type: FileType::Directory,
            size: 0,
            mode: 0o755,
            nlink: 2,
            mtime: now,
            ctime: now,
            atime: now,
            parent,
            name: name.to_owned(),
            entries: BTreeMap::new(),
            link_target: None,
            xattrs: BTreeMap::new(),
        }
    }

    pub(crate) fn new_file(id: InodeId, parent: InodeId, name: &str, now: SimTime) -> Self {
        Inode {
            id,
            file_type: FileType::File,
            size: 0,
            mode: 0o644,
            nlink: 1,
            mtime: now,
            ctime: now,
            atime: now,
            parent: Some(parent),
            name: name.to_owned(),
            entries: BTreeMap::new(),
            link_target: None,
            xattrs: BTreeMap::new(),
        }
    }

    pub(crate) fn new_symlink(
        id: InodeId,
        parent: InodeId,
        name: &str,
        target: &str,
        now: SimTime,
    ) -> Self {
        Inode {
            id,
            file_type: FileType::Symlink,
            size: target.len() as u64,
            mode: 0o777,
            nlink: 1,
            mtime: now,
            ctime: now,
            atime: now,
            parent: Some(parent),
            name: name.to_owned(),
            entries: BTreeMap::new(),
            link_target: Some(target.to_owned()),
            xattrs: BTreeMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_type_display() {
        assert_eq!(FileType::File.to_string(), "file");
        assert_eq!(FileType::Directory.to_string(), "directory");
        assert_eq!(FileType::Symlink.to_string(), "symlink");
        assert!(FileType::Directory.is_dir());
        assert!(!FileType::File.is_dir());
    }

    #[test]
    fn inode_constructors_set_types() {
        let t = SimTime::EPOCH;
        let d = Inode::new_dir(InodeId(1), None, "", t);
        assert_eq!(d.file_type, FileType::Directory);
        assert_eq!(d.nlink, 2);
        let f = Inode::new_file(InodeId(2), InodeId(1), "f", t);
        assert_eq!(f.file_type, FileType::File);
        assert_eq!(f.nlink, 1);
        let s = Inode::new_symlink(InodeId(3), InodeId(1), "s", "/target", t);
        assert_eq!(s.file_type, FileType::Symlink);
        assert_eq!(s.size, 7);
    }

    #[test]
    fn inode_id_display() {
        assert_eq!(InodeId::ROOT.to_string(), "inode:1");
        assert_eq!(InodeId::ROOT.as_u64(), 1);
    }
}
