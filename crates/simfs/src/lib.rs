//! An in-memory POSIX-style filesystem namespace.
//!
//! `simfs` is the substrate shared by the two storage simulators in this
//! reproduction:
//!
//! * `lustre-sim` layers FIDs, metadata targets, and a ChangeLog on top
//!   of a `SimFs` namespace;
//! * `inotify-sim` attaches per-directory watches to a `SimFs` to emulate
//!   the personal-device monitoring Ripple originally used.
//!
//! The filesystem keeps an inode table and directory-entry maps, supports
//! the metadata operations whose events the paper's monitor collects
//! (create, mkdir, unlink, rmdir, rename, write/truncate, setattr,
//! symlink, hardlink), and broadcasts every namespace mutation as an
//! [`FsOp`] to registered observers — the hook from which both ChangeLogs
//! and inotify events are derived.
//!
//! Timestamps are supplied by the caller as [`SimTime`] so the filesystem
//! composes with both the discrete-event kernel and wall-clock drivers.
//!
//! # Example
//!
//! ```
//! use simfs::{FileType, SimFs};
//! use sdci_types::SimTime;
//!
//! let mut fs = SimFs::new();
//! let t = SimTime::EPOCH;
//! fs.mkdir("/experiments", t)?;
//! fs.create("/experiments/run-001.dat", t)?;
//! fs.write("/experiments/run-001.dat", 4096, t)?;
//!
//! let stat = fs.stat("/experiments/run-001.dat")?;
//! assert_eq!(stat.file_type, FileType::File);
//! assert_eq!(stat.size, 4096);
//! assert_eq!(fs.read_dir("/experiments")?.len(), 1);
//! # Ok::<(), simfs::FsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fs;
mod node;
mod ops;
mod path;

pub use error::FsError;
pub use fs::{DirEntry, SimFs, Stat};
pub use node::{FileType, InodeId};
pub use ops::{FsOp, FsOpKind, Observer, ObserverId};
pub use path::{join_path, normalize_path, parent_and_name};

pub use sdci_types::SimTime;
