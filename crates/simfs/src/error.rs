//! Filesystem error type.

use std::fmt;
use std::path::PathBuf;

/// Errors returned by [`SimFs`](crate::SimFs) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The path (or a component of it) does not exist.
    NotFound(PathBuf),
    /// A non-final path component is not a directory.
    NotADirectory(PathBuf),
    /// The operation requires a non-directory but found a directory.
    IsADirectory(PathBuf),
    /// The target name already exists.
    AlreadyExists(PathBuf),
    /// `rmdir` on a directory that still has entries.
    NotEmpty(PathBuf),
    /// The path is not absolute or contains invalid components.
    InvalidPath(PathBuf),
    /// A rename would move a directory into its own subtree.
    RenameIntoSelf(PathBuf),
}

impl FsError {
    /// The path the error refers to.
    pub fn path(&self) -> &PathBuf {
        match self {
            FsError::NotFound(p)
            | FsError::NotADirectory(p)
            | FsError::IsADirectory(p)
            | FsError::AlreadyExists(p)
            | FsError::NotEmpty(p)
            | FsError::InvalidPath(p)
            | FsError::RenameIntoSelf(p) => p,
        }
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {}", p.display()),
            FsError::NotADirectory(p) => write!(f, "not a directory: {}", p.display()),
            FsError::IsADirectory(p) => write!(f, "is a directory: {}", p.display()),
            FsError::AlreadyExists(p) => write!(f, "file exists: {}", p.display()),
            FsError::NotEmpty(p) => write!(f, "directory not empty: {}", p.display()),
            FsError::InvalidPath(p) => write!(f, "invalid path: {}", p.display()),
            FsError::RenameIntoSelf(p) => {
                write!(f, "cannot move directory into itself: {}", p.display())
            }
        }
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_includes_path() {
        let e = FsError::NotFound(PathBuf::from("/a/b"));
        assert_eq!(e.to_string(), "no such file or directory: /a/b");
        assert_eq!(e.path(), &PathBuf::from("/a/b"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FsError>();
    }
}
