//! The filesystem proper.

use crate::error::FsError;
use crate::node::{FileType, Inode, InodeId};
use crate::ops::{FsOp, FsOpKind, Observer, ObserverId};
use crate::path::{join_path, normalize_path, parent_and_name};
use sdci_types::SimTime;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Metadata returned by [`SimFs::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// The object's inode id.
    pub inode: InodeId,
    /// The object's type.
    pub file_type: FileType,
    /// Size in bytes.
    pub size: u64,
    /// Permission bits.
    pub mode: u32,
    /// Hard-link count.
    pub nlink: u32,
    /// Last content modification.
    pub mtime: SimTime,
    /// Last metadata change.
    pub ctime: SimTime,
    /// Last access.
    pub atime: SimTime,
}

/// One entry returned by [`SimFs::read_dir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name within the directory.
    pub name: String,
    /// Inode of the entry.
    pub inode: InodeId,
    /// Type of the entry.
    pub file_type: FileType,
}

/// An in-memory POSIX-style filesystem (see the crate docs for an
/// overview and example).
pub struct SimFs {
    inodes: HashMap<InodeId, Inode>,
    next_inode: u64,
    observers: Vec<(ObserverId, Box<dyn Observer + Send>)>,
    next_observer: u64,
    files: u64,
    dirs: u64,
}

impl fmt::Debug for SimFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimFs")
            .field("inodes", &self.inodes.len())
            .field("files", &self.files)
            .field("dirs", &self.dirs)
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl Default for SimFs {
    fn default() -> Self {
        Self::new()
    }
}

impl SimFs {
    /// Creates an empty filesystem containing only the root directory.
    pub fn new() -> Self {
        let mut inodes = HashMap::new();
        inodes.insert(InodeId::ROOT, Inode::new_dir(InodeId::ROOT, None, "", SimTime::EPOCH));
        SimFs { inodes, next_inode: 2, observers: Vec::new(), next_observer: 0, files: 0, dirs: 1 }
    }

    // ---- observers ----------------------------------------------------

    /// Registers an observer that sees every subsequent mutation.
    pub fn add_observer(&mut self, observer: impl Observer + Send + 'static) -> ObserverId {
        let id = ObserverId(self.next_observer);
        self.next_observer += 1;
        self.observers.push((id, Box::new(observer)));
        id
    }

    /// Detaches a previously registered observer. Unknown ids are a no-op.
    pub fn remove_observer(&mut self, id: ObserverId) {
        self.observers.retain(|(oid, _)| *oid != id);
    }

    fn notify(&mut self, op: FsOp) {
        for (_, obs) in &mut self.observers {
            obs.on_op(&op);
        }
    }

    // ---- lookup -------------------------------------------------------

    fn node(&self, id: InodeId) -> &Inode {
        self.inodes.get(&id).expect("dangling inode id")
    }

    fn node_mut(&mut self, id: InodeId) -> &mut Inode {
        self.inodes.get_mut(&id).expect("dangling inode id")
    }

    /// Resolves an absolute path to an inode id.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if any component is missing,
    /// [`FsError::NotADirectory`] if a non-final component is not a
    /// directory, [`FsError::InvalidPath`] for relative paths.
    pub fn lookup(&self, path: impl AsRef<Path>) -> Result<InodeId, FsError> {
        let norm = normalize_path(path.as_ref())?;
        let mut cur = InodeId::ROOT;
        for comp in norm.components().skip(1) {
            let name = comp.as_os_str().to_string_lossy();
            let node = self.node(cur);
            if node.file_type != FileType::Directory {
                return Err(FsError::NotADirectory(self.path_of(cur)));
            }
            cur =
                *node.entries.get(name.as_ref()).ok_or_else(|| FsError::NotFound(norm.clone()))?;
        }
        Ok(cur)
    }

    /// True when `path` resolves to an object.
    pub fn exists(&self, path: impl AsRef<Path>) -> bool {
        self.lookup(path).is_ok()
    }

    /// Reconstructs the absolute path of an inode by following parent
    /// links — the namespace-side primitive behind Lustre's `fid2path`.
    pub fn path_of(&self, id: InodeId) -> PathBuf {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let node = self.node(c);
            if c != InodeId::ROOT {
                parts.push(node.name.clone());
            }
            cur = node.parent;
        }
        let mut path = PathBuf::from("/");
        for part in parts.into_iter().rev() {
            path.push(part);
        }
        path
    }

    /// Returns metadata for `path`.
    ///
    /// # Errors
    ///
    /// Propagates [`SimFs::lookup`] errors.
    pub fn stat(&self, path: impl AsRef<Path>) -> Result<Stat, FsError> {
        let id = self.lookup(path)?;
        Ok(self.stat_inode(id))
    }

    /// Returns metadata for an inode id.
    pub fn stat_inode(&self, id: InodeId) -> Stat {
        let n = self.node(id);
        Stat {
            inode: n.id,
            file_type: n.file_type,
            size: n.size,
            mode: n.mode,
            nlink: n.nlink,
            mtime: n.mtime,
            ctime: n.ctime,
            atime: n.atime,
        }
    }

    /// Returns a symlink's target string.
    ///
    /// # Errors
    ///
    /// [`FsError::InvalidPath`] when `path` is not a symlink, plus lookup
    /// errors.
    pub fn read_link(&self, path: impl AsRef<Path>) -> Result<String, FsError> {
        let norm = normalize_path(path.as_ref())?;
        let id = self.lookup(&norm)?;
        self.node(id).link_target.clone().ok_or(FsError::InvalidPath(norm))
    }

    /// Lists a directory's entries in name order.
    ///
    /// # Errors
    ///
    /// [`FsError::NotADirectory`] when `path` is not a directory, plus
    /// lookup errors.
    pub fn read_dir(&self, path: impl AsRef<Path>) -> Result<Vec<DirEntry>, FsError> {
        let id = self.lookup(path.as_ref())?;
        let node = self.node(id);
        if node.file_type != FileType::Directory {
            return Err(FsError::NotADirectory(normalize_path(path.as_ref())?));
        }
        Ok(node
            .entries
            .iter()
            .map(|(name, &inode)| DirEntry {
                name: name.clone(),
                inode,
                file_type: self.node(inode).file_type,
            })
            .collect())
    }

    /// Walks the whole namespace depth-first, yielding `(path, stat)` for
    /// every object (excluding the root itself). Order is deterministic.
    pub fn walk(&self) -> Vec<(PathBuf, Stat)> {
        let mut out = Vec::new();
        self.walk_into(InodeId::ROOT, &PathBuf::from("/"), &mut out);
        out
    }

    fn walk_into(&self, dir: InodeId, dir_path: &Path, out: &mut Vec<(PathBuf, Stat)>) {
        let node = self.node(dir);
        for (name, &child) in &node.entries {
            let child_path = join_path(dir_path, name);
            out.push((child_path.clone(), self.stat_inode(child)));
            if self.node(child).file_type == FileType::Directory {
                self.walk_into(child, &child_path, out);
            }
        }
    }

    /// Number of regular files (and symlinks count as files here).
    pub fn file_count(&self) -> u64 {
        self.files
    }

    /// Number of directories, including the root.
    pub fn dir_count(&self) -> u64 {
        self.dirs
    }

    // ---- mutation helpers ----------------------------------------------

    fn alloc_id(&mut self) -> InodeId {
        let id = InodeId(self.next_inode);
        self.next_inode += 1;
        id
    }

    /// Resolves the parent directory of `path`, returning
    /// `(parent_id, name, normalized_path)` and verifying the name is not
    /// already taken.
    fn prepare_new_entry(
        &self,
        path: impl AsRef<Path>,
    ) -> Result<(InodeId, String, PathBuf), FsError> {
        let (parent_path, name) = parent_and_name(path.as_ref())?;
        let parent = self.lookup(&parent_path)?;
        if self.node(parent).file_type != FileType::Directory {
            return Err(FsError::NotADirectory(parent_path));
        }
        let full = join_path(&parent_path, &name);
        if self.node(parent).entries.contains_key(&name) {
            return Err(FsError::AlreadyExists(full));
        }
        Ok((parent, name, full))
    }

    fn insert_child(&mut self, parent: InodeId, name: &str, child: InodeId, now: SimTime) {
        let p = self.node_mut(parent);
        p.entries.insert(name.to_owned(), child);
        p.mtime = now;
        p.ctime = now;
    }

    // ---- mutations ------------------------------------------------------

    /// Creates an empty regular file.
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`] when the name is taken, plus lookup
    /// errors on the parent.
    pub fn create(&mut self, path: impl AsRef<Path>, now: SimTime) -> Result<InodeId, FsError> {
        let (parent, name, full) = self.prepare_new_entry(path)?;
        let id = self.alloc_id();
        self.inodes.insert(id, Inode::new_file(id, parent, &name, now));
        self.insert_child(parent, &name, id, now);
        self.files += 1;
        self.notify(FsOp {
            kind: FsOpKind::Create,
            time: now,
            inode: id,
            parent,
            name,
            path: full,
            src_parent: None,
            src_path: None,
            is_dir: false,
        });
        Ok(id)
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`] when the name is taken, plus lookup
    /// errors on the parent.
    pub fn mkdir(&mut self, path: impl AsRef<Path>, now: SimTime) -> Result<InodeId, FsError> {
        let (parent, name, full) = self.prepare_new_entry(path)?;
        let id = self.alloc_id();
        self.inodes.insert(id, Inode::new_dir(id, Some(parent), &name, now));
        self.insert_child(parent, &name, id, now);
        self.node_mut(parent).nlink += 1;
        self.dirs += 1;
        self.notify(FsOp {
            kind: FsOpKind::Mkdir,
            time: now,
            inode: id,
            parent,
            name,
            path: full,
            src_parent: None,
            src_path: None,
            is_dir: true,
        });
        Ok(id)
    }

    /// Creates a directory and any missing ancestors. Existing
    /// directories along the way are fine.
    ///
    /// # Errors
    ///
    /// [`FsError::NotADirectory`] if an existing component is a file.
    pub fn mkdir_all(&mut self, path: impl AsRef<Path>, now: SimTime) -> Result<InodeId, FsError> {
        let norm = normalize_path(path.as_ref())?;
        let mut cur = PathBuf::from("/");
        let mut id = InodeId::ROOT;
        for comp in norm.components().skip(1) {
            cur.push(comp);
            id = match self.lookup(&cur) {
                Ok(existing) => {
                    if self.node(existing).file_type != FileType::Directory {
                        return Err(FsError::NotADirectory(cur));
                    }
                    existing
                }
                Err(FsError::NotFound(_)) => self.mkdir(&cur, now)?,
                Err(e) => return Err(e),
            };
        }
        Ok(id)
    }

    /// Creates a symbolic link at `path` pointing at `target`.
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`] when the name is taken, plus lookup
    /// errors on the parent.
    pub fn symlink(
        &mut self,
        path: impl AsRef<Path>,
        target: &str,
        now: SimTime,
    ) -> Result<InodeId, FsError> {
        let (parent, name, full) = self.prepare_new_entry(path)?;
        let id = self.alloc_id();
        self.inodes.insert(id, Inode::new_symlink(id, parent, &name, target, now));
        self.insert_child(parent, &name, id, now);
        self.files += 1;
        self.notify(FsOp {
            kind: FsOpKind::Symlink,
            time: now,
            inode: id,
            parent,
            name,
            path: full,
            src_parent: None,
            src_path: None,
            is_dir: false,
        });
        Ok(id)
    }

    /// Creates a hard link `new_path` to the file at `existing`.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] when `existing` is a directory,
    /// [`FsError::AlreadyExists`] when `new_path` is taken, plus lookup
    /// errors.
    pub fn hardlink(
        &mut self,
        existing: impl AsRef<Path>,
        new_path: impl AsRef<Path>,
        now: SimTime,
    ) -> Result<(), FsError> {
        let target = self.lookup(existing.as_ref())?;
        if self.node(target).file_type == FileType::Directory {
            return Err(FsError::IsADirectory(normalize_path(existing.as_ref())?));
        }
        let (parent, name, full) = self.prepare_new_entry(new_path)?;
        self.insert_child(parent, &name, target, now);
        let n = self.node_mut(target);
        n.nlink += 1;
        n.ctime = now;
        self.notify(FsOp {
            kind: FsOpKind::HardLink,
            time: now,
            inode: target,
            parent,
            name,
            path: full,
            src_parent: None,
            src_path: None,
            is_dir: false,
        });
        Ok(())
    }

    /// Removes the file or symlink at `path`.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] for directories (use [`SimFs::rmdir`]),
    /// plus lookup errors.
    pub fn unlink(&mut self, path: impl AsRef<Path>, now: SimTime) -> Result<(), FsError> {
        let norm = normalize_path(path.as_ref())?;
        let (parent_path, name) = parent_and_name(&norm)?;
        let parent = self.lookup(&parent_path)?;
        let id =
            *self.node(parent).entries.get(&name).ok_or_else(|| FsError::NotFound(norm.clone()))?;
        if self.node(id).file_type == FileType::Directory {
            return Err(FsError::IsADirectory(norm));
        }
        self.node_mut(parent).entries.remove(&name);
        let p = self.node_mut(parent);
        p.mtime = now;
        p.ctime = now;
        let node = self.node_mut(id);
        node.nlink -= 1;
        node.ctime = now;
        let last_link = node.nlink == 0;
        if last_link {
            self.inodes.remove(&id);
            self.files -= 1;
        } else if self.node(id).parent == Some(parent) && self.node(id).name == name {
            // The primary parent entry went away; we intentionally leave
            // the stale primary pointer (path_of for multi-link files is
            // best-effort, as in Lustre's linkEA behaviour).
        }
        self.notify(FsOp {
            kind: FsOpKind::Unlink { last_link },
            time: now,
            inode: id,
            parent,
            name,
            path: norm,
            src_parent: None,
            src_path: None,
            is_dir: false,
        });
        Ok(())
    }

    /// Removes the empty directory at `path`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotEmpty`] when it still has entries,
    /// [`FsError::NotADirectory`] when it is a file,
    /// [`FsError::InvalidPath`] for the root, plus lookup errors.
    pub fn rmdir(&mut self, path: impl AsRef<Path>, now: SimTime) -> Result<(), FsError> {
        let norm = normalize_path(path.as_ref())?;
        let (parent_path, name) = parent_and_name(&norm)?;
        let parent = self.lookup(&parent_path)?;
        let id =
            *self.node(parent).entries.get(&name).ok_or_else(|| FsError::NotFound(norm.clone()))?;
        let node = self.node(id);
        if node.file_type != FileType::Directory {
            return Err(FsError::NotADirectory(norm));
        }
        if !node.entries.is_empty() {
            return Err(FsError::NotEmpty(norm));
        }
        self.node_mut(parent).entries.remove(&name);
        let p = self.node_mut(parent);
        p.mtime = now;
        p.ctime = now;
        p.nlink -= 1;
        self.inodes.remove(&id);
        self.dirs -= 1;
        self.notify(FsOp {
            kind: FsOpKind::Rmdir,
            time: now,
            inode: id,
            parent,
            name,
            path: norm,
            src_parent: None,
            src_path: None,
            is_dir: true,
        });
        Ok(())
    }

    /// Renames `from` to `to`, replacing a regular-file destination like
    /// POSIX `rename(2)`.
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`] when the destination is a directory,
    /// [`FsError::RenameIntoSelf`] when moving a directory under itself,
    /// plus lookup errors.
    pub fn rename(
        &mut self,
        from: impl AsRef<Path>,
        to: impl AsRef<Path>,
        now: SimTime,
    ) -> Result<(), FsError> {
        let from_norm = normalize_path(from.as_ref())?;
        let to_norm = normalize_path(to.as_ref())?;
        if from_norm == to_norm {
            return Ok(());
        }
        let (from_parent_path, from_name) = parent_and_name(&from_norm)?;
        let (to_parent_path, to_name) = parent_and_name(&to_norm)?;
        let from_parent = self.lookup(&from_parent_path)?;
        let to_parent = self.lookup(&to_parent_path)?;
        if self.node(to_parent).file_type != FileType::Directory {
            return Err(FsError::NotADirectory(to_parent_path));
        }
        let id = *self
            .node(from_parent)
            .entries
            .get(&from_name)
            .ok_or_else(|| FsError::NotFound(from_norm.clone()))?;
        let moving_dir = self.node(id).file_type == FileType::Directory;

        if moving_dir {
            // Guard against moving a directory into its own subtree.
            let mut cur = Some(to_parent);
            while let Some(c) = cur {
                if c == id {
                    return Err(FsError::RenameIntoSelf(from_norm));
                }
                cur = self.node(c).parent;
            }
        }

        // Handle an existing destination.
        if let Some(&dest) = self.node(to_parent).entries.get(&to_name) {
            if dest == id {
                return Ok(());
            }
            if self.node(dest).file_type == FileType::Directory {
                return Err(FsError::AlreadyExists(to_norm));
            }
            self.unlink(&to_norm, now)?;
        }

        self.node_mut(from_parent).entries.remove(&from_name);
        {
            let p = self.node_mut(from_parent);
            p.mtime = now;
            p.ctime = now;
            if moving_dir {
                p.nlink -= 1;
            }
        }
        self.insert_child(to_parent, &to_name, id, now);
        if moving_dir {
            self.node_mut(to_parent).nlink += 1;
        }
        let n = self.node_mut(id);
        n.parent = Some(to_parent);
        n.name = to_name.clone();
        n.ctime = now;
        self.notify(FsOp {
            kind: FsOpKind::Rename,
            time: now,
            inode: id,
            parent: to_parent,
            name: to_name,
            path: to_norm,
            src_parent: Some(from_parent),
            src_path: Some(from_norm),
            is_dir: moving_dir,
        });
        Ok(())
    }

    /// Appends `bytes` to the file at `path` (content write).
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] for directories, plus lookup errors.
    pub fn write(
        &mut self,
        path: impl AsRef<Path>,
        bytes: u64,
        now: SimTime,
    ) -> Result<(), FsError> {
        self.content_op(path, now, FsOpKind::Write, |n| n.size += bytes)
    }

    /// Truncates the file at `path` to `size` bytes.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] for directories, plus lookup errors.
    pub fn truncate(
        &mut self,
        path: impl AsRef<Path>,
        size: u64,
        now: SimTime,
    ) -> Result<(), FsError> {
        self.content_op(path, now, FsOpKind::Truncate, |n| n.size = size)
    }

    fn content_op(
        &mut self,
        path: impl AsRef<Path>,
        now: SimTime,
        kind: FsOpKind,
        apply: impl FnOnce(&mut Inode),
    ) -> Result<(), FsError> {
        let norm = normalize_path(path.as_ref())?;
        let id = self.lookup(&norm)?;
        if self.node(id).file_type == FileType::Directory {
            return Err(FsError::IsADirectory(norm));
        }
        let (parent, name) = {
            let n = self.node_mut(id);
            apply(n);
            n.mtime = now;
            (n.parent.unwrap_or(InodeId::ROOT), n.name.clone())
        };
        self.notify(FsOp {
            kind,
            time: now,
            inode: id,
            parent,
            name,
            path: norm,
            src_parent: None,
            src_path: None,
            is_dir: false,
        });
        Ok(())
    }

    /// Sets an extended attribute on the object at `path`.
    ///
    /// # Errors
    ///
    /// Propagates lookup errors.
    pub fn set_xattr(
        &mut self,
        path: impl AsRef<Path>,
        key: impl Into<String>,
        value: impl Into<Vec<u8>>,
        now: SimTime,
    ) -> Result<(), FsError> {
        let norm = normalize_path(path.as_ref())?;
        let id = self.lookup(&norm)?;
        let (parent, name, is_dir) = {
            let n = self.node_mut(id);
            n.xattrs.insert(key.into(), value.into());
            n.ctime = now;
            (n.parent.unwrap_or(InodeId::ROOT), n.name.clone(), n.file_type == FileType::Directory)
        };
        self.notify(FsOp {
            kind: FsOpKind::SetXattr,
            time: now,
            inode: id,
            parent,
            name,
            path: norm,
            src_parent: None,
            src_path: None,
            is_dir,
        });
        Ok(())
    }

    /// Reads an extended attribute, if set.
    ///
    /// # Errors
    ///
    /// Propagates lookup errors.
    pub fn get_xattr(&self, path: impl AsRef<Path>, key: &str) -> Result<Option<Vec<u8>>, FsError> {
        let id = self.lookup(path)?;
        Ok(self.node(id).xattrs.get(key).cloned())
    }

    /// Lists an object's extended-attribute names, sorted.
    ///
    /// # Errors
    ///
    /// Propagates lookup errors.
    pub fn list_xattrs(&self, path: impl AsRef<Path>) -> Result<Vec<String>, FsError> {
        let id = self.lookup(path)?;
        Ok(self.node(id).xattrs.keys().cloned().collect())
    }

    /// Changes permission bits (metadata-only change).
    ///
    /// # Errors
    ///
    /// Propagates lookup errors.
    pub fn set_attr(
        &mut self,
        path: impl AsRef<Path>,
        mode: u32,
        now: SimTime,
    ) -> Result<(), FsError> {
        let norm = normalize_path(path.as_ref())?;
        let id = self.lookup(&norm)?;
        let (parent, name, is_dir) = {
            let n = self.node_mut(id);
            n.mode = mode;
            n.ctime = now;
            (n.parent.unwrap_or(InodeId::ROOT), n.name.clone(), n.file_type == FileType::Directory)
        };
        self.notify(FsOp {
            kind: FsOpKind::SetAttr,
            time: now,
            inode: id,
            parent,
            name,
            path: norm,
            src_parent: None,
            src_path: None,
            is_dir,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn create_and_stat() {
        let mut fs = SimFs::new();
        fs.create("/a.txt", t(1)).unwrap();
        let st = fs.stat("/a.txt").unwrap();
        assert_eq!(st.file_type, FileType::File);
        assert_eq!(st.size, 0);
        assert_eq!(st.mtime, t(1));
        assert_eq!(fs.file_count(), 1);
    }

    #[test]
    fn create_in_missing_dir_fails() {
        let mut fs = SimFs::new();
        assert!(matches!(fs.create("/no/file", t(0)), Err(FsError::NotFound(_))));
    }

    #[test]
    fn duplicate_create_fails() {
        let mut fs = SimFs::new();
        fs.create("/a", t(0)).unwrap();
        assert!(matches!(fs.create("/a", t(1)), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn mkdir_all_builds_chain() {
        let mut fs = SimFs::new();
        fs.mkdir_all("/a/b/c", t(0)).unwrap();
        assert!(fs.exists("/a/b/c"));
        // idempotent
        fs.mkdir_all("/a/b/c", t(1)).unwrap();
        assert_eq!(fs.dir_count(), 4); // root + a + b + c
    }

    #[test]
    fn mkdir_all_through_file_fails() {
        let mut fs = SimFs::new();
        fs.create("/a", t(0)).unwrap();
        assert!(matches!(fs.mkdir_all("/a/b", t(1)), Err(FsError::NotADirectory(_))));
    }

    #[test]
    fn unlink_removes_file() {
        let mut fs = SimFs::new();
        fs.create("/a", t(0)).unwrap();
        fs.unlink("/a", t(1)).unwrap();
        assert!(!fs.exists("/a"));
        assert_eq!(fs.file_count(), 0);
    }

    #[test]
    fn unlink_dir_fails() {
        let mut fs = SimFs::new();
        fs.mkdir("/d", t(0)).unwrap();
        assert!(matches!(fs.unlink("/d", t(1)), Err(FsError::IsADirectory(_))));
    }

    #[test]
    fn rmdir_requires_empty() {
        let mut fs = SimFs::new();
        fs.mkdir("/d", t(0)).unwrap();
        fs.create("/d/f", t(0)).unwrap();
        assert!(matches!(fs.rmdir("/d", t(1)), Err(FsError::NotEmpty(_))));
        fs.unlink("/d/f", t(1)).unwrap();
        fs.rmdir("/d", t(2)).unwrap();
        assert!(!fs.exists("/d"));
        assert_eq!(fs.dir_count(), 1);
    }

    #[test]
    fn rename_moves_and_updates_paths() {
        let mut fs = SimFs::new();
        fs.mkdir_all("/src/sub", t(0)).unwrap();
        fs.mkdir("/dst", t(0)).unwrap();
        fs.create("/src/sub/f", t(0)).unwrap();
        fs.rename("/src/sub", "/dst/moved", t(1)).unwrap();
        assert!(fs.exists("/dst/moved/f"));
        assert!(!fs.exists("/src/sub"));
        let id = fs.lookup("/dst/moved/f").unwrap();
        assert_eq!(fs.path_of(id), PathBuf::from("/dst/moved/f"));
    }

    #[test]
    fn rename_replaces_file_destination() {
        let mut fs = SimFs::new();
        fs.create("/a", t(0)).unwrap();
        fs.create("/b", t(0)).unwrap();
        fs.write("/a", 10, t(0)).unwrap();
        fs.rename("/a", "/b", t(1)).unwrap();
        assert!(!fs.exists("/a"));
        assert_eq!(fs.stat("/b").unwrap().size, 10);
        assert_eq!(fs.file_count(), 1);
    }

    #[test]
    fn rename_into_own_subtree_fails() {
        let mut fs = SimFs::new();
        fs.mkdir_all("/a/b", t(0)).unwrap();
        assert!(matches!(fs.rename("/a", "/a/b/a2", t(1)), Err(FsError::RenameIntoSelf(_))));
    }

    #[test]
    fn rename_to_same_path_is_noop() {
        let mut fs = SimFs::new();
        fs.create("/a", t(0)).unwrap();
        fs.rename("/a", "/a", t(1)).unwrap();
        assert!(fs.exists("/a"));
    }

    #[test]
    fn write_and_truncate_update_size() {
        let mut fs = SimFs::new();
        fs.create("/f", t(0)).unwrap();
        fs.write("/f", 100, t(1)).unwrap();
        fs.write("/f", 50, t(2)).unwrap();
        assert_eq!(fs.stat("/f").unwrap().size, 150);
        fs.truncate("/f", 10, t(3)).unwrap();
        assert_eq!(fs.stat("/f").unwrap().size, 10);
        assert_eq!(fs.stat("/f").unwrap().mtime, t(3));
    }

    #[test]
    fn hardlink_shares_inode() {
        let mut fs = SimFs::new();
        fs.create("/a", t(0)).unwrap();
        fs.hardlink("/a", "/b", t(1)).unwrap();
        assert_eq!(fs.lookup("/a").unwrap(), fs.lookup("/b").unwrap());
        assert_eq!(fs.stat("/a").unwrap().nlink, 2);
        fs.unlink("/a", t(2)).unwrap();
        assert!(fs.exists("/b"));
        assert_eq!(fs.file_count(), 1);
        fs.unlink("/b", t(3)).unwrap();
        assert_eq!(fs.file_count(), 0);
    }

    #[test]
    fn symlink_records_target() {
        let mut fs = SimFs::new();
        fs.symlink("/s", "/target/file", t(0)).unwrap();
        let st = fs.stat("/s").unwrap();
        assert_eq!(st.file_type, FileType::Symlink);
        assert_eq!(st.size, 12);
        assert_eq!(fs.read_link("/s").unwrap(), "/target/file");
        fs.create("/plain", t(1)).unwrap();
        assert!(matches!(fs.read_link("/plain"), Err(FsError::InvalidPath(_))));
    }

    #[test]
    fn xattrs_set_get_list_and_notify() {
        let ops: Arc<Mutex<Vec<FsOpKind>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&ops);
        let mut fs = SimFs::new();
        fs.create("/f", t(0)).unwrap();
        fs.add_observer(move |op: &FsOp| sink.lock().unwrap().push(op.kind));
        fs.set_xattr("/f", "user.project", b"climate".to_vec(), t(1)).unwrap();
        fs.set_xattr("/f", "user.owner", b"amy".to_vec(), t(2)).unwrap();
        assert_eq!(fs.get_xattr("/f", "user.project").unwrap(), Some(b"climate".to_vec()));
        assert_eq!(fs.get_xattr("/f", "user.missing").unwrap(), None);
        assert_eq!(
            fs.list_xattrs("/f").unwrap(),
            vec!["user.owner".to_string(), "user.project".to_string()]
        );
        assert_eq!(*ops.lock().unwrap(), vec![FsOpKind::SetXattr, FsOpKind::SetXattr]);
        assert!(fs.get_xattr("/missing", "k").is_err());
    }

    #[test]
    fn read_dir_is_sorted() {
        let mut fs = SimFs::new();
        for name in ["zeta", "alpha", "mid"] {
            fs.create(format!("/{name}"), t(0)).unwrap();
        }
        let names: Vec<String> = fs.read_dir("/").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn walk_lists_everything() {
        let mut fs = SimFs::new();
        fs.mkdir_all("/a/b", t(0)).unwrap();
        fs.create("/a/b/f", t(0)).unwrap();
        fs.create("/top", t(0)).unwrap();
        let paths: Vec<String> =
            fs.walk().into_iter().map(|(p, _)| p.display().to_string()).collect();
        assert_eq!(paths, vec!["/a", "/a/b", "/a/b/f", "/top"]);
    }

    #[test]
    fn observer_sees_all_mutations() {
        let ops: Arc<Mutex<Vec<FsOpKind>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&ops);
        let mut fs = SimFs::new();
        fs.add_observer(move |op: &FsOp| sink.lock().unwrap().push(op.kind));
        fs.mkdir("/d", t(0)).unwrap();
        fs.create("/d/f", t(1)).unwrap();
        fs.write("/d/f", 1, t(2)).unwrap();
        fs.rename("/d/f", "/d/g", t(3)).unwrap();
        fs.set_attr("/d/g", 0o600, t(4)).unwrap();
        fs.unlink("/d/g", t(5)).unwrap();
        fs.rmdir("/d", t(6)).unwrap();
        let got = ops.lock().unwrap().clone();
        assert_eq!(
            got,
            vec![
                FsOpKind::Mkdir,
                FsOpKind::Create,
                FsOpKind::Write,
                FsOpKind::Rename,
                FsOpKind::SetAttr,
                FsOpKind::Unlink { last_link: true },
                FsOpKind::Rmdir,
            ]
        );
    }

    #[test]
    fn observer_rename_carries_src_path() {
        let ops: Arc<Mutex<Vec<FsOp>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&ops);
        let mut fs = SimFs::new();
        fs.mkdir("/a", t(0)).unwrap();
        fs.mkdir("/b", t(0)).unwrap();
        fs.create("/a/f", t(0)).unwrap();
        fs.add_observer(move |op: &FsOp| sink.lock().unwrap().push(op.clone()));
        fs.rename("/a/f", "/b/f2", t(1)).unwrap();
        let got = ops.lock().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].src_path, Some(PathBuf::from("/a/f")));
        assert_eq!(got[0].path, PathBuf::from("/b/f2"));
    }

    #[test]
    fn remove_observer_stops_delivery() {
        let ops: Arc<Mutex<u32>> = Arc::new(Mutex::new(0));
        let sink = Arc::clone(&ops);
        let mut fs = SimFs::new();
        let id = fs.add_observer(move |_: &FsOp| *sink.lock().unwrap() += 1);
        fs.create("/a", t(0)).unwrap();
        fs.remove_observer(id);
        fs.create("/b", t(1)).unwrap();
        assert_eq!(*ops.lock().unwrap(), 1);
    }

    #[test]
    fn failed_ops_notify_nothing() {
        let ops: Arc<Mutex<u32>> = Arc::new(Mutex::new(0));
        let sink = Arc::clone(&ops);
        let mut fs = SimFs::new();
        fs.add_observer(move |_: &FsOp| *sink.lock().unwrap() += 1);
        let _ = fs.create("/missing/f", t(0));
        let _ = fs.unlink("/nope", t(0));
        assert_eq!(*ops.lock().unwrap(), 0);
    }

    #[test]
    fn path_of_root() {
        let fs = SimFs::new();
        assert_eq!(fs.path_of(InodeId::ROOT), PathBuf::from("/"));
    }

    #[test]
    fn simfs_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SimFs>();
    }
}
