//! Absolute-path helpers.
//!
//! `SimFs` works exclusively with normalized absolute paths ("/a/b/c").
//! These helpers normalize user input and split paths into (parent, name)
//! pairs without touching the real filesystem.

use crate::FsError;
use std::path::{Component, Path, PathBuf};

/// Normalizes `path` to an absolute path with no `.`/`..` components.
///
/// `..` at the root stays at the root, as in POSIX.
///
/// # Errors
///
/// Returns [`FsError::InvalidPath`] for relative paths or paths with
/// non-UTF8-representable prefixes (Windows prefixes).
///
/// # Example
///
/// ```
/// use simfs::normalize_path;
/// use std::path::PathBuf;
///
/// assert_eq!(normalize_path("/a/./b/../c")?, PathBuf::from("/a/c"));
/// assert_eq!(normalize_path("/../x")?, PathBuf::from("/x"));
/// assert!(normalize_path("relative/path").is_err());
/// # Ok::<(), simfs::FsError>(())
/// ```
pub fn normalize_path(path: impl AsRef<Path>) -> Result<PathBuf, FsError> {
    let path = path.as_ref();
    let mut components = path.components();
    match components.next() {
        Some(Component::RootDir) => {}
        _ => return Err(FsError::InvalidPath(path.to_path_buf())),
    }
    let mut out = PathBuf::from("/");
    for comp in components {
        match comp {
            Component::Normal(name) => out.push(name),
            Component::CurDir => {}
            Component::ParentDir => {
                out.pop();
            }
            Component::RootDir | Component::Prefix(_) => {
                return Err(FsError::InvalidPath(path.to_path_buf()))
            }
        }
    }
    Ok(out)
}

/// Splits a normalized absolute path into its parent directory and final
/// name component.
///
/// # Errors
///
/// Returns [`FsError::InvalidPath`] for the root itself (it has no parent
/// entry) and for non-absolute input.
pub fn parent_and_name(path: impl AsRef<Path>) -> Result<(PathBuf, String), FsError> {
    let norm = normalize_path(path.as_ref())?;
    let name = norm
        .file_name()
        .ok_or_else(|| FsError::InvalidPath(norm.clone()))?
        .to_string_lossy()
        .into_owned();
    let parent = norm.parent().unwrap_or(Path::new("/")).to_path_buf();
    Ok((parent, name))
}

/// Joins a directory path and an entry name.
pub fn join_path(dir: &Path, name: &str) -> PathBuf {
    let mut p = dir.to_path_buf();
    p.push(name);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_removes_dots() {
        assert_eq!(normalize_path("/a/b/./c").unwrap(), PathBuf::from("/a/b/c"));
        assert_eq!(normalize_path("/a/b/../c").unwrap(), PathBuf::from("/a/c"));
        assert_eq!(normalize_path("/").unwrap(), PathBuf::from("/"));
        assert_eq!(normalize_path("/..").unwrap(), PathBuf::from("/"));
    }

    #[test]
    fn normalize_rejects_relative() {
        assert!(matches!(normalize_path("a/b"), Err(FsError::InvalidPath(_))));
        assert!(matches!(normalize_path(""), Err(FsError::InvalidPath(_))));
    }

    #[test]
    fn parent_and_name_splits() {
        let (p, n) = parent_and_name("/a/b/c.txt").unwrap();
        assert_eq!(p, PathBuf::from("/a/b"));
        assert_eq!(n, "c.txt");
        let (p, n) = parent_and_name("/top").unwrap();
        assert_eq!(p, PathBuf::from("/"));
        assert_eq!(n, "top");
    }

    #[test]
    fn parent_and_name_rejects_root() {
        assert!(parent_and_name("/").is_err());
    }

    #[test]
    fn join_appends() {
        assert_eq!(join_path(Path::new("/a"), "b"), PathBuf::from("/a/b"));
        assert_eq!(join_path(Path::new("/"), "b"), PathBuf::from("/b"));
    }
}
