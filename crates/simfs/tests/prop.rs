//! Property-based tests: random operation sequences preserve namespace
//! invariants.

use proptest::prelude::*;
use sdci_types::SimTime;
use simfs::{FileType, SimFs};
use std::collections::BTreeSet;

/// A random filesystem operation over a small name universe, so that
/// sequences frequently collide on paths and exercise the error paths.
#[derive(Debug, Clone)]
enum Op {
    Create(String),
    Mkdir(String),
    Unlink(String),
    Rmdir(String),
    Rename(String, String),
    Write(String, u64),
}

fn path_strategy() -> impl Strategy<Value = String> {
    // Depth <= 3 paths over 4 names: plenty of collisions.
    prop::collection::vec(prop::sample::select(vec!["a", "b", "c", "d"]), 1..=3)
        .prop_map(|parts| format!("/{}", parts.join("/")))
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        path_strategy().prop_map(Op::Create),
        path_strategy().prop_map(Op::Mkdir),
        path_strategy().prop_map(Op::Unlink),
        path_strategy().prop_map(Op::Rmdir),
        (path_strategy(), path_strategy()).prop_map(|(a, b)| Op::Rename(a, b)),
        (path_strategy(), 0u64..4096).prop_map(|(p, n)| Op::Write(p, n)),
    ]
}

fn apply(fs: &mut SimFs, op: &Op, t: SimTime) {
    // Errors are expected (colliding names, missing parents); the
    // invariants must hold regardless.
    match op {
        Op::Create(p) => drop(fs.create(p, t)),
        Op::Mkdir(p) => drop(fs.mkdir(p, t)),
        Op::Unlink(p) => drop(fs.unlink(p, t)),
        Op::Rmdir(p) => drop(fs.rmdir(p, t)),
        Op::Rename(a, b) => drop(fs.rename(a, b, t)),
        Op::Write(p, n) => drop(fs.write(p, *n, t)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any op sequence, walk() agrees with the file/dir counters.
    #[test]
    fn counters_match_walk(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let mut fs = SimFs::new();
        for (i, op) in ops.iter().enumerate() {
            apply(&mut fs, op, SimTime::from_secs(i as u64));
        }
        let walked = fs.walk();
        let dirs = walked.iter().filter(|(_, s)| s.file_type == FileType::Directory).count() as u64;
        let files = walked.iter().filter(|(_, s)| s.file_type != FileType::Directory).count() as u64;
        prop_assert_eq!(fs.dir_count(), dirs + 1, "root is counted");
        prop_assert_eq!(fs.file_count(), files);
    }

    /// Every path reported by walk() can be looked up, and path_of()
    /// round-trips it (no hard links are created in this model).
    #[test]
    fn walk_paths_roundtrip(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let mut fs = SimFs::new();
        for (i, op) in ops.iter().enumerate() {
            apply(&mut fs, op, SimTime::from_secs(i as u64));
        }
        for (path, stat) in fs.walk() {
            let id = fs.lookup(&path).expect("walked path must resolve");
            prop_assert_eq!(id, stat.inode);
            prop_assert_eq!(fs.path_of(id), path);
        }
    }

    /// walk() yields no duplicate paths.
    #[test]
    fn walk_paths_unique(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let mut fs = SimFs::new();
        for (i, op) in ops.iter().enumerate() {
            apply(&mut fs, op, SimTime::from_secs(i as u64));
        }
        let paths: Vec<_> = fs.walk().into_iter().map(|(p, _)| p).collect();
        let set: BTreeSet<_> = paths.iter().cloned().collect();
        prop_assert_eq!(set.len(), paths.len());
    }

    /// Observer op stream mirrors the effective mutation count: replaying
    /// the ops that report success must equal observer notifications.
    #[test]
    fn observer_fires_once_per_successful_mutation(
        ops in prop::collection::vec(op_strategy(), 0..60)
    ) {
        use std::sync::{Arc, Mutex};
        let notified = Arc::new(Mutex::new(0u64));
        let sink = Arc::clone(&notified);
        let mut fs = SimFs::new();
        fs.add_observer(move |_: &simfs::FsOp| *sink.lock().unwrap() += 1);
        let mut expected = 0u64;
        for (i, op) in ops.iter().enumerate() {
            let t = SimTime::from_secs(i as u64);
            let before = *notified.lock().unwrap();
            let ok = match op {
                Op::Create(p) => fs.create(p, t).is_ok(),
                Op::Mkdir(p) => fs.mkdir(p, t).is_ok(),
                Op::Unlink(p) => fs.unlink(p, t).is_ok(),
                Op::Rmdir(p) => fs.rmdir(p, t).is_ok(),
                // A rename to an existing file emits unlink + rename; a
                // same-path rename emits nothing. Count actual emissions.
                Op::Rename(a, b) => {
                    let _ = fs.rename(a, b, t);
                    expected += *notified.lock().unwrap() - before;
                    continue;
                }
                Op::Write(p, n) => fs.write(p, *n, t).is_ok(),
            };
            if ok {
                expected += 1;
            }
        }
        prop_assert_eq!(*notified.lock().unwrap(), expected);
    }
}
