//! Fault plans: seeded stochastic frame faults + scripted partitions.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment variable holding a [`FaultPlan`] spec string; read by
/// [`load_env_plan`] (which `sdcimon` calls for every subcommand).
pub const ENV_FAULTS: &str = "SDCI_FAULTS";

/// Which half of a connection a frame is crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Frames this endpoint writes to the wire.
    Send,
    /// Frames this endpoint reads off the wire.
    Recv,
}

/// Per-direction stochastic fault probabilities. All probabilities are
/// in `[0, 1]` and evaluated per complete wire frame, in the fixed
/// order drop → duplicate → truncate → delay (first hit wins), so the
/// random-decision stream has a constant stride per frame and a seed
/// replays bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultProfile {
    /// Probability the frame is silently discarded.
    pub drop: f64,
    /// Probability the frame is written/delivered twice.
    pub duplicate: f64,
    /// Probability the frame is cut short and the connection killed
    /// (send: a prefix hits the wire then the stream errors; recv: the
    /// parsed frame is replaced by an `InvalidData` error).
    pub truncate: f64,
    /// Probability the frame is stalled by [`FaultProfile::delay_for`].
    pub delay: f64,
    /// How long a delayed frame stalls.
    pub delay_for: Duration,
}

impl FaultProfile {
    fn is_noop(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.truncate == 0.0 && self.delay == 0.0
    }

    fn validate(&self, dir: &str) -> Result<(), String> {
        for (name, p) in [
            ("drop", self.drop),
            ("dup", self.duplicate),
            ("trunc", self.truncate),
            ("delay", self.delay),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{dir} {name} probability {p} outside [0, 1]"));
            }
        }
        Ok(())
    }
}

/// A scripted total-partition window, relative to the shared
/// [`process_epoch`] — so every plan (and hence every connection) in a
/// process sees the same partition at the same wall-clock moment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Offset from the process epoch when the partition begins.
    pub start: Duration,
    /// Offset from the process epoch when the partition heals.
    pub end: Duration,
}

/// The process-wide partition epoch: pinned the first time anything
/// asks for it (in practice, when the first plan is built — process
/// start for env-installed plans).
///
/// Partition windows used to be anchored per-plan-construction, so two
/// plans parsed at different times disagreed about when "the"
/// partition was — connections opened later saw the window restart.
/// One shared epoch makes `partition=DUR@OFFSET` mean the same
/// wall-clock interval everywhere in the process.
pub fn process_epoch() -> Instant {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// What to do with one complete wire frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Pass the frame through untouched.
    Deliver,
    /// Discard the frame silently.
    Drop,
    /// Deliver the frame twice.
    Duplicate,
    /// Corrupt the frame and kill the connection.
    Truncate,
    /// Stall for the given duration, then deliver.
    Delay(Duration),
}

/// A deterministic fault schedule: seeded probabilities for both
/// directions plus scripted partition windows.
///
/// The plan is immutable after parse; per-connection randomness comes
/// from [`FaultPlan::stream`], which seeds a fresh RNG from the plan
/// seed mixed with a monotonically increasing connection counter. The
/// fault decisions on a given connection are therefore a pure function
/// of `(seed, connection index, frame index)`.
#[derive(Debug)]
pub struct FaultPlan {
    /// The master seed every connection RNG derives from.
    pub seed: u64,
    /// Faults applied to frames this endpoint sends.
    pub send: FaultProfile,
    /// Faults applied to frames this endpoint receives.
    pub recv: FaultProfile,
    /// Scripted total-partition windows (both directions black-holed).
    pub partitions: Vec<PartitionWindow>,
    epoch: Instant,
    conns: AtomicU64,
}

impl FaultPlan {
    /// Builds a plan with explicit profiles; partition windows are
    /// anchored to the shared [`process_epoch`].
    pub fn new(
        seed: u64,
        send: FaultProfile,
        recv: FaultProfile,
        partitions: Vec<PartitionWindow>,
    ) -> Self {
        FaultPlan { seed, send, recv, partitions, epoch: process_epoch(), conns: AtomicU64::new(0) }
    }

    /// Parses a compact spec string, e.g.
    /// `seed=42,drop=0.05,dup=0.02,trunc=0.01,delay=0.1:2ms,partition=500ms@2s`.
    ///
    /// Keys:
    /// * `seed=N` — master seed (default 0).
    /// * `drop=P` / `dup=P` / `trunc=P` — per-frame probabilities,
    ///   applied to both directions unless prefixed `send.` / `recv.`
    ///   (e.g. `send.drop=0.1`).
    /// * `delay=P:DUR` — with probability `P` stall a frame for `DUR`
    ///   (same `send.`/`recv.` prefixes apply).
    /// * `partition=DUR@OFFSET` — a total partition lasting `DUR`
    ///   starting `OFFSET` after the shared [`process_epoch`];
    ///   repeatable.
    ///
    /// Durations take `ms`, `s`, or `us` suffixes.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut send = FaultProfile::default();
        let mut recv = FaultProfile::default();
        let mut partitions = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec term `{part}` has no =`"))?;
            let (dirs, field): (Vec<&mut FaultProfile>, &str) = match key.split_once('.') {
                Some(("send", f)) => (vec![&mut send], f),
                Some(("recv", f)) => (vec![&mut recv], f),
                Some((other, _)) => return Err(format!("unknown direction `{other}` in `{part}`")),
                None => (vec![&mut send, &mut recv], key),
            };
            match field {
                "seed" => {
                    seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
                }
                "drop" => {
                    let p = parse_prob(value)?;
                    for d in dirs {
                        d.drop = p;
                    }
                }
                "dup" => {
                    let p = parse_prob(value)?;
                    for d in dirs {
                        d.duplicate = p;
                    }
                }
                "trunc" => {
                    let p = parse_prob(value)?;
                    for d in dirs {
                        d.truncate = p;
                    }
                }
                "delay" => {
                    let (p, dur) = value
                        .split_once(':')
                        .ok_or_else(|| format!("delay `{value}` wants P:DURATION"))?;
                    let p = parse_prob(p)?;
                    let dur = parse_duration(dur)?;
                    for d in dirs {
                        d.delay = p;
                        d.delay_for = dur;
                    }
                }
                "partition" => {
                    let (len, at) = value
                        .split_once('@')
                        .ok_or_else(|| format!("partition `{value}` wants DURATION@OFFSET"))?;
                    let len = parse_duration(len)?;
                    let start = parse_duration(at)?;
                    partitions.push(PartitionWindow { start, end: start + len });
                }
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        send.validate("send")?;
        recv.validate("recv")?;
        Ok(FaultPlan::new(seed, send, recv, partitions))
    }

    /// True when the plan injects nothing (useful to skip wrapping).
    pub fn is_noop(&self) -> bool {
        self.send.is_noop() && self.recv.is_noop() && self.partitions.is_empty()
    }

    /// Opens a deterministic per-connection fault stream. The `n`-th
    /// call returns a stream whose decisions depend only on
    /// `(plan.seed, n)`.
    pub fn stream(self: &Arc<Self>) -> StreamFaults {
        let conn = self.conns.fetch_add(1, Ordering::Relaxed);
        StreamFaults {
            plan: Arc::clone(self),
            conn,
            rng: StdRng::seed_from_u64(mix(self.seed, conn)),
        }
    }

    /// True while "now" falls inside a scripted partition window.
    pub fn partitioned(&self) -> bool {
        let elapsed = self.epoch.elapsed();
        self.partitions.iter().any(|w| elapsed >= w.start && elapsed < w.end)
    }
}

impl fmt::Display for FaultPlan {
    /// Renders a spec string that parses back to an equivalent plan
    /// (windows re-anchor to the same shared process epoch).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for (dir, p) in [("send", &self.send), ("recv", &self.recv)] {
            if p.drop > 0.0 {
                write!(f, ",{dir}.drop={}", p.drop)?;
            }
            if p.duplicate > 0.0 {
                write!(f, ",{dir}.dup={}", p.duplicate)?;
            }
            if p.truncate > 0.0 {
                write!(f, ",{dir}.trunc={}", p.truncate)?;
            }
            if p.delay > 0.0 {
                write!(f, ",{dir}.delay={}:{}us", p.delay, p.delay_for.as_micros())?;
            }
        }
        for w in &self.partitions {
            write!(f, ",partition={}us@{}us", (w.end - w.start).as_micros(), w.start.as_micros())?;
        }
        Ok(())
    }
}

fn parse_prob(s: &str) -> Result<f64, String> {
    let p: f64 = s.parse().map_err(|_| format!("bad probability `{s}`"))?;
    if (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(format!("probability `{s}` outside [0, 1]"))
    }
}

fn parse_duration(s: &str) -> Result<Duration, String> {
    let s = s.trim();
    let (value, unit) = s
        .find(|c: char| c.is_ascii_alphabetic())
        .map(|i| s.split_at(i))
        .ok_or_else(|| format!("duration `{s}` needs a unit (us/ms/s)"))?;
    let value: u64 = value.parse().map_err(|_| format!("bad duration `{s}`"))?;
    match unit {
        "us" => Ok(Duration::from_micros(value)),
        "ms" => Ok(Duration::from_millis(value)),
        "s" => Ok(Duration::from_secs(value)),
        other => Err(format!("unknown duration unit `{other}` in `{s}`")),
    }
}

/// splitmix64-style mix so nearby connection indexes get uncorrelated
/// streams.
fn mix(seed: u64, conn: u64) -> u64 {
    let mut z = seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Reads [`ENV_FAULTS`] and parses it into an installable plan.
/// Returns `None` when the variable is unset or empty; a malformed spec
/// is an error (silently ignoring a typo'd chaos schedule would make a
/// "passing" run meaningless).
pub fn load_env_plan() -> Result<Option<Arc<FaultPlan>>, String> {
    match std::env::var(ENV_FAULTS) {
        Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec).map(|p| Some(Arc::new(p))),
        _ => Ok(None),
    }
}

/// One connection's deterministic fault decision stream.
///
/// Endpoints call [`StreamFaults::decide`] once per complete frame.
/// Exactly four random draws happen per call regardless of the
/// probabilities, so the stream is stable under probability tweaks of
/// zero vs. nonzero and under short-circuit ordering.
#[derive(Debug)]
pub struct StreamFaults {
    plan: Arc<FaultPlan>,
    conn: u64,
    rng: StdRng,
}

impl StreamFaults {
    /// Decides the fate of the next frame crossing in `dir`.
    pub fn decide(&mut self, dir: Direction) -> FrameFault {
        let profile = match dir {
            Direction::Send => &self.plan.send,
            Direction::Recv => &self.plan.recv,
        };
        // Fixed stride: always four draws per frame.
        let draws = [
            self.rng.gen::<f64>(),
            self.rng.gen::<f64>(),
            self.rng.gen::<f64>(),
            self.rng.gen::<f64>(),
        ];
        if draws[0] < profile.drop {
            FrameFault::Drop
        } else if draws[1] < profile.duplicate {
            FrameFault::Duplicate
        } else if draws[2] < profile.truncate {
            FrameFault::Truncate
        } else if draws[3] < profile.delay {
            FrameFault::Delay(profile.delay_for)
        } else {
            FrameFault::Deliver
        }
    }

    /// True while the plan scripts a partition right now.
    pub fn partitioned(&self) -> bool {
        self.plan.partitioned()
    }

    /// The connection index this stream was opened with (for logs).
    pub fn conn(&self) -> u64 {
        self.conn
    }

    /// The owning plan (for re-rendering the spec in failure reports).
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        let plan = FaultPlan::parse(
            "seed=42,drop=0.05,dup=0.02,trunc=0.01,delay=0.1:2ms,partition=500ms@2s",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.send.drop, 0.05);
        assert_eq!(plan.recv.drop, 0.05);
        assert_eq!(plan.send.delay_for, Duration::from_millis(2));
        assert_eq!(
            plan.partitions,
            vec![PartitionWindow {
                start: Duration::from_secs(2),
                end: Duration::from_millis(2500)
            }]
        );
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(reparsed.seed, plan.seed);
        assert_eq!(reparsed.send, plan.send);
        assert_eq!(reparsed.recv, plan.recv);
        assert_eq!(reparsed.partitions, plan.partitions);
    }

    #[test]
    fn directional_prefixes_apply_to_one_side() {
        let plan = FaultPlan::parse("seed=1,send.drop=0.5,recv.trunc=0.25").unwrap();
        assert_eq!(plan.send.drop, 0.5);
        assert_eq!(plan.recv.drop, 0.0);
        assert_eq!(plan.recv.truncate, 0.25);
        assert_eq!(plan.send.truncate, 0.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("nope=1").is_err());
        assert!(FaultPlan::parse("delay=0.5").is_err());
        assert!(FaultPlan::parse("partition=5ms").is_err());
        assert!(FaultPlan::parse("up.drop=0.1").is_err());
        assert!(FaultPlan::parse("seed").is_err());
        assert!(FaultPlan::parse("delay=0.1:5parsecs").is_err());
    }

    #[test]
    fn same_seed_same_decisions() {
        let decide_all = |seed: u64| -> Vec<FrameFault> {
            let plan = Arc::new(
                FaultPlan::parse(&format!("seed={seed},drop=0.2,dup=0.2,trunc=0.1,delay=0.2:1ms"))
                    .unwrap(),
            );
            let mut out = Vec::new();
            for _ in 0..3 {
                let mut s = plan.stream();
                for _ in 0..64 {
                    out.push(s.decide(Direction::Send));
                    out.push(s.decide(Direction::Recv));
                }
            }
            out
        };
        let a = decide_all(7);
        let b = decide_all(7);
        let c = decide_all(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().any(|f| *f != FrameFault::Deliver), "plan injected nothing");
    }

    #[test]
    fn noop_plan_delivers_everything() {
        let plan = Arc::new(FaultPlan::parse("seed=3").unwrap());
        assert!(plan.is_noop());
        let mut s = plan.stream();
        for _ in 0..256 {
            assert_eq!(s.decide(Direction::Send), FrameFault::Deliver);
        }
        assert!(!s.partitioned());
    }

    #[test]
    fn partition_window_tracks_epoch() {
        let plan = FaultPlan::new(
            0,
            FaultProfile::default(),
            FaultProfile::default(),
            vec![PartitionWindow { start: Duration::ZERO, end: Duration::from_secs(3600) }],
        );
        assert!(plan.partitioned());
        let later = FaultPlan::new(
            0,
            FaultProfile::default(),
            FaultProfile::default(),
            vec![PartitionWindow {
                start: Duration::from_secs(3600),
                end: Duration::from_secs(7200),
            }],
        );
        assert!(!later.partitioned());
    }

    #[test]
    fn env_plan_requires_well_formed_spec() {
        // Not using set_var: tests run threaded. Exercise the parse
        // contract the env loader relies on instead.
        assert!(FaultPlan::parse("seed=11,drop=0.1").is_ok());
        assert!(FaultPlan::parse("seed=11,drop=nope").is_err());
    }
}
