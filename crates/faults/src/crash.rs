//! Named crash/fail points.
//!
//! A crash point is a call like
//! `sdci_faults::crash_point("store.flush.manifest_commit")?` compiled
//! into a recovery-critical code path. Unarmed, it costs one relaxed
//! atomic load. Armed — via the `SDCI_CRASH_POINTS` env var or
//! [`arm`] — the point either aborts the process on its n-th hit
//! (simulating `kill -9` at exactly that step) or returns an injected
//! `io::Error` (simulating a transient syscall failure such as EAGAIN
//! from `clone(2)`).
//!
//! Env syntax: `SDCI_CRASH_POINTS=name[:N[:abort|error]][,...]` — the
//! point fires on its `N`-th hit (default 1) and then disarms, so a
//! restarted process re-running the same binary does not crash again
//! unless re-armed.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// Environment variable listing armed crash points.
pub const ENV_CRASH_POINTS: &str = "SDCI_CRASH_POINTS";

/// What an armed crash point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// `std::process::abort()` — the hard-kill a chaos schedule uses to
    /// test recovery; no destructors, no flush, exactly like SIGKILL at
    /// that instruction.
    Abort,
    /// Return `io::Error` (`ErrorKind::Other`, message names the
    /// point) from [`crash_point`] — a transient-failure simulation the
    /// caller must survive.
    Error,
}

#[derive(Debug)]
struct ArmedPoint {
    /// Fires when this many hits have accumulated.
    after: u32,
    hits: u32,
    mode: CrashMode,
}

static ANY_ARMED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn registry() -> &'static Mutex<HashMap<String, ArmedPoint>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, ArmedPoint>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Parses and arms everything in `SDCI_CRASH_POINTS`. Called lazily by
/// the first [`crash_point`] hit, so binaries need no explicit init;
/// callable eagerly (e.g. by `sdcimon`) to surface spec typos at start
/// rather than at the first armed path.
pub fn init_from_env() {
    ENV_INIT.call_once(|| {
        let Ok(spec) = std::env::var(ENV_CRASH_POINTS) else { return };
        for term in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match parse_term(term) {
                Ok((name, after, mode)) => arm(&name, after, mode),
                Err(err) => {
                    sdci_obs::error!("bad SDCI_CRASH_POINTS term `{term}`"; error = err)
                }
            }
        }
    });
}

fn parse_term(term: &str) -> Result<(String, u32, CrashMode), String> {
    let mut parts = term.split(':');
    let name = parts.next().unwrap_or_default();
    if name.is_empty() {
        return Err("empty crash point name".into());
    }
    let after = match parts.next() {
        None => 1,
        Some(n) => n.parse::<u32>().map_err(|_| format!("bad hit count `{n}`"))?,
    };
    if after == 0 {
        return Err("hit count must be >= 1".into());
    }
    let mode = match parts.next() {
        None | Some("abort") => CrashMode::Abort,
        Some("error") => CrashMode::Error,
        Some(other) => return Err(format!("unknown mode `{other}`")),
    };
    if parts.next().is_some() {
        return Err(format!("trailing fields in `{term}`"));
    }
    Ok((name.to_string(), after, mode))
}

/// Arms `name` to fire on its `after`-th hit (1 = next hit) in `mode`.
/// Re-arming an already-armed point resets its hit counter.
pub fn arm(name: &str, after: u32, mode: CrashMode) {
    let mut reg = registry().lock().expect("crash point registry poisoned");
    reg.insert(name.to_string(), ArmedPoint { after: after.max(1), hits: 0, mode });
    ANY_ARMED.store(true, Ordering::Release);
    sdci_obs::info!("crash point armed"; point = name, after = u64::from(after), mode = format!("{mode:?}"));
}

/// Disarms one point; returns true if it was armed.
pub fn disarm(name: &str) -> bool {
    let mut reg = registry().lock().expect("crash point registry poisoned");
    let removed = reg.remove(name).is_some();
    if reg.is_empty() {
        ANY_ARMED.store(false, Ordering::Release);
    }
    removed
}

/// Disarms every point (tests call this between cases).
pub fn disarm_all() {
    let mut reg = registry().lock().expect("crash point registry poisoned");
    reg.clear();
    ANY_ARMED.store(false, Ordering::Release);
}

/// Renders the currently armed points as an env-style spec (for
/// failure reports); empty string when nothing is armed.
pub fn armed_spec() -> String {
    let reg = registry().lock().expect("crash point registry poisoned");
    let mut terms: Vec<String> = reg
        .iter()
        .map(|(name, p)| {
            let mode = match p.mode {
                CrashMode::Abort => "abort",
                CrashMode::Error => "error",
            };
            format!("{name}:{}:{mode}", p.after.saturating_sub(p.hits).max(1))
        })
        .collect();
    terms.sort();
    terms.join(",")
}

/// The crash point itself. Returns `Ok(())` when unarmed or not yet at
/// its trigger count; aborts the process or returns an injected error
/// when it fires. A fired point disarms itself.
pub fn crash_point(name: &str) -> io::Result<()> {
    init_from_env();
    if !ANY_ARMED.load(Ordering::Acquire) {
        return Ok(());
    }
    let mode = {
        let mut reg = registry().lock().expect("crash point registry poisoned");
        let Some(point) = reg.get_mut(name) else { return Ok(()) };
        point.hits += 1;
        if point.hits < point.after {
            return Ok(());
        }
        let mode = point.mode;
        reg.remove(name);
        if reg.is_empty() {
            ANY_ARMED.store(false, Ordering::Release);
        }
        mode
    };
    match mode {
        CrashMode::Abort => {
            // Flush the log record before dying: the chaos harness
            // greps for it to confirm the schedule fired where asked.
            sdci_obs::error!("crash point firing: abort"; point = name);
            std::process::abort();
        }
        CrashMode::Error => {
            sdci_obs::error!("crash point firing: injected error"; point = name);
            Err(io::Error::other(format!("injected fault at crash point `{name}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registry is process-global; run every scenario in one test to
    // avoid cross-test interference under the threaded test runner.
    #[test]
    fn arm_fire_and_disarm_semantics() {
        disarm_all();
        assert!(crash_point("unarmed.point").is_ok());

        // Error mode fires on the n-th hit, then disarms.
        arm("t.point", 3, CrashMode::Error);
        assert!(crash_point("t.point").is_ok());
        assert!(crash_point("t.point").is_ok());
        let err = crash_point("t.point").unwrap_err();
        assert!(err.to_string().contains("t.point"), "error names the point: {err}");
        assert!(crash_point("t.point").is_ok(), "fired point disarms itself");

        // Other names never fire.
        arm("t.other", 1, CrashMode::Error);
        assert!(crash_point("t.point").is_ok());
        assert!(crash_point("t.other").is_err());

        // armed_spec renders remaining-hit counts.
        arm("t.a", 2, CrashMode::Error);
        arm("t.b", 1, CrashMode::Abort);
        assert!(crash_point("t.a").is_ok());
        assert_eq!(armed_spec(), "t.a:1:error,t.b:1:abort");

        assert!(disarm("t.a"));
        assert!(!disarm("t.a"));
        disarm_all();
        assert_eq!(armed_spec(), "");
        assert!(crash_point("t.b").is_ok());
    }

    #[test]
    fn env_term_parser() {
        assert_eq!(
            parse_term("store.flush.head").unwrap(),
            ("store.flush.head".into(), 1, CrashMode::Abort)
        );
        assert_eq!(parse_term("x:4").unwrap(), ("x".into(), 4, CrashMode::Abort));
        assert_eq!(parse_term("x:2:error").unwrap(), ("x".into(), 2, CrashMode::Error));
        assert!(parse_term(":2").is_err());
        assert!(parse_term("x:zero").is_err());
        assert!(parse_term("x:0").is_err());
        assert!(parse_term("x:1:explode").is_err());
        assert!(parse_term("x:1:error:extra").is_err());
    }
}
