//! Deterministic, seed-reproducible fault injection for the monitor's
//! I/O path.
//!
//! Two cooperating mechanisms live here:
//!
//! * [`FaultPlan`] — a declarative schedule of stochastic *wire* faults
//!   (per-direction drop / duplicate / truncate / delay probabilities
//!   plus scripted partition windows). A plan is parsed from a compact
//!   spec string (`seed=42,drop=0.05,...`), installed on an endpoint's
//!   `NetConfig`, and enforced by `sdci-net` at the frame boundary.
//!   Every random decision is drawn from the vendored `rand` seeded by
//!   `seed` mixed with a per-connection counter, so a failing run is
//!   replayed exactly by re-running with the printed spec.
//! * [`crash_point`] — named crash/fail points compiled into the store
//!   flush path (and the net accept paths). Armed via the
//!   `SDCI_CRASH_POINTS` env var or programmatically, a point either
//!   aborts the process (simulating `kill -9` mid-flush) or returns an
//!   injected `io::Error` (simulating a transient syscall failure).
//!   Unarmed points cost one relaxed atomic load.
//!
//! Neither mechanism is `cfg`-gated out of release builds: the paper's
//! monitor is a long-running distributed system, and the reproduction
//! treats fault schedules as first-class runtime configuration, not a
//! test-only build flavor.

#![forbid(unsafe_code)]

mod crash;
mod plan;

pub use crash::{arm, armed_spec, crash_point, disarm, disarm_all, init_from_env, CrashMode};
pub use plan::{
    load_env_plan, process_epoch, Direction, FaultPlan, FaultProfile, FrameFault, PartitionWindow,
    StreamFaults, ENV_FAULTS,
};
