//! Process readiness probes behind `GET /healthz`.
//!
//! Components register named probes (the aggregator registers "not
//! halted", for example); the exposition server runs them all on each
//! `/healthz` request and answers `200 ok` only when every probe
//! passes, else `503` with one line per failure. The registry-alive
//! check is implicit: rendering the response exercises the same global
//! state `/metrics` serves from.

use std::sync::{Mutex, OnceLock};

type Probe = Box<dyn Fn() -> Result<(), String> + Send + Sync>;

fn probes() -> &'static Mutex<Vec<(String, Probe)>> {
    static PROBES: OnceLock<Mutex<Vec<(String, Probe)>>> = OnceLock::new();
    PROBES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers (or replaces, by name) a readiness probe. The probe
/// returns `Ok(())` when ready and `Err(reason)` when not.
pub fn register_probe(
    name: impl Into<String>,
    probe: impl Fn() -> Result<(), String> + Send + Sync + 'static,
) {
    let name = name.into();
    let mut probes = probes().lock().unwrap_or_else(|e| e.into_inner());
    probes.retain(|(n, _)| *n != name);
    probes.push((name, Box::new(probe)));
}

/// Runs every registered probe; `Err` carries `(probe, reason)` pairs
/// for each failure. No registered probes means ready.
pub fn check() -> Result<(), Vec<(String, String)>> {
    let probes = probes().lock().unwrap_or_else(|e| e.into_inner());
    let failures: Vec<(String, String)> = probes
        .iter()
        .filter_map(|(name, probe)| probe().err().map(|reason| (name.clone(), reason)))
        .collect();
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn probes_gate_readiness_and_replace_by_name() {
        let halted = Arc::new(AtomicBool::new(false));
        let probe_halted = Arc::clone(&halted);
        register_probe("test.halted", move || {
            if probe_halted.load(Ordering::Relaxed) {
                Err("halted".into())
            } else {
                Ok(())
            }
        });
        assert!(check().is_ok());

        halted.store(true, Ordering::Relaxed);
        let failures = check().unwrap_err();
        assert!(failures.iter().any(|(n, r)| n == "test.halted" && r == "halted"));

        // Re-registering under the same name replaces the old probe.
        register_probe("test.halted", || Ok(()));
        assert!(check().is_ok());
    }
}
