//! `sdci-obs` — the monitor's self-observation layer.
//!
//! The paper's evaluation (§5, Figs. 4–6) is entirely about *rates and
//! latencies*: extraction rate, processing rate, and end-to-end event
//! delivery latency under load. The infrastructure-health tools it
//! contrasts itself with (MonALISA, Nagios, §2) expose exactly that
//! statistics view. This crate gives every other workspace crate the
//! primitives to report theirs:
//!
//! * [`log`] — a structured, leveled logging facade. The
//!   [`error!`]/[`warn!`]/[`info!`]/[`debug!`] macros emit single-line
//!   JSON records to stderr (timestamp offset, level, target, message,
//!   `key=value` fields), filtered per target via the `SDCI_LOG`
//!   environment variable.
//! * [`metrics`] — a process-global registry of named counters, gauges,
//!   and log-bucketed (power-of-2) latency histograms with
//!   p50/p90/p99/max, plus a [`ScopedTimer`] guard for span timing.
//! * [`expose`] — a minimal blocking HTTP responder serving the registry
//!   in Prometheus text exposition format.
//!
//! The crate is deliberately std-only: it sits below every other
//! workspace crate (types excepted), so nothing it observes can depend
//! on it cyclically, and the `--offline` build gains no new
//! dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expose;
pub mod health;
pub mod log;
pub mod metrics;
pub mod trace;

pub use expose::MetricsServer;
pub use log::Level;
pub use metrics::{registry, Counter, CounterVec, Gauge, Histogram, Registry, ScopedTimer};

/// Wall-clock nanoseconds since the UNIX epoch.
///
/// The pipeline stamps events with this at extraction so downstream
/// stages — possibly in other OS processes on the same host — can
/// compute end-to-end latency (the paper's Fig. 5/6 metric). Returns 0
/// if the system clock reads before the epoch.
pub fn unix_now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// A `&'static` metric handle, registered on first use.
///
/// Expands to an expression of type `&'static Counter` / `Gauge` /
/// `Histogram`, caching the registry lookup in a `OnceLock` so hot
/// paths (per-frame, per-event) pay one atomic load instead of a map
/// lookup:
///
/// ```
/// let c = sdci_obs::static_metric!(counter, "sdci_demo_frames_total");
/// c.inc();
/// ```
#[macro_export]
macro_rules! static_metric {
    (counter, $name:expr) => {{
        static METRIC: ::std::sync::OnceLock<$crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        METRIC.get_or_init(|| $crate::registry().counter($name))
    }};
    (counter_vec, $name:expr, $key:expr) => {{
        static METRIC: ::std::sync::OnceLock<$crate::metrics::CounterVec> =
            ::std::sync::OnceLock::new();
        METRIC.get_or_init(|| $crate::registry().counter_vec($name, $key))
    }};
    (gauge, $name:expr) => {{
        static METRIC: ::std::sync::OnceLock<$crate::metrics::Gauge> = ::std::sync::OnceLock::new();
        METRIC.get_or_init(|| $crate::registry().gauge($name))
    }};
    (histogram, $name:expr) => {{
        static METRIC: ::std::sync::OnceLock<$crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        METRIC.get_or_init(|| $crate::registry().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn unix_now_ns_is_monotonic_enough() {
        let a = super::unix_now_ns();
        let b = super::unix_now_ns();
        assert!(a > 1_500_000_000_000_000_000, "clock reads after 2017");
        assert!(b >= a);
    }

    #[test]
    fn static_metric_returns_the_same_handle() {
        let a = crate::static_metric!(counter, "sdci_obs_test_static_total");
        a.inc();
        let b = crate::static_metric!(counter, "sdci_obs_test_static_total");
        // Same OnceLock, same underlying counter.
        assert_eq!(b.get(), 1);
    }
}
