//! Structured, leveled logging: single-line JSON records on stderr.
//!
//! Every record is one JSON object per line:
//!
//! ```text
//! {"ts":1.204835,"level":"info","target":"sdcimon","msg":"snapshot restored","events":25,"seq":25}
//! ```
//!
//! * `ts` — seconds since the logger was initialised (process start, in
//!   practice), so interleaved multi-process logs still sort sensibly
//!   without clock coordination.
//! * `level` — `error` | `warn` | `info` | `debug`.
//! * `target` — the emitting module path (overridable per call site).
//! * `msg` — the formatted message.
//! * everything after `msg` — the call site's `key = value` fields,
//!   typed (numbers stay numbers, strings are escaped).
//!
//! Filtering is configured once per process from the `SDCI_LOG`
//! environment variable, with the familiar `env_logger` directive
//! grammar restricted to prefixes:
//!
//! ```text
//! SDCI_LOG=info                      # default level
//! SDCI_LOG=debug                     # everything
//! SDCI_LOG=warn,sdci_net=debug       # quiet overall, chatty transport
//! SDCI_LOG=sdci_core::collector=off  # silence one module
//! ```
//!
//! The most specific (longest) matching prefix wins. Unset defaults to
//! `info`.

use std::fmt;
use std::io::Write;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The pipeline lost something or cannot continue as configured.
    Error,
    /// Degraded but operating (shedding, reconnecting, retrying).
    Warn,
    /// Lifecycle and periodic self-monitoring records.
    Info,
    /// Per-connection / per-batch detail.
    Debug,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<Option<Level>> {
        // The outer Option is "did it parse"; the inner is the level,
        // with `None` meaning `off`.
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" | "trace" => Some(Some(Level::Debug)),
            "off" | "none" => Some(None),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed `SDCI_LOG` filter: a default level plus per-target-prefix
/// overrides.
#[derive(Debug, Clone)]
pub struct Filter {
    default: Option<Level>,
    /// `(target prefix, max level)` sorted longest-prefix-first so the
    /// first match is the most specific.
    directives: Vec<(String, Option<Level>)>,
}

impl Default for Filter {
    fn default() -> Self {
        Filter { default: Some(Level::Info), directives: Vec::new() }
    }
}

impl Filter {
    /// Parses an `SDCI_LOG`-style spec. Unparseable fragments are
    /// ignored (logging config must never crash the monitor); an empty
    /// or missing spec yields the `info` default.
    pub fn parse(spec: &str) -> Filter {
        let mut filter = Filter::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((target, level)) => {
                    if let Some(level) = Level::parse(level) {
                        filter.directives.push((target.trim().to_string(), level));
                    }
                }
                None => {
                    if let Some(level) = Level::parse(part) {
                        filter.default = level;
                    }
                }
            }
        }
        filter.directives.sort_by_key(|d| std::cmp::Reverse(d.0.len()));
        filter
    }

    /// Whether a record at `level` for `target` passes the filter.
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        let max = self
            .directives
            .iter()
            .find(|(prefix, _)| target.starts_with(prefix.as_str()))
            .map_or(self.default, |(_, level)| *level);
        max.is_some_and(|max| level <= max)
    }
}

/// A typed field value for a log record.
///
/// Construct via `From`: integers, floats, bools and strings keep their
/// JSON type; [`Field::raw`] embeds pre-rendered JSON verbatim (used to
/// nest a metrics snapshot inside a record).
#[derive(Debug, Clone)]
pub enum Field {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values render as `null`).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped on output).
    Str(String),
    /// Pre-rendered JSON, embedded verbatim.
    Raw(String),
}

impl Field {
    /// Embeds `json` in the record without escaping — the caller
    /// guarantees it is valid JSON (e.g. a rendered metrics snapshot).
    pub fn raw(json: impl Into<String>) -> Field {
        Field::Raw(json.into())
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Field::U64(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Field::I64(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Field::F64(v) if v.is_finite() => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Field::F64(_) => out.push_str("null"),
            Field::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Field::Str(s) => escape_json(s, out),
            Field::Raw(json) => out.push_str(json),
        }
    }
}

macro_rules! field_from {
    ($($ty:ty => $variant:ident as $conv:ty),+ $(,)?) => {
        $(impl From<$ty> for Field {
            fn from(v: $ty) -> Field {
                Field::$variant(v as $conv)
            }
        })+
    };
}

field_from! {
    u64 => U64 as u64, u32 => U64 as u64, u16 => U64 as u64, usize => U64 as u64,
    i64 => I64 as i64, i32 => I64 as i64,
    f64 => F64 as f64, f32 => F64 as f64,
}

impl From<bool> for Field {
    fn from(v: bool) -> Field {
        Field::Bool(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}

impl From<&String> for Field {
    fn from(v: &String) -> Field {
        Field::Str(v.clone())
    }
}

impl From<&std::path::Path> for Field {
    fn from(v: &std::path::Path) -> Field {
        Field::Str(v.display().to_string())
    }
}

impl From<&std::path::PathBuf> for Field {
    fn from(v: &std::path::PathBuf) -> Field {
        Field::Str(v.display().to_string())
    }
}

impl From<std::net::SocketAddr> for Field {
    fn from(v: std::net::SocketAddr) -> Field {
        Field::Str(v.to_string())
    }
}

impl From<std::time::Duration> for Field {
    fn from(v: std::time::Duration) -> Field {
        Field::F64(v.as_secs_f64())
    }
}

/// JSON string escaping (quotes included in the output).
fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Logger {
    filter: Filter,
    epoch: Instant,
    sink: Mutex<Box<dyn Write + Send>>,
}

static LOGGER: OnceLock<Logger> = OnceLock::new();

fn logger() -> &'static Logger {
    LOGGER.get_or_init(|| Logger {
        filter: Filter::parse(&std::env::var("SDCI_LOG").unwrap_or_default()),
        epoch: Instant::now(),
        sink: Mutex::new(Box::new(std::io::stderr())),
    })
}

/// Initialises the global logger from `SDCI_LOG` (idempotent; the first
/// emitted record does this implicitly). Call early in `main` so the
/// `ts` offset anchors at process start.
pub fn init_from_env() {
    let _ = logger();
}

/// Whether a record at `level` for `target` would be emitted. The
/// logging macros check this before formatting anything.
pub fn enabled(level: Level, target: &str) -> bool {
    logger().filter.enabled(level, target)
}

/// Renders one record as a single JSON line (no trailing newline).
/// Public for tests and for embedding records elsewhere; emission goes
/// through the logging macros.
pub fn format_record(
    ts_secs: f64,
    level: Level,
    target: &str,
    msg: fmt::Arguments<'_>,
    fields: &[(&str, Field)],
) -> String {
    let mut out = String::with_capacity(128);
    let _ = fmt::Write::write_fmt(&mut out, format_args!("{{\"ts\":{ts_secs:.6},\"level\":\""));
    out.push_str(level.as_str());
    out.push_str("\",\"target\":");
    escape_json(target, &mut out);
    out.push_str(",\"msg\":");
    escape_json(&msg.to_string(), &mut out);
    for (key, value) in fields {
        out.push(',');
        escape_json(key, &mut out);
        out.push(':');
        value.write_json(&mut out);
    }
    out.push('}');
    out
}

/// Formats and writes one record to the global sink. Called by the
/// logging macros after an [`enabled`] check; emission failures are
/// swallowed (logging must never take the pipeline down).
pub fn write_record(level: Level, target: &str, msg: fmt::Arguments<'_>, fields: &[(&str, Field)]) {
    let logger = logger();
    let line = format_record(logger.epoch.elapsed().as_secs_f64(), level, target, msg, fields);
    if let Ok(mut sink) = logger.sink.lock() {
        let _ = writeln!(sink, "{line}");
    }
}

/// Emits a record at an explicit [`Level`]. Prefer the per-level macros.
#[macro_export]
macro_rules! log_record {
    ($lvl:expr, target: $target:expr, $fmt:expr $(, $arg:expr)* $(; $($k:ident = $v:expr),+ $(,)?)?) => {{
        let level = $lvl;
        let target = $target;
        if $crate::log::enabled(level, target) {
            $crate::log::write_record(
                level,
                target,
                ::core::format_args!($fmt $(, $arg)*),
                &[$($((::core::stringify!($k), $crate::log::Field::from($v))),+)?],
            );
        }
    }};
    ($lvl:expr, $fmt:expr $(, $arg:expr)* $(; $($k:ident = $v:expr),+ $(,)?)?) => {
        $crate::log_record!(
            $lvl, target: ::core::module_path!(), $fmt $(, $arg)* $(; $($k = $v),+)?
        )
    };
}

/// Emits an `error`-level JSON record.
///
/// ```
/// sdci_obs::error!("bind failed: {}", "addr in use"; port = 7070u64);
/// ```
#[macro_export]
macro_rules! error {
    ($($t:tt)*) => { $crate::log_record!($crate::log::Level::Error, $($t)*) };
}

/// Emits a `warn`-level JSON record.
#[macro_export]
macro_rules! warn {
    ($($t:tt)*) => { $crate::log_record!($crate::log::Level::Warn, $($t)*) };
}

/// Emits an `info`-level JSON record.
///
/// Message formatting first, then optional `key = value` fields after a
/// semicolon:
///
/// ```
/// let restored = 25u64;
/// sdci_obs::info!("snapshot restored"; events = restored, path = "/tmp/snap");
/// ```
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => { $crate::log_record!($crate::log::Level::Info, $($t)*) };
}

/// Emits a `debug`-level JSON record.
#[macro_export]
macro_rules! debug {
    ($($t:tt)*) => { $crate::log_record!($crate::log::Level::Debug, $($t)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_filter_is_info() {
        let f = Filter::default();
        assert!(f.enabled(Level::Error, "x"));
        assert!(f.enabled(Level::Info, "x"));
        assert!(!f.enabled(Level::Debug, "x"));
    }

    #[test]
    fn filter_parses_bare_level() {
        let f = Filter::parse("debug");
        assert!(f.enabled(Level::Debug, "anything"));
        let f = Filter::parse("warn");
        assert!(!f.enabled(Level::Info, "anything"));
        assert!(f.enabled(Level::Warn, "anything"));
    }

    #[test]
    fn filter_longest_prefix_wins() {
        let f = Filter::parse("warn,sdci_net=debug,sdci_net::pipe=error");
        assert!(f.enabled(Level::Debug, "sdci_net::pubsub"));
        assert!(!f.enabled(Level::Warn, "sdci_net::pipe"));
        assert!(f.enabled(Level::Error, "sdci_net::pipe"));
        assert!(!f.enabled(Level::Info, "sdci_core::collector"));
    }

    #[test]
    fn filter_off_silences_a_target() {
        let f = Filter::parse("info,sdci_core::metrics=off");
        assert!(!f.enabled(Level::Error, "sdci_core::metrics"));
        assert!(f.enabled(Level::Info, "sdci_core::collector"));
    }

    #[test]
    fn filter_ignores_garbage() {
        let f = Filter::parse("blorp,=,a=b=c,sdci_net=verbose,,info");
        assert!(f.enabled(Level::Info, "sdci_net"));
        assert!(!f.enabled(Level::Debug, "sdci_net"));
    }

    #[test]
    fn record_is_one_json_line_with_typed_fields() {
        let line = format_record(
            1.25,
            Level::Info,
            "sdcimon",
            format_args!("hello {}", 7),
            &[
                ("count", Field::from(42u64)),
                ("rate", Field::from(1.5f64)),
                ("ok", Field::from(true)),
                ("who", Field::from("a \"quoted\"\nname")),
            ],
        );
        assert_eq!(
            line,
            "{\"ts\":1.250000,\"level\":\"info\",\"target\":\"sdcimon\",\"msg\":\"hello 7\",\
             \"count\":42,\"rate\":1.5,\"ok\":true,\"who\":\"a \\\"quoted\\\"\\nname\"}"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn raw_fields_embed_json_verbatim() {
        let line = format_record(
            0.0,
            Level::Info,
            "t",
            format_args!("m"),
            &[("metrics", Field::raw("{\"a\":1}"))],
        );
        assert!(line.ends_with("\"metrics\":{\"a\":1}}"));
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let line = format_record(
            0.0,
            Level::Warn,
            "t",
            format_args!("m"),
            &[("x", Field::from(f64::NAN))],
        );
        assert!(line.contains("\"x\":null"));
    }

    #[test]
    fn control_chars_are_escaped() {
        let mut out = String::new();
        escape_json("a\u{1}b", &mut out);
        assert_eq!(out, "\"a\\u0001b\"");
    }

    #[test]
    fn macros_compile_in_every_shape() {
        // Emission goes to stderr; this only exercises the macro grammar.
        crate::info!("plain");
        crate::info!("formatted {}", 1);
        crate::debug!("fields only"; a = 1u64, b = "two");
        crate::warn!("formatted {} with fields", 2; c = 3.0f64,);
        crate::error!(target: "custom", "explicit target"; ok = false);
    }
}
