//! A sampling, process-local span recorder for distributed traces.
//!
//! Each process records [`Span`]s into a fixed-size ring of slots (a
//! "lock-free-ish" ring: an atomic cursor claims a slot, a per-slot
//! mutex guards the short write), so tracing never allocates unbounded
//! memory and never blocks the pipeline on a reader. Cross-process
//! causality travels *with the data*: the pipeline serializes a
//! `TraceContext` (defined in `sdci-types`, since this crate sits
//! below it) onto events and wire frames, and each hop opens its span
//! with [`child_of`] using the carried ids. Within a process, spans
//! nest through a thread-local current context — [`child`] parents
//! itself automatically, so e.g. store-middleware layers need no
//! plumbing to appear under the aggregator's ingest span.
//!
//! # Sampling
//!
//! Head-based: [`root`] samples every Nth trace per thread (set via
//! [`set_sample_every`], `0` disables tracing entirely and makes every
//! guard inert; the tick is thread-local so the per-event decision
//! never touches a shared cache line). Only sampled roots propagate context; unsampled
//! roots are still *timed*, feeding a small tail-capture buffer of the
//! slowest root spans — so a latency outlier is visible on `/tracez`
//! even when head sampling missed it (with root-only detail; full span
//! trees exist only for head-sampled traces).
//!
//! # Exposition
//!
//! [`render_tracez`] serializes the ring and the slow buffer as JSON;
//! the obs HTTP server serves it at `/tracez`. Ids render as 16-digit
//! hex strings so no JSON consumer has to worry about u64 precision.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How many spans the per-process ring retains.
pub const RING_CAPACITY: usize = 4096;

/// How many slowest root spans the tail-capture buffer retains.
pub const SLOW_CAPACITY: usize = 32;

/// A span's identity: which trace it belongs to and its own id, plus
/// the head-sampling decision. This is the process-local twin of
/// `sdci_types::TraceContext` (which carries the *parent* id across a
/// hop); conversions happen at the call sites that bridge the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Identifier shared by every span of one end-to-end trace.
    pub trace_id: u64,
    /// This span's own id — the parent id of anything opened under it.
    pub span_id: u64,
    /// Whether the trace was head-sampled at its root.
    pub sampled: bool,
}

/// One recorded span, as it lands in the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id; `0` for a root.
    pub parent_span_id: u64,
    /// Static operation name (`collector.extract`, `scatter.shard`...).
    pub name: &'static str,
    /// Free-form annotation (shard id, cache hit/miss, batch size...).
    pub detail: String,
    /// Wall-clock start, nanoseconds since the UNIX epoch.
    pub start_unix_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
}

// ---------------------------------------------------------------------------
// Globals
// ---------------------------------------------------------------------------

static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(0);
static ID_COUNTER: AtomicU64 = AtomicU64::new(0);
static SLOW_FLOOR: AtomicU64 = AtomicU64::new(0);

fn process_name() -> &'static Mutex<String> {
    static NAME: OnceLock<Mutex<String>> = OnceLock::new();
    NAME.get_or_init(|| Mutex::new(String::new()))
}

struct Ring {
    slots: Vec<Mutex<Option<Span>>>,
    cursor: AtomicUsize,
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring {
        slots: (0..RING_CAPACITY).map(|_| Mutex::new(None)).collect(),
        cursor: AtomicUsize::new(0),
    })
}

fn slow_buffer() -> &'static Mutex<Vec<Span>> {
    static SLOW: OnceLock<Mutex<Vec<Span>>> = OnceLock::new();
    SLOW.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static CURRENT: std::cell::Cell<Option<SpanContext>> = const { std::cell::Cell::new(None) };
    // Head-sampling tick, kept per thread so the every-event sampling
    // decision is a plain cell bump instead of a fetch_add on a cache
    // line shared by every extraction thread. Each long-lived thread
    // still samples exactly one root in N.
    static HEAD_TICK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Enables tracing, sampling one trace root in every `n` (`1` samples
/// everything, `0` disables tracing and makes every guard inert).
pub fn set_sample_every(n: u64) {
    SAMPLE_EVERY.store(n, Ordering::Relaxed);
}

/// The current head-sampling rate (`0` = tracing disabled).
pub fn sample_every() -> u64 {
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// Reads the `SDCI_TRACE_SAMPLE` environment variable (`N` or `1/N`)
/// and enables sampling accordingly; absent or malformed leaves
/// tracing as it was.
pub fn init_from_env() {
    if let Ok(raw) = std::env::var("SDCI_TRACE_SAMPLE") {
        let n = raw.trim();
        let n = n.strip_prefix("1/").unwrap_or(n);
        if let Ok(n) = n.parse::<u64>() {
            set_sample_every(n);
        }
    }
}

/// Names this process on `/tracez` output (`collector`, `shard1`...).
pub fn set_process(name: impl Into<String>) {
    *process_name().lock().unwrap_or_else(|e| e.into_inner()) = name.into();
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fresh nonzero id, unique enough across processes: a splitmix64
/// stream seeded from the wall clock and pid at first use.
fn next_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed =
        *SEED.get_or_init(|| (crate::unix_now_ns() ^ (u64::from(std::process::id()) << 32)) | 1);
    let n = ID_COUNTER.fetch_add(1, Ordering::Relaxed);
    splitmix64(seed.wrapping_add(n)).max(1)
}

/// The context of the innermost live sampled span on this thread, if
/// any — what a span opened right now would have as its parent, and
/// what gets serialized onto outbound RPCs.
pub fn current() -> Option<SpanContext> {
    CURRENT.with(|c| c.get())
}

// ---------------------------------------------------------------------------
// Guards
// ---------------------------------------------------------------------------

struct LiveSpan {
    ctx: SpanContext,
    parent_span_id: u64,
    name: &'static str,
    detail: String,
    start: Instant,
    prev: Option<SpanContext>,
    is_root: bool,
}

/// An open span; recording happens on drop. Inert guards (tracing
/// disabled, or no sampled parent for [`child`]) cost nothing.
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl SpanGuard {
    const INERT: SpanGuard = SpanGuard { live: None };

    fn open(
        trace_id: u64,
        parent_span_id: u64,
        sampled: bool,
        name: &'static str,
        is_root: bool,
    ) -> SpanGuard {
        // A root reuses its (freshly minted) trace id as its span id —
        // still unique, and one fewer contended atomic on the
        // every-event head-sampling path. An *unsampled* root arrives
        // with `trace_id == 0`: its ids are minted lazily on drop, and
        // only if it proves slow enough for tail capture.
        let span_id = if is_root { trace_id } else { next_id() };
        let ctx = SpanContext { trace_id, span_id, sampled };
        // Only sampled spans become the thread's current context:
        // children of an unsampled (tail-timed) root stay inert, and
        // drop never restores `prev` for them either.
        let prev = if sampled { CURRENT.with(|c| c.replace(Some(ctx))) } else { None };
        SpanGuard {
            live: Some(LiveSpan {
                ctx,
                parent_span_id,
                name,
                detail: String::new(),
                start: Instant::now(),
                prev,
                is_root,
            }),
        }
    }

    /// The opened span's context, for attaching to outbound payloads —
    /// `None` when the guard is inert or the trace is unsampled.
    pub fn context(&self) -> Option<SpanContext> {
        self.live.as_ref().map(|l| l.ctx).filter(|c| c.sampled)
    }

    /// Annotates the span (shard id, hit/miss, batch size...). No-op
    /// on inert guards.
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        if let Some(live) = &mut self.live {
            live.detail = detail.into();
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        if live.ctx.sampled {
            CURRENT.with(|c| c.set(live.prev));
        }
        let duration_ns = u64::try_from(live.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // Unsampled roots exist only to feed tail capture; when they
        // beat the slow floor there is nothing to record at all, so
        // skip building the span (and its wall-clock read) entirely —
        // this is the head-sampled hot path, N-1 of every N roots.
        if !live.ctx.sampled && (!live.is_root || duration_ns <= SLOW_FLOOR.load(Ordering::Relaxed))
        {
            return;
        }
        // An unsampled root deferred its id mint to here — the one
        // case that reaches this point is a tail-capture candidate.
        let (trace_id, span_id) = if live.ctx.trace_id == 0 {
            let id = next_id();
            (id, id)
        } else {
            (live.ctx.trace_id, live.ctx.span_id)
        };
        let span = Span {
            trace_id,
            span_id,
            parent_span_id: live.parent_span_id,
            name: live.name,
            detail: live.detail,
            start_unix_ns: crate::unix_now_ns().saturating_sub(duration_ns),
            duration_ns,
        };
        if live.is_root {
            record_slow(&span);
        }
        if live.ctx.sampled {
            record(span);
        }
    }
}

fn record(span: Span) {
    let ring = ring();
    let slot = ring.cursor.fetch_add(1, Ordering::Relaxed) % ring.slots.len();
    *ring.slots[slot].lock().unwrap_or_else(|e| e.into_inner()) = Some(span);
}

/// Tail capture: keep the `SLOW_CAPACITY` slowest root spans seen so
/// far. The atomic floor makes the common case (span faster than the
/// slowest retained) a single load, no lock.
fn record_slow(span: &Span) {
    if span.duration_ns <= SLOW_FLOOR.load(Ordering::Relaxed) {
        return;
    }
    let mut slow = slow_buffer().lock().unwrap_or_else(|e| e.into_inner());
    if slow.len() >= SLOW_CAPACITY {
        // Replace the current fastest entry, then re-derive the floor.
        if let Some(idx) = (0..slow.len())
            .min_by_key(|&i| slow[i].duration_ns)
            .filter(|&i| slow[i].duration_ns < span.duration_ns)
        {
            slow[idx] = span.clone();
        } else {
            return;
        }
    } else {
        slow.push(span.clone());
    }
    if slow.len() >= SLOW_CAPACITY {
        let floor = slow.iter().map(|s| s.duration_ns).min().unwrap_or(0);
        SLOW_FLOOR.store(floor, Ordering::Relaxed);
    }
}

/// Opens a trace root, applying head sampling. With sampling disabled
/// the guard is fully inert; with sampling on, every root is timed
/// (for tail capture) but only every Nth propagates context and
/// records its tree.
pub fn root(name: &'static str) -> SpanGuard {
    let every = SAMPLE_EVERY.load(Ordering::Relaxed);
    if every == 0 {
        return SpanGuard::INERT;
    }
    let sampled = HEAD_TICK
        .with(|c| {
            let n = c.get();
            c.set(n.wrapping_add(1));
            n
        })
        .is_multiple_of(every);
    // Unsampled roots are timed but almost never recorded; they get
    // ids on drop iff they prove slow, so N-1 of every N roots skip
    // the id counter entirely.
    let trace_id = if sampled { next_id() } else { 0 };
    SpanGuard::open(trace_id, 0, sampled, name, true)
}

/// Opens a span under the thread's current context; inert when there
/// is none (so unsampled paths cost one thread-local read).
pub fn child(name: &'static str) -> SpanGuard {
    match current() {
        Some(parent) if parent.sampled => {
            SpanGuard::open(parent.trace_id, parent.span_id, true, name, false)
        }
        _ => SpanGuard::INERT,
    }
}

/// Opens a span under an explicitly carried parent — the receive side
/// of a process boundary, where the parent arrived inside a payload.
/// Inert when tracing is disabled in *this* process (a peer's sampling
/// decision cannot force a process that opted out to record).
pub fn child_of(trace_id: u64, parent_span_id: u64, name: &'static str) -> SpanGuard {
    if SAMPLE_EVERY.load(Ordering::Relaxed) == 0 {
        return SpanGuard::INERT;
    }
    SpanGuard::open(trace_id, parent_span_id, true, name, false)
}

// ---------------------------------------------------------------------------
// Exposition
// ---------------------------------------------------------------------------

/// Every span currently retained in the ring (arbitrary order).
pub fn snapshot() -> Vec<Span> {
    ring()
        .slots
        .iter()
        .filter_map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).clone())
        .collect()
}

/// The tail-capture buffer: the slowest root spans seen so far.
pub fn slow_snapshot() -> Vec<Span> {
    slow_buffer().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn span_json(out: &mut String, span: &Span) {
    out.push_str(&format!(
        "{{\"trace_id\":\"{:016x}\",\"span_id\":\"{:016x}\",\"parent_span_id\":\"{:016x}\",\
         \"name\":\"{}\",\"detail\":\"",
        span.trace_id, span.span_id, span.parent_span_id, span.name
    ));
    escape_into(out, &span.detail);
    out.push_str(&format!(
        "\",\"start_unix_ns\":{},\"duration_ns\":{}}}",
        span.start_unix_ns, span.duration_ns
    ));
}

/// Serializes the ring and slow buffer as the `/tracez` JSON document:
/// `{"process", "sample_every", "spans": [...], "slow": [...]}` with
/// ids as 16-digit hex strings.
pub fn render_tracez() -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("{\"process\":\"");
    escape_into(&mut out, &process_name().lock().unwrap_or_else(|e| e.into_inner()));
    out.push_str(&format!("\",\"sample_every\":{},\"spans\":[", sample_every()));
    for (i, span) in snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        span_json(&mut out, span);
    }
    out.push_str("],\"slow\":[");
    for (i, span) in slow_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        span_json(&mut out, span);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
pub(crate) mod test_support {
    //! The sample rate is process-global; unit tests across modules
    //! serialize their mutations through this one lock.
    use std::sync::Mutex;

    pub(crate) fn rate_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global and tests run in parallel:
    // every test that touches the sample rate holds this lock, and
    // assertions filter by the ids they created rather than assuming
    // an empty ring.
    use crate::trace::test_support::rate_lock;

    #[test]
    fn disabled_tracer_is_inert() {
        let _l = rate_lock();
        set_sample_every(0);
        let g = root("test.inert");
        assert!(g.context().is_none());
        drop(g);
        assert!(child("test.inert.child").context().is_none());
    }

    #[test]
    fn sampled_root_records_and_nests_children() {
        let _l = rate_lock();
        set_sample_every(1);
        let (root_ctx, child_ctx) = {
            let mut g = root("test.root");
            g.set_detail("outer");
            let root_ctx = g.context().expect("1/1 sampling samples everything");
            assert_eq!(current(), Some(root_ctx), "root becomes the thread current");
            let c = child("test.child");
            let child_ctx = c.context().expect("child of a sampled span is sampled");
            assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
            drop(c);
            (root_ctx, child_ctx)
        };
        assert_eq!(current(), None, "guard drop restores the previous context");

        let spans = snapshot();
        let rec_root = spans.iter().find(|s| s.span_id == root_ctx.span_id).expect("root in ring");
        let rec_child =
            spans.iter().find(|s| s.span_id == child_ctx.span_id).expect("child in ring");
        assert_eq!(rec_root.parent_span_id, 0);
        assert_eq!(rec_root.detail, "outer");
        assert_eq!(rec_child.parent_span_id, root_ctx.span_id);
        assert_eq!(rec_child.trace_id, rec_root.trace_id);
    }

    #[test]
    fn child_of_adopts_the_carried_parent() {
        let _l = rate_lock();
        set_sample_every(1);
        let g = child_of(0xabcd, 0x1234, "test.remote");
        let ctx = g.context().unwrap();
        drop(g);
        let span = snapshot().into_iter().find(|s| s.span_id == ctx.span_id).unwrap();
        assert_eq!(span.trace_id, 0xabcd);
        assert_eq!(span.parent_span_id, 0x1234);
    }

    #[test]
    fn head_sampling_takes_every_nth() {
        let _l = rate_lock();
        set_sample_every(1);
        // With N=1 every root must sample, regardless of where the
        // shared counter sits when this test runs.
        for _ in 0..5 {
            assert!(root("test.every").context().is_some());
        }
    }

    #[test]
    fn unsampled_roots_feed_tail_capture() {
        let _l = rate_lock();
        set_sample_every(u64::MAX); // effectively: time roots, sample none (almost)
        let slow_before = slow_snapshot().len();
        {
            let _g = root("test.slow");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let slow = slow_snapshot();
        assert!(
            slow.len() > slow_before || slow.iter().any(|s| s.name == "test.slow"),
            "a 2ms root should enter a buffer of sub-ms test spans"
        );
    }

    #[test]
    fn tracez_renders_valid_shaped_json() {
        let _l = rate_lock();
        set_sample_every(1);
        set_process("obs-test");
        drop(root("test.render"));
        let json = render_tracez();
        assert!(json.starts_with("{\"process\":"));
        assert!(json.contains("\"sample_every\":"));
        assert!(json.contains("\"spans\":["));
        assert!(json.contains("\"slow\":["));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
