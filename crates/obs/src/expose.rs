//! A minimal HTTP/1.1 responder serving the metrics registry in
//! Prometheus text exposition format.
//!
//! Hand-rolled over `std::net::TcpListener` — the build is `--offline`,
//! so no hyper/axum. GET-only, `Connection: close`, one thread, one
//! connection at a time: a scrape every few seconds is the entire
//! expected load.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Longest request head we will buffer before giving up on a client.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A background thread serving `GET /metrics` (and `GET /`) with the
/// global registry rendered as Prometheus text format.
///
/// The listener is bound synchronously in [`MetricsServer::bind`] — once
/// it returns, the port is scrapeable. Dropping the server stops the
/// accept loop and joins the thread.
pub struct MetricsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and starts the accept loop.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Nonblocking accept + short sleep lets the loop notice the
        // stop flag promptly without platform-specific wakeups.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("sdci-metrics-http".into())
            .spawn(move || accept_loop(listener, thread_stop))?;
        Ok(MetricsServer { local_addr, stop, handle: Some(handle) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Serve inline: scrapes are rare and the response is
                // small, so a second thread buys nothing.
                let _ = serve_connection(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_connection(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;

    // Read until the end of the request head; the body (if any) is
    // irrelevant for GET and we never read it.
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    while !head_complete(&head) {
        if head.len() > MAX_REQUEST_BYTES {
            return respond(&mut stream, "400 Bad Request", "request head too large\n");
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(()); // client went away
        }
        head.extend_from_slice(&buf[..n]);
    }

    let request_line = head
        .split(|&b| b == b'\n')
        .next()
        .map(|l| String::from_utf8_lossy(l).trim_end().to_string())
        .unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    if method != "GET" {
        return respond(&mut stream, "405 Method Not Allowed", "GET only\n");
    }
    match path {
        "/" | "/metrics" => {
            let body = crate::metrics::registry().render_prometheus();
            let mut response = String::with_capacity(body.len() + 128);
            response.push_str("HTTP/1.1 200 OK\r\n");
            response.push_str("Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n");
            response.push_str(&format!("Content-Length: {}\r\n", body.len()));
            response.push_str("Connection: close\r\n\r\n");
            response.push_str(&body);
            stream.write_all(response.as_bytes())
        }
        "/tracez" => {
            let body = crate::trace::render_tracez();
            let response = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n{body}",
                body.len()
            );
            stream.write_all(response.as_bytes())
        }
        "/healthz" => match crate::health::check() {
            Ok(()) => respond(&mut stream, "200 OK", "ok\n"),
            Err(failures) => {
                let mut body = String::new();
                for (name, reason) in failures {
                    body.push_str(&format!("not ready: {name}: {reason}\n"));
                }
                respond(&mut stream, "503 Service Unavailable", &body)
            }
        },
        _ => respond(&mut stream, "404 Not Found", "try /metrics, /tracez, or /healthz\n"),
    }
}

fn head_complete(head: &[u8]) -> bool {
    head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n")
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn http_get(addr: SocketAddr, path: &str, method: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("{method} {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut body = String::new();
        // Skip headers, then read to EOF (Connection: close).
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap() > 0 {
            if line == "\r\n" || line == "\n" {
                break;
            }
            line.clear();
        }
        reader.read_to_string(&mut body).unwrap();
        (status.trim_end().to_string(), body)
    }

    #[test]
    fn serves_prometheus_text_and_handles_bad_requests() {
        crate::metrics::registry().counter("sdci_obs_test_http_total").add(9);
        let server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/metrics", "GET");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("sdci_obs_test_http_total 9"), "{body}");

        let (status, _) = http_get(addr, "/", "GET");
        assert!(status.contains("200"), "{status}");

        let (status, _) = http_get(addr, "/nope", "GET");
        assert!(status.contains("404"), "{status}");

        let (status, _) = http_get(addr, "/metrics", "POST");
        assert!(status.contains("405"), "{status}");

        // /healthz: ready with no failing probes, 503 once one fails.
        let (status, body) = http_get(addr, "/healthz", "GET");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");
        crate::health::register_probe("expose.test", || Err("down for the test".into()));
        let (status, body) = http_get(addr, "/healthz", "GET");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("expose.test: down for the test"), "{body}");
        crate::health::register_probe("expose.test", || Ok(()));

        // /tracez: well-formed JSON document with the span arrays.
        let _rate = crate::trace::test_support::rate_lock();
        crate::trace::set_sample_every(1);
        drop(crate::trace::root("expose.test.span"));
        let (status, body) = http_get(addr, "/tracez", "GET");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"spans\":["), "{body}");
        assert!(body.contains("expose.test.span"), "{body}");

        server.shutdown();
        // Port is released after shutdown: a fresh connect fails or the
        // bind succeeds again.
        assert!(MetricsServer::bind(addr).is_ok());
    }
}
