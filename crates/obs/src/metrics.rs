//! A process-global registry of named counters, gauges, and
//! log-bucketed latency histograms.
//!
//! Everything is lock-free on the hot path: handles are `Arc`s over
//! atomics, so incrementing a counter or observing a latency is a few
//! atomic ops. The registry itself (a `Mutex<BTreeMap>`) is only locked
//! at registration and render time.
//!
//! Histograms use power-of-2 buckets over nanoseconds (HDR-style with a
//! log base of 2): bucket `i` counts observations with
//! `2^(i-1) < v <= 2^i` ns. 64 buckets cover 1 ns to ~584 years with at
//! most 2x relative error, which is plenty for the paper's Fig. 5/6
//! millisecond-scale delivery latencies.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

const BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    /// `buckets[i]` counts observations in `(2^(i-1), 2^i]` ns
    /// (`buckets[0]` is `v <= 1`). The last bucket also absorbs
    /// anything larger.
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

/// A latency histogram with power-of-2 buckets over nanoseconds.
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

fn bucket_index(v_ns: u64) -> usize {
    // ceil(log2(v)) for v > 1; 0 for v in {0, 1}. v=2^k lands in
    // bucket k (bounds are inclusive on the right).
    if v_ns <= 1 {
        0
    } else {
        (u64::BITS - (v_ns - 1).leading_zeros()).min(BUCKETS as u32 - 1) as usize
    }
}

/// Upper bound of bucket `i` in nanoseconds (`2^i`).
fn bucket_bound_ns(i: usize) -> u64 {
    1u64 << i.min(63)
}

impl Histogram {
    /// Records one observation of `v_ns` nanoseconds.
    pub fn observe_ns(&self, v_ns: u64) {
        let inner = &self.0;
        inner.buckets[bucket_index(v_ns)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum_ns.fetch_add(v_ns, Ordering::Relaxed);
        inner.max_ns.fetch_max(v_ns, Ordering::Relaxed);
    }

    /// Records one observation of a [`Duration`].
    pub fn observe_duration(&self, d: Duration) {
        self.observe_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a timer that records into this histogram when dropped.
    pub fn start_timer(&self) -> ScopedTimer {
        ScopedTimer { histogram: self.clone(), started: Instant::now(), observed: false }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.0.sum_ns.load(Ordering::Relaxed)
    }

    /// Largest observation so far, in nanoseconds (exact, not bucketed).
    pub fn max_ns(&self) -> u64 {
        self.0.max_ns.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`q` in `[0, 1]`), in nanoseconds, as the
    /// upper bound of the bucket holding the `q`-th observation — so at
    /// most 2x the true value. Returns 0 with no observations;
    /// `q >= 1.0` returns the exact max.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max_ns();
        }
        let rank = ((q.max(0.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.0.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bound_ns(i);
            }
        }
        self.max_ns()
    }

    fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(self.0.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// Records elapsed time into a [`Histogram`] when dropped.
///
/// ```
/// let h = sdci_obs::registry().histogram("sdci_obs_doc_span_seconds");
/// {
///     let _timer = h.start_timer();
///     // ... timed work ...
/// } // observation recorded here
/// assert_eq!(h.count(), 1);
/// ```
pub struct ScopedTimer {
    histogram: Histogram,
    started: Instant,
    observed: bool,
}

impl ScopedTimer {
    /// Records now and consumes the timer, returning the elapsed time.
    pub fn observe(mut self) -> Duration {
        let elapsed = self.started.elapsed();
        self.histogram.observe_duration(elapsed);
        self.observed = true;
        elapsed
    }

    /// Consumes the timer without recording anything.
    pub fn discard(mut self) {
        self.observed = true;
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if !self.observed {
            self.histogram.observe_duration(self.started.elapsed());
        }
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A cached family of [`Counter`]s sharing one name and one label key,
/// built by [`Registry::counter_vec`]. See that method for the caching
/// contract.
pub struct CounterVec {
    registry: &'static Registry,
    name: String,
    key: String,
    cells: RwLock<HashMap<String, Counter>>,
}

impl std::fmt::Debug for CounterVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CounterVec").field("name", &self.name).field("key", &self.key).finish()
    }
}

impl CounterVec {
    /// The counter for `value`, registering the
    /// `name{key="value"}` series on first use and answering from the
    /// cache afterwards.
    pub fn with(&self, value: &str) -> Counter {
        if let Some(c) = self.cells.read().unwrap().get(value) {
            return c.clone();
        }
        let counter = self.registry.counter_with(&self.name, &[(self.key.as_str(), value)]);
        let mut cells = self.cells.write().unwrap();
        cells.entry(value.to_string()).or_insert(counter).clone()
    }

    /// Adds 1 to the counter for `value`.
    pub fn inc(&self, value: &str) {
        self.with(value).inc();
    }

    /// Adds `n` to the counter for `value`.
    pub fn add(&self, value: &str, n: u64) {
        self.with(value).add(n);
    }
}

/// `(metric name, sorted label pairs)` — one time series.
type Key = (String, Vec<(String, String)>);

/// A registry of named metrics. Most code uses the process-global
/// [`registry()`]; tests construct their own.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<Key, Metric>>,
}

impl Registry {
    /// Creates an empty registry (tests; production uses [`registry()`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        let key = (name.to_string(), labels);
        let mut metrics = self.metrics.lock().unwrap();
        let metric = metrics.entry(key).or_insert_with(make);
        metric.clone()
    }

    /// Registers (or fetches) a counter. Panics if `name` already names
    /// a different metric kind — that is a programming error.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// A counter with labels, e.g. `("topic", "feed/")`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            m => panic!("metric {name} already registered as a {}", m.kind()),
        }
    }

    /// A cached counter family over one label key — the hot-path form
    /// of [`Registry::counter_with`] for call sites whose label value
    /// varies at runtime (per shard, per topic, per client).
    ///
    /// [`CounterVec::with`] resolves a label value to its [`Counter`]
    /// through a read-mostly cache, so only the *first* observation of
    /// each value pays the registry lock; after that it is one map read
    /// plus the atomic add. Requires `'static` because the cells keep
    /// registering new series against this registry for as long as the
    /// vec lives — the process-global [`registry()`](crate::registry)
    /// qualifies, and tests can `Box::leak` their own.
    pub fn counter_vec(
        &'static self,
        name: impl Into<String>,
        key: impl Into<String>,
    ) -> CounterVec {
        CounterVec { registry: self, name: name.into(), key: key.into(), cells: RwLock::default() }
    }

    /// Registers (or fetches) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// A gauge with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            m => panic!("metric {name} already registered as a {}", m.kind()),
        }
    }

    /// Registers (or fetches) a histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// A histogram with labels.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_insert(name, labels, || Metric::Histogram(Histogram::default())) {
            Metric::Histogram(h) => h,
            m => panic!("metric {name} already registered as a {}", m.kind()),
        }
    }

    /// Renders every series in Prometheus text exposition format 0.0.4.
    ///
    /// Histograms expose `_bucket{le="..."}` / `_sum` / `_count` with
    /// `le` bounds converted to **seconds** (the Prometheus base unit);
    /// only non-empty buckets are listed (plus `+Inf`), keeping 64-bucket
    /// histograms compact on the wire.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.lock().unwrap();
        let mut out = String::with_capacity(4096);
        let mut last_name = "";
        for ((name, labels), metric) in metrics.iter() {
            if name != last_name {
                let _ = writeln!(out, "# TYPE {name} {}", metric.kind());
                last_name = name;
            }
            match metric {
                Metric::Counter(c) => {
                    out.push_str(name);
                    write_labels(&mut out, labels, None);
                    let _ = writeln!(out, " {}", c.get());
                }
                Metric::Gauge(g) => {
                    out.push_str(name);
                    write_labels(&mut out, labels, None);
                    let _ = writeln!(out, " {}", g.get());
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (i, n) in counts.iter().enumerate() {
                        if *n == 0 {
                            continue;
                        }
                        cumulative += n;
                        let le = format!("{}", bucket_bound_ns(i) as f64 / 1e9);
                        let _ = write!(out, "{name}_bucket");
                        write_labels(&mut out, labels, Some(("le", &le)));
                        let _ = writeln!(out, " {cumulative}");
                    }
                    let _ = write!(out, "{name}_bucket");
                    write_labels(&mut out, labels, Some(("le", "+Inf")));
                    let _ = writeln!(out, " {}", h.count());
                    let _ = write!(out, "{name}_sum");
                    write_labels(&mut out, labels, None);
                    let _ = writeln!(out, " {}", h.sum_ns() as f64 / 1e9);
                    let _ = write!(out, "{name}_count");
                    write_labels(&mut out, labels, None);
                    let _ = writeln!(out, " {}", h.count());
                }
            }
        }
        out
    }

    /// Renders every series as one compact JSON object, for embedding in
    /// a periodic log record. Histograms appear as
    /// `{"count":..,"p50":..,"p90":..,"p99":..,"max":..}` with values in
    /// seconds.
    pub fn render_json(&self) -> String {
        let metrics = self.metrics.lock().unwrap();
        let mut out = String::with_capacity(1024);
        out.push('{');
        let mut first = true;
        for ((name, labels), metric) in metrics.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(name);
            for (k, v) in labels {
                let _ = write!(out, "{{{k}={v}}}");
            }
            out.push_str("\":");
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(out, "{}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, "{}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                        h.count(),
                        h.quantile_ns(0.50) as f64 / 1e9,
                        h.quantile_ns(0.90) as f64 / 1e9,
                        h.quantile_ns(0.99) as f64 / 1e9,
                        h.max_ns() as f64 / 1e9,
                    );
                }
            }
        }
        out.push('}');
        out
    }

    /// Number of registered time series (histograms count as one).
    pub fn series_count(&self) -> usize {
        self.metrics.lock().unwrap().len()
    }
}

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-global metrics registry.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("c_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying counter.
        assert_eq!(r.counter("c_total").get(), 5);

        let g = r.gauge("g");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = Registry::new();
        r.counter_with("drops_total", &[("topic", "a")]).inc();
        r.counter_with("drops_total", &[("topic", "b")]).add(2);
        assert_eq!(r.counter_with("drops_total", &[("topic", "a")]).get(), 1);
        assert_eq!(r.counter_with("drops_total", &[("topic", "b")]).get(), 2);
        assert_eq!(r.series_count(), 2);
    }

    #[test]
    fn counter_vec_caches_per_label_cells() {
        let r: &'static Registry = Box::leak(Box::new(Registry::new()));
        let vec = r.counter_vec("shard_events_total", "shard");
        vec.inc("0");
        vec.add("1", 3);
        vec.inc("0");
        // The cells are the registry's own series, not shadow copies.
        assert_eq!(r.counter_with("shard_events_total", &[("shard", "0")]).get(), 2);
        assert_eq!(r.counter_with("shard_events_total", &[("shard", "1")]).get(), 3);
        assert_eq!(r.series_count(), 2);
        // A cached cell and a fresh registry lookup share the atomic.
        let cell = vec.with("1");
        r.counter_with("shard_events_total", &[("shard", "1")]).inc();
        assert_eq!(cell.get(), 4);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn bucket_index_is_ceil_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn histogram_quantiles_bound_the_truth() {
        let h = Histogram::default();
        // 100 observations: 1ms, 2ms, ..., 100ms.
        for i in 1..=100u64 {
            h.observe_ns(i * 1_000_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max_ns(), 100_000_000);
        // p50 truth is 50ms; the bucketed answer is the bound of the
        // bucket holding it, within [truth, 2*truth].
        let p50 = h.quantile_ns(0.50);
        assert!((50_000_000..=100_000_000).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!((99_000_000..=198_000_000).contains(&p99), "p99 = {p99}");
        // p100 is the exact max.
        assert_eq!(h.quantile_ns(1.0), 100_000_000);
        // Empty histogram.
        assert_eq!(Histogram::default().quantile_ns(0.5), 0);
    }

    #[test]
    fn scoped_timer_records_on_drop_and_discard_does_not() {
        let h = Histogram::default();
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
        h.start_timer().discard();
        assert_eq!(h.count(), 1);
        let elapsed = h.start_timer().observe();
        assert_eq!(h.count(), 2);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("sdci_a_total").add(3);
        r.gauge("sdci_b").set(-2);
        let h = r.histogram("sdci_lat_seconds");
        h.observe_ns(1_500); // bucket 11: (1024, 2048] ns
        h.observe_ns(1_500);
        h.observe_ns(3_000_000); // ~3ms

        let text = r.render_prometheus();
        assert!(text.contains("# TYPE sdci_a_total counter\nsdci_a_total 3\n"), "{text}");
        assert!(text.contains("# TYPE sdci_b gauge\nsdci_b -2\n"), "{text}");
        assert!(text.contains("# TYPE sdci_lat_seconds histogram\n"), "{text}");
        // Bucket bound 2048ns = 2.048e-6 s, cumulative 2.
        assert!(text.contains("sdci_lat_seconds_bucket{le=\"0.000002048\"} 2\n"), "{text}");
        assert!(text.contains("sdci_lat_seconds_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("sdci_lat_seconds_count 3\n"), "{text}");
        // Sum: 3_003_000 ns = 0.003003 s.
        assert!(text.contains("sdci_lat_seconds_sum 0.003003\n"), "{text}");
    }

    #[test]
    fn prometheus_labels_render_and_escape() {
        let r = Registry::new();
        r.counter_with("sdci_drops_total", &[("topic", "feed/\"x\"")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains("sdci_drops_total{topic=\"feed/\\\"x\\\"\"} 1\n"), "{text}");
    }

    #[test]
    fn json_rendering_is_one_object() {
        let r = Registry::new();
        r.counter("a_total").add(2);
        let h = r.histogram("lat");
        h.observe_ns(1_000_000_000); // exactly 1s
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"a_total\":2"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        assert!(json.contains("\"max\":1"), "{json}");
    }
}
