//! Property tests for the message fabric: SQS delivery semantics under
//! random interleavings, and pub-sub accounting.

use proptest::prelude::*;
use sdci_mq::pubsub::Broker;
use sdci_mq::{SqsConfig, SqsQueue};
use std::collections::HashMap;
use std::time::Duration;

#[derive(Debug, Clone)]
enum QOp {
    Send(u32),
    Receive,
    DeleteNth(u8),
    Sweep,
}

fn q_op() -> impl Strategy<Value = QOp> {
    prop_oneof![
        3 => any::<u32>().prop_map(QOp::Send),
        3 => Just(QOp::Receive),
        2 => any::<u8>().prop_map(QOp::DeleteNth),
        1 => Just(QOp::Sweep),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With a generous visibility timeout (nothing expires during the
    /// test): every message is delivered at most once, deletes succeed
    /// exactly once per receipt, and conservation holds:
    /// sent == visible + in_flight + deleted.
    #[test]
    fn sqs_conservation_without_expiry(ops in prop::collection::vec(q_op(), 1..120)) {
        let q: SqsQueue<u32> = SqsQueue::new(SqsConfig {
            visibility_timeout: Duration::from_secs(3600),
            max_receive_count: 0,
        });
        let mut receipts = Vec::new();
        let mut delivered: HashMap<u32, u32> = HashMap::new();
        let mut sent = 0u64;
        let mut deleted = 0u64;
        for op in ops {
            match op {
                QOp::Send(v) => {
                    q.send(v);
                    sent += 1;
                }
                QOp::Receive => {
                    if let Some((receipt, body)) = q.receive() {
                        *delivered.entry(body).or_default() += 1;
                        receipts.push(receipt);
                    }
                }
                QOp::DeleteNth(n) => {
                    if !receipts.is_empty() {
                        let receipt = receipts.remove(n as usize % receipts.len());
                        prop_assert!(q.delete(receipt), "live receipt deletes");
                        prop_assert!(!q.delete(receipt), "double delete fails");
                        deleted += 1;
                    }
                }
                QOp::Sweep => {
                    prop_assert_eq!(q.sweep(), 0, "nothing expires in-horizon");
                }
            }
            prop_assert_eq!(
                sent,
                q.visible_len() as u64 + q.in_flight_len() as u64 + deleted,
                "conservation"
            );
        }
        let stats = q.stats();
        prop_assert_eq!(stats.sent, sent);
        prop_assert_eq!(stats.deleted, deleted);
        prop_assert_eq!(stats.redelivered, 0);
    }

    /// Pub-sub accounting: published * matching_subscribers ==
    /// delivered + dropped, and per-subscriber receipt order matches
    /// publish order.
    #[test]
    fn pubsub_accounting_and_order(
        values in prop::collection::vec(any::<u32>(), 1..200),
        hwm in 1usize..64,
    ) {
        let broker: Broker<u32> = Broker::new(hwm);
        let a = broker.subscribe(&[""]);
        let b = broker.subscribe(&["never-matches/"]);
        let publisher = broker.publisher();
        for v in &values {
            publisher.publish("topic", *v);
        }
        prop_assert_eq!(broker.published(), values.len() as u64);
        prop_assert_eq!(
            broker.delivered() + broker.dropped(),
            values.len() as u64,
            "only subscriber `a` matches"
        );
        let mut got = Vec::new();
        while let Some(msg) = a.try_recv() {
            got.push(msg.payload);
        }
        prop_assert_eq!(got.len() as u64, broker.delivered());
        // Delivered prefix preserves publish order.
        prop_assert_eq!(&got[..], &values[..got.len()]);
        prop_assert!(b.try_recv().is_none());
    }
}

/// Exercise the expiry path deterministically (time-based, so not under
/// proptest's shrinker): a crashed consumer's messages all come back.
#[test]
fn sqs_expiry_redelivers_everything() {
    let q: SqsQueue<u32> = SqsQueue::new(SqsConfig {
        visibility_timeout: Duration::from_millis(5),
        max_receive_count: 0,
    });
    for v in 0..50 {
        q.send(v);
    }
    // Crash-consume everything without deleting.
    let mut first = Vec::new();
    while let Some((_r, body)) = q.receive() {
        first.push(body);
    }
    assert_eq!(first.len(), 50);
    std::thread::sleep(Duration::from_millis(20));
    q.sweep();
    let mut second = Vec::new();
    while let Some((r, body)) = q.receive() {
        assert!(q.delete(r));
        second.push(body);
    }
    second.sort_unstable();
    assert_eq!(second, (0..50).collect::<Vec<_>>());
    assert_eq!(q.stats().redelivered, 50);
}
