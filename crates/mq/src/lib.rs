//! In-process message fabric: the transport substrates the paper builds
//! on.
//!
//! The paper's monitor and Ripple service use three distinct messaging
//! technologies, each reproduced here with its load-bearing semantics:
//!
//! * **ZeroMQ-style pub-sub** ([`pubsub`]) — Collectors publish processed
//!   events to the Aggregator, and the Aggregator publishes to any
//!   subscribed consumer (§4 step 3). Topic prefix filtering, per-
//!   subscriber high-water marks, and PUB-side drops when a subscriber
//!   falls behind all match ZeroMQ's PUB/SUB contract.
//! * **PUSH/PULL pipelines** ([`pipe`]) — bounded, blocking, fan-in
//!   queues used between pipeline stages.
//! * **SQS-like reliable queue + Lambda-like workers** ([`sqs`],
//!   [`lambda`]) — Ripple's cloud service places every reported event in
//!   a reliable queue; serverless functions consume entries and remove
//!   them once successfully processed, and a cleanup function re-drives
//!   entries whose processing failed (§3 "Architecture"). Visibility
//!   timeouts and at-least-once delivery match SQS semantics.
//!
//! Everything here is in-process and thread-based: `Send + 'static`
//! payloads over crossbeam channels. The [`transport`] module abstracts
//! the fabric behind [`Publish`]/[`Subscribe`]/[`Transport`] traits, and
//! the `sdci-net` crate provides a real TCP implementation of the same
//! contracts so the monitor's roles can run as separate OS processes.
//!
//! # Example: pub-sub with topic filtering
//!
//! ```
//! use sdci_mq::pubsub::Broker;
//!
//! let broker = Broker::new(1024);
//! let publisher = broker.publisher();
//! let events = broker.subscribe(&["events/"]);
//! let _other = broker.subscribe(&["admin/"]);
//!
//! publisher.publish("events/mdt0", "CREAT data1.txt".to_string());
//! publisher.publish("admin/health", "ok".to_string());
//!
//! let msg = events.try_recv().expect("matching message");
//! assert_eq!(msg.topic, "events/mdt0");
//! assert!(events.try_recv().is_none(), "admin/ message filtered out");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lambda;
pub mod pipe;
pub mod pubsub;
pub mod sqs;
pub mod transport;

pub use lambda::{LambdaPool, LambdaStats};
pub use pipe::{pipeline, Pull, Push};
pub use pubsub::{BatchingPublisher, Broker, Message, Publisher, Subscriber};
pub use sqs::{Receipt, SqsConfig, SqsQueue, SqsStats};
pub use transport::{Publish, PublishOutcome, PublishReport, PullSubscriber, Subscribe, Transport};
