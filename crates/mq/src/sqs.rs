//! An SQS-like reliable queue.
//!
//! Ripple's cloud service places every reported event "immediately ... in
//! a reliable Simple Queue Service (SQS) queue. Serverless Amazon Lambda
//! functions act on entries in this queue and remove them once
//! successfully processed. A cleanup function periodically iterates
//! through the queue and initiates additional processing for events that
//! were unsuccessfully processed." (§3)
//!
//! The semantics that make that reliability story work are reproduced
//! here: at-least-once delivery, per-message *visibility timeouts* (a
//! received message is hidden, not removed; it reappears if not deleted
//! in time), receipt handles tied to a specific delivery, and redelivery
//! counting so dead-letter policies can be layered on.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for an [`SqsQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SqsConfig {
    /// How long a received message stays invisible before it is
    /// redelivered (SQS default: 30 s).
    pub visibility_timeout: Duration,
    /// Deliveries after which a message is diverted to the dead-letter
    /// store instead of being redelivered (0 = never).
    pub max_receive_count: u32,
}

impl Default for SqsConfig {
    fn default() -> Self {
        SqsConfig { visibility_timeout: Duration::from_secs(30), max_receive_count: 0 }
    }
}

/// Counters for a queue.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SqsStats {
    /// Messages sent.
    pub sent: u64,
    /// Deliveries (first-time and re-deliveries).
    pub received: u64,
    /// Messages deleted after successful processing.
    pub deleted: u64,
    /// Redeliveries after visibility timeout expiry.
    pub redelivered: u64,
    /// Messages moved to the dead-letter store.
    pub dead_lettered: u64,
}

/// A receipt identifying one *delivery* of a message; required to delete
/// it. Stale receipts (from a delivery whose visibility timeout already
/// expired) do not delete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Receipt {
    message_id: u64,
    delivery: u32,
}

struct Entry<T> {
    id: u64,
    body: T,
    receive_count: u32,
    /// `Some(expiry)` while in flight (invisible).
    invisible_until: Option<Instant>,
}

struct QueueState<T> {
    visible: VecDeque<Entry<T>>,
    in_flight: Vec<Entry<T>>,
    dead: Vec<T>,
    next_id: u64,
    stats: SqsStats,
}

/// An in-process reliable queue with SQS visibility semantics.
///
/// Cloning shares the queue; all methods take `&self`.
pub struct SqsQueue<T> {
    state: Arc<Mutex<QueueState<T>>>,
    config: SqsConfig,
}

impl<T> Clone for SqsQueue<T> {
    fn clone(&self) -> Self {
        SqsQueue { state: Arc::clone(&self.state), config: self.config }
    }
}

impl<T> fmt::Debug for SqsQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("SqsQueue")
            .field("visible", &st.visible.len())
            .field("in_flight", &st.in_flight.len())
            .field("dead", &st.dead.len())
            .finish()
    }
}

impl<T: Send + 'static> SqsQueue<T> {
    /// Creates a queue with the given configuration.
    pub fn new(config: SqsConfig) -> Self {
        SqsQueue {
            state: Arc::new(Mutex::new(QueueState {
                visible: VecDeque::new(),
                in_flight: Vec::new(),
                dead: Vec::new(),
                next_id: 1,
                stats: SqsStats::default(),
            })),
            config,
        }
    }

    /// Enqueues a message.
    pub fn send(&self, body: T) {
        let mut st = self.state.lock();
        let id = st.next_id;
        st.next_id += 1;
        st.stats.sent += 1;
        st.visible.push_back(Entry { id, body, receive_count: 0, invisible_until: None });
    }

    /// Receives the next message, hiding it for the visibility timeout.
    /// Returns `None` when nothing is currently visible.
    ///
    /// The returned body is a clone; the queue retains the original until
    /// [`SqsQueue::delete`] is called with the receipt.
    pub fn receive(&self) -> Option<(Receipt, T)>
    where
        T: Clone,
    {
        let now = Instant::now();
        let mut st = self.state.lock();
        Self::requeue_expired(&mut st, now, self.config.max_receive_count);
        let mut entry = st.visible.pop_front()?;
        entry.receive_count += 1;
        if entry.receive_count > 1 {
            st.stats.redelivered += 1;
        }
        st.stats.received += 1;
        entry.invisible_until = Some(now + self.config.visibility_timeout);
        let receipt = Receipt { message_id: entry.id, delivery: entry.receive_count };
        let body = entry.body.clone();
        st.in_flight.push(entry);
        Some((receipt, body))
    }

    /// Deletes a message using the receipt from its most recent delivery.
    /// Returns `true` when the message was removed; `false` for stale
    /// receipts (the message timed out and was redelivered, or was
    /// already deleted).
    pub fn delete(&self, receipt: Receipt) -> bool {
        let mut st = self.state.lock();
        let before = st.in_flight.len();
        st.in_flight
            .retain(|e| !(e.id == receipt.message_id && e.receive_count == receipt.delivery));
        let removed = st.in_flight.len() < before;
        if removed {
            st.stats.deleted += 1;
        }
        removed
    }

    /// The paper's "cleanup function": sweeps expired in-flight messages
    /// back to visible (or to the dead-letter store once over the
    /// receive-count limit). Returns how many were requeued.
    ///
    /// [`SqsQueue::receive`] performs the same sweep lazily, so calling
    /// this is only needed to make stranded messages visible promptly.
    pub fn sweep(&self) -> usize {
        let mut st = self.state.lock();
        Self::requeue_expired(&mut st, Instant::now(), self.config.max_receive_count)
    }

    fn requeue_expired(st: &mut QueueState<T>, now: Instant, max_receive: u32) -> usize {
        let mut requeued = 0;
        let mut i = 0;
        while i < st.in_flight.len() {
            let expired = st.in_flight[i].invisible_until.is_some_and(|deadline| deadline <= now);
            if expired {
                let mut entry = st.in_flight.swap_remove(i);
                entry.invisible_until = None;
                if max_receive > 0 && entry.receive_count >= max_receive {
                    st.stats.dead_lettered += 1;
                    st.dead.push(entry.body);
                } else {
                    st.visible.push_back(entry);
                    requeued += 1;
                }
            } else {
                i += 1;
            }
        }
        requeued
    }

    /// Messages currently visible (receivable now).
    pub fn visible_len(&self) -> usize {
        self.state.lock().visible.len()
    }

    /// Messages currently in flight (received, not yet deleted or
    /// expired).
    pub fn in_flight_len(&self) -> usize {
        self.state.lock().in_flight.len()
    }

    /// Drains the dead-letter store.
    pub fn take_dead_letters(&self) -> Vec<T> {
        std::mem::take(&mut self.state.lock().dead)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SqsStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn fast_config(vis_ms: u64) -> SqsConfig {
        SqsConfig { visibility_timeout: Duration::from_millis(vis_ms), max_receive_count: 0 }
    }

    #[test]
    fn send_receive_delete() {
        let q: SqsQueue<String> = SqsQueue::new(fast_config(1000));
        q.send("hello".into());
        let (receipt, body) = q.receive().unwrap();
        assert_eq!(body, "hello");
        assert_eq!(q.visible_len(), 0);
        assert_eq!(q.in_flight_len(), 1);
        assert!(q.delete(receipt));
        assert_eq!(q.in_flight_len(), 0);
        assert_eq!(q.stats().deleted, 1);
    }

    #[test]
    fn fifo_order_for_first_deliveries() {
        let q: SqsQueue<u32> = SqsQueue::new(fast_config(1000));
        for i in 0..5 {
            q.send(i);
        }
        for i in 0..5 {
            let (r, body) = q.receive().unwrap();
            assert_eq!(body, i);
            q.delete(r);
        }
        assert!(q.receive().is_none());
    }

    #[test]
    fn visibility_timeout_redelivers() {
        let q: SqsQueue<u32> = SqsQueue::new(fast_config(20));
        q.send(42);
        let (first_receipt, _) = q.receive().unwrap();
        assert!(q.receive().is_none(), "invisible while in flight");
        thread::sleep(Duration::from_millis(40));
        let (second_receipt, body) = q.receive().unwrap();
        assert_eq!(body, 42);
        assert_ne!(first_receipt, second_receipt);
        assert_eq!(q.stats().redelivered, 1);
        // The stale receipt no longer deletes.
        assert!(!q.delete(first_receipt));
        assert!(q.delete(second_receipt));
    }

    #[test]
    fn sweep_requeues_promptly() {
        let q: SqsQueue<u32> = SqsQueue::new(fast_config(10));
        q.send(1);
        let _ = q.receive().unwrap();
        thread::sleep(Duration::from_millis(30));
        assert_eq!(q.sweep(), 1);
        assert_eq!(q.visible_len(), 1);
    }

    #[test]
    fn dead_letter_after_max_receives() {
        let q: SqsQueue<u32> = SqsQueue::new(SqsConfig {
            visibility_timeout: Duration::from_millis(5),
            max_receive_count: 2,
        });
        q.send(7);
        for _ in 0..2 {
            let _ = q.receive().unwrap();
            thread::sleep(Duration::from_millis(15));
        }
        q.sweep();
        assert!(q.receive().is_none());
        assert_eq!(q.take_dead_letters(), vec![7]);
        assert_eq!(q.stats().dead_lettered, 1);
    }

    #[test]
    fn at_least_once_under_worker_crash() {
        // A "worker" receives and never deletes (crash); the message
        // must survive and be redelivered to a healthy worker.
        let q: SqsQueue<String> = SqsQueue::new(fast_config(10));
        q.send("precious".into());
        {
            let _ = q.receive().unwrap(); // crashed worker drops receipt
        }
        thread::sleep(Duration::from_millis(25));
        let (r, body) = q.receive().unwrap();
        assert_eq!(body, "precious");
        assert!(q.delete(r));
        let stats = q.stats();
        assert_eq!(stats.sent, 1);
        assert_eq!(stats.received, 2);
        assert_eq!(stats.deleted, 1);
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        let q: SqsQueue<u64> = SqsQueue::new(fast_config(5000));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..250u64 {
                        q.send(p * 1000 + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some((r, body)) = q.receive() {
                        assert!(q.delete(r));
                        got.push(body);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all.len(), 1000);
        all.dedup();
        assert_eq!(all.len(), 1000, "no duplicates within visibility window");
    }
}
