//! ZeroMQ-style PUB/SUB.
//!
//! Subscribers register topic *prefixes* (ZeroMQ's subscription model);
//! publishers fan each message out to every subscriber with a matching
//! prefix. Each subscriber has a bounded queue (the high-water mark):
//! when it is full the message is dropped *for that subscriber only* and
//! counted, exactly as a ZeroMQ PUB socket sheds load.

use crate::transport::PublishOutcome;
use crossbeam_channel::{bounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use sdci_faults::{Direction, FaultPlan, FrameFault, StreamFaults};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A published message: topic plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message<T> {
    /// Routing topic, matched by prefix.
    pub topic: String,
    /// The payload.
    pub payload: T,
}

struct SubscriberSlot<T> {
    prefixes: Vec<String>,
    sender: Sender<Message<T>>,
    dropped: Arc<AtomicU64>,
}

struct BrokerState<T> {
    subscribers: Vec<SubscriberSlot<T>>,
}

/// An in-process PUB/SUB broker.
///
/// Cloning shares the same broker. See the crate docs for an example.
pub struct Broker<T> {
    state: Arc<Mutex<BrokerState<T>>>,
    hwm: usize,
    published: Arc<AtomicU64>,
    delivered: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
    faults: Option<Arc<Mutex<StreamFaults>>>,
    injected: Arc<AtomicU64>,
}

impl<T> Clone for Broker<T> {
    fn clone(&self) -> Self {
        Broker {
            state: Arc::clone(&self.state),
            hwm: self.hwm,
            published: Arc::clone(&self.published),
            delivered: Arc::clone(&self.delivered),
            dropped: Arc::clone(&self.dropped),
            faults: self.faults.clone(),
            injected: Arc::clone(&self.injected),
        }
    }
}

impl<T> fmt::Debug for Broker<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("subscribers", &self.state.lock().subscribers.len())
            .field("hwm", &self.hwm)
            .finish()
    }
}

impl<T: Clone + Send + 'static> Broker<T> {
    /// Creates a broker whose subscribers buffer up to `hwm` messages
    /// (the high-water mark; minimum 1).
    pub fn new(hwm: usize) -> Self {
        Broker {
            state: Arc::new(Mutex::new(BrokerState { subscribers: Vec::new() })),
            hwm: hwm.max(1),
            published: Arc::new(AtomicU64::new(0)),
            delivered: Arc::new(AtomicU64::new(0)),
            dropped: Arc::new(AtomicU64::new(0)),
            faults: None,
            injected: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Installs a deterministic [`FaultPlan`] on this broker: each
    /// publish draws one decision from the plan's `send` profile —
    /// drop (and truncate, which degenerates to drop in-process),
    /// duplicate, or delay — so in-process simulations see the same
    /// chaos the TCP transport would inject on the wire. A `None` or
    /// no-op plan leaves the broker fault-free.
    #[must_use]
    pub fn with_faults(mut self, plan: Option<Arc<FaultPlan>>) -> Self {
        self.faults = plan.filter(|p| !p.is_noop()).map(|p| Arc::new(Mutex::new(p.stream())));
        self
    }

    /// Publishes swallowed or doubled by an installed fault plan.
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// A handle for publishing into this broker.
    pub fn publisher(&self) -> Publisher<T> {
        Publisher { broker: self.clone() }
    }

    /// Registers a subscriber for the given topic prefixes. An empty
    /// prefix (`""`) subscribes to everything.
    pub fn subscribe(&self, prefixes: &[&str]) -> Subscriber<T> {
        self.subscribe_with_hwm(prefixes, self.hwm)
    }

    /// [`Broker::subscribe`] with a per-subscription high-water mark
    /// overriding the broker default. Relay subscriptions that fan a
    /// whole broker out to further consumers (e.g. the TCP broker's
    /// encode-once dispatcher) use a deeper queue than an ordinary
    /// subscriber, so a burst sheds at the *remote* legs' own marks
    /// rather than silently at the relay's.
    pub fn subscribe_with_hwm(&self, prefixes: &[&str], hwm: usize) -> Subscriber<T> {
        let (tx, rx) = bounded(hwm.max(1));
        let dropped = Arc::new(AtomicU64::new(0));
        self.state.lock().subscribers.push(SubscriberSlot {
            prefixes: prefixes.iter().map(|p| p.to_string()).collect(),
            sender: tx,
            dropped: Arc::clone(&dropped),
        });
        Subscriber { receiver: rx, dropped }
    }

    /// Messages published so far.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Per-subscriber deliveries so far (one message to two subscribers
    /// counts twice).
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Deliveries dropped at subscriber high-water marks.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn publish(&self, topic: &str, payload: T) -> PublishOutcome {
        match self.next_fault() {
            None | Some(FrameFault::Deliver) => self.fan_out(topic, payload),
            // In-process there is no half-written frame, so a truncation
            // degenerates to a drop; a partition window also swallows
            // everything published inside it (see `next_fault`).
            Some(FrameFault::Drop) | Some(FrameFault::Truncate) => {
                self.published.fetch_add(1, Ordering::Relaxed);
                self.injected.fetch_add(1, Ordering::Relaxed);
                PublishOutcome::Shed
            }
            Some(FrameFault::Duplicate) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                let outcome = self.fan_out(topic, payload.clone());
                self.fan_out(topic, payload);
                outcome
            }
            Some(FrameFault::Delay(pause)) => {
                std::thread::sleep(pause);
                self.fan_out(topic, payload)
            }
        }
    }

    fn next_fault(&self) -> Option<FrameFault> {
        let faults = self.faults.as_ref()?;
        let mut stream = faults.lock();
        if stream.partitioned() {
            Some(FrameFault::Drop)
        } else {
            Some(stream.decide(Direction::Send))
        }
    }

    fn fan_out(&self, topic: &str, payload: T) -> PublishOutcome {
        self.published.fetch_add(1, Ordering::Relaxed);
        let mut state = self.state.lock();
        let mut matched = 0u64;
        let mut accepted = 0u64;
        // Deliver to matching subscribers, reaping any whose receiving
        // end is gone.
        state.subscribers.retain(|slot| {
            if !slot.prefixes.iter().any(|p| topic.starts_with(p.as_str())) {
                return true;
            }
            matched += 1;
            let msg = Message { topic: topic.to_owned(), payload: payload.clone() };
            match slot.sender.try_send(msg) {
                Ok(()) => {
                    self.delivered.fetch_add(1, Ordering::Relaxed);
                    accepted += 1;
                    true
                }
                Err(crossbeam_channel::TrySendError::Full(_)) => {
                    slot.dropped.fetch_add(1, Ordering::Relaxed);
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    true
                }
                Err(crossbeam_channel::TrySendError::Disconnected(_)) => {
                    // A vanished subscriber is not a shed: it will never
                    // miss anything again.
                    matched -= 1;
                    false
                }
            }
        });
        // Zero matches is vacuous delivery — only "everyone who wanted
        // it shed it" counts as a shed.
        if matched > 0 && accepted == 0 {
            PublishOutcome::Shed
        } else {
            PublishOutcome::Delivered
        }
    }
}

/// The publishing half of a [`Broker`].
pub struct Publisher<T> {
    broker: Broker<T>,
}

impl<T> fmt::Debug for Publisher<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Publisher").finish_non_exhaustive()
    }
}

impl<T: Clone + Send + 'static> Publisher<T> {
    /// Publishes `payload` under `topic`, fanning out to matching
    /// subscribers; slow subscribers shed the message at their HWM.
    /// Reports [`PublishOutcome::Shed`] only when every matching
    /// subscriber shed it.
    pub fn publish(&self, topic: &str, payload: T) -> PublishOutcome {
        self.broker.publish(topic, payload)
    }
}

impl<T> Clone for Publisher<T> {
    fn clone(&self) -> Self {
        Publisher { broker: self.broker.clone() }
    }
}

/// A publisher that batches items into `Vec<T>` messages, amortizing
/// per-message fan-out overhead (the winning transport variant in the
/// `a4_transports` comparison; §6 lists transport exploration as future
/// work).
///
/// Items are buffered until [`BatchingPublisher::flush`] or the batch
/// size is reached. Remember to flush before tearing down, or buffered
/// items are dropped (and counted).
pub struct BatchingPublisher<T> {
    publisher: Publisher<Vec<T>>,
    topic: String,
    buffer: Vec<T>,
    batch_size: usize,
    flushed: u64,
}

impl<T> fmt::Debug for BatchingPublisher<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchingPublisher")
            .field("topic", &self.topic)
            .field("buffered", &self.buffer.len())
            .field("batch_size", &self.batch_size)
            .finish()
    }
}

impl<T: Clone + Send + 'static> BatchingPublisher<T> {
    /// Wraps a `Vec<T>` publisher with batching (batch size minimum 1).
    pub fn new(publisher: Publisher<Vec<T>>, topic: impl Into<String>, batch_size: usize) -> Self {
        BatchingPublisher {
            publisher,
            topic: topic.into(),
            buffer: Vec::new(),
            batch_size: batch_size.max(1),
            flushed: 0,
        }
    }

    /// Buffers an item, publishing the batch when full.
    pub fn push(&mut self, item: T) {
        self.buffer.push(item);
        if self.buffer.len() >= self.batch_size {
            self.flush();
        }
    }

    /// Publishes any buffered items immediately.
    pub fn flush(&mut self) {
        if !self.buffer.is_empty() {
            let batch = std::mem::take(&mut self.buffer);
            self.flushed += batch.len() as u64;
            self.publisher.publish(&self.topic, batch);
        }
    }

    /// Items currently buffered (unpublished).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Items published so far.
    pub fn flushed(&self) -> u64 {
        self.flushed
    }
}

/// The receiving half of one subscription.
pub struct Subscriber<T> {
    receiver: Receiver<Message<T>>,
    dropped: Arc<AtomicU64>,
}

impl<T> fmt::Debug for Subscriber<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Subscriber").field("queued", &self.receiver.len()).finish()
    }
}

impl<T> Subscriber<T> {
    /// Receives the next message, blocking until one arrives or all
    /// publishers are gone (returns `None`).
    pub fn recv(&self) -> Option<Message<T>> {
        self.receiver.recv().ok()
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Option<Message<T>> {
        match self.receiver.try_recv() {
            Ok(m) => Some(m),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Receives, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message<T>> {
        self.receiver.recv_timeout(timeout).ok()
    }

    /// Messages currently buffered.
    pub fn queued(&self) -> usize {
        self.receiver.len()
    }

    /// Messages this subscriber missed at its high-water mark.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fan_out_to_multiple_subscribers() {
        let broker: Broker<u32> = Broker::new(16);
        let a = broker.subscribe(&[""]);
        let b = broker.subscribe(&[""]);
        broker.publisher().publish("t", 7);
        assert_eq!(a.recv().unwrap().payload, 7);
        assert_eq!(b.recv().unwrap().payload, 7);
        assert_eq!(broker.published(), 1);
        assert_eq!(broker.delivered(), 2);
    }

    #[test]
    fn prefix_filtering() {
        let broker: Broker<u32> = Broker::new(16);
        let mdt0 = broker.subscribe(&["events/mdt0"]);
        let all_events = broker.subscribe(&["events/"]);
        let p = broker.publisher();
        p.publish("events/mdt0", 1);
        p.publish("events/mdt1", 2);
        p.publish("health", 3);
        assert_eq!(mdt0.try_recv().unwrap().payload, 1);
        assert!(mdt0.try_recv().is_none());
        assert_eq!(all_events.try_recv().unwrap().payload, 1);
        assert_eq!(all_events.try_recv().unwrap().payload, 2);
        assert!(all_events.try_recv().is_none());
    }

    #[test]
    fn multiple_prefixes_one_subscriber() {
        let broker: Broker<u32> = Broker::new(16);
        let s = broker.subscribe(&["a/", "b/"]);
        let p = broker.publisher();
        p.publish("a/x", 1);
        p.publish("b/y", 2);
        p.publish("c/z", 3);
        assert_eq!(s.try_recv().unwrap().payload, 1);
        assert_eq!(s.try_recv().unwrap().payload, 2);
        assert!(s.try_recv().is_none());
    }

    #[test]
    fn hwm_drops_for_slow_subscriber_only() {
        let broker: Broker<u32> = Broker::new(2);
        let slow = broker.subscribe(&[""]);
        let p = broker.publisher();
        for i in 0..5 {
            p.publish("t", i);
        }
        // Slow subscriber kept only the first 2.
        assert_eq!(slow.try_recv().unwrap().payload, 0);
        assert_eq!(slow.try_recv().unwrap().payload, 1);
        assert!(slow.try_recv().is_none());
        assert_eq!(slow.dropped(), 3);
        assert_eq!(broker.dropped(), 3);
    }

    #[test]
    fn per_subscription_hwm_overrides_broker_default() {
        let broker: Broker<u32> = Broker::new(2);
        let deep = broker.subscribe_with_hwm(&[""], 8);
        let shallow = broker.subscribe(&[""]);
        let p = broker.publisher();
        for i in 0..5 {
            p.publish("t", i);
        }
        assert_eq!(deep.dropped(), 0);
        assert_eq!(deep.queued(), 5);
        assert_eq!(shallow.dropped(), 3, "the broker default still bounds other subscribers");
    }

    #[test]
    fn dropped_subscriber_is_reaped() {
        let broker: Broker<u32> = Broker::new(4);
        let s = broker.subscribe(&[""]);
        drop(s);
        let p = broker.publisher();
        p.publish("t", 1);
        p.publish("t", 2);
        assert_eq!(broker.delivered(), 0);
        assert_eq!(broker.dropped(), 0);
    }

    #[test]
    fn cross_thread_delivery() {
        let broker: Broker<String> = Broker::new(1024);
        let sub = broker.subscribe(&["events/"]);
        let p = broker.publisher();
        let producer = thread::spawn(move || {
            for i in 0..100 {
                p.publish("events/mdt0", format!("event-{i}"));
            }
        });
        let mut got = 0;
        while got < 100 {
            if sub.recv_timeout(Duration::from_secs(5)).is_some() {
                got += 1;
            } else {
                panic!("timed out after {got} messages");
            }
        }
        producer.join().unwrap();
        assert_eq!(broker.delivered(), 100);
    }

    #[test]
    fn batching_publisher_flushes_at_capacity() {
        let broker: Broker<Vec<u32>> = Broker::new(64);
        let sub = broker.subscribe(&["batch/"]);
        let mut batcher = BatchingPublisher::new(broker.publisher(), "batch/x", 3);
        for i in 0..7 {
            batcher.push(i);
        }
        assert_eq!(batcher.buffered(), 1);
        assert_eq!(batcher.flushed(), 6);
        batcher.flush();
        assert_eq!(batcher.flushed(), 7);
        let batches: Vec<Vec<u32>> =
            std::iter::from_fn(|| sub.try_recv().map(|m| m.payload)).collect();
        assert_eq!(batches, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]);
    }

    #[test]
    fn batching_publisher_flush_when_empty_is_noop() {
        let broker: Broker<Vec<u32>> = Broker::new(4);
        let sub = broker.subscribe(&[""]);
        let mut batcher = BatchingPublisher::new(broker.publisher(), "t", 4);
        batcher.flush();
        assert!(sub.try_recv().is_none());
        assert_eq!(batcher.flushed(), 0);
    }

    #[test]
    fn publish_outcome_reports_sheds_honestly() {
        let broker: Broker<u32> = Broker::new(1);
        let p = broker.publisher();
        // No subscribers at all: vacuous delivery, not a shed.
        assert_eq!(p.publish("t", 0), PublishOutcome::Delivered);
        let slow = broker.subscribe(&["t"]);
        assert_eq!(p.publish("t", 1), PublishOutcome::Delivered);
        // `slow`'s queue (hwm 1) is now full: everyone who matched shed.
        assert_eq!(p.publish("t", 2), PublishOutcome::Shed);
        // A fresh subscriber accepts, so the fan-out partially lands.
        let fresh = broker.subscribe(&["t"]);
        assert_eq!(p.publish("t", 3), PublishOutcome::Delivered);
        // Non-matching topic: vacuous again.
        assert_eq!(p.publish("other", 4), PublishOutcome::Delivered);
        drop((slow, fresh));
        // Only reaped (disconnected) subscribers left: vacuous, and the
        // reap must not report a shed.
        assert_eq!(p.publish("t", 5), PublishOutcome::Delivered);
    }

    #[test]
    fn publish_batch_tallies_outcomes() {
        use crate::transport::Publish;
        let broker: Broker<u32> = Broker::new(2);
        let sub = broker.subscribe(&[""]);
        let p = broker.publisher();
        let report = Publish::publish_batch(&p, "t", (0..5).collect());
        assert_eq!(report.delivered, 2);
        assert_eq!(report.shed, 3);
        assert_eq!(report.queued, 0);
        assert_eq!(sub.queued(), 2);
    }

    #[test]
    fn fault_plan_drops_deterministically() {
        let plan = Arc::new(FaultPlan::parse("seed=7,drop=1.0").unwrap());
        let broker: Broker<u32> = Broker::new(16).with_faults(Some(plan));
        let sub = broker.subscribe(&[""]);
        let p = broker.publisher();
        for i in 0..10 {
            assert_eq!(p.publish("t", i), PublishOutcome::Shed);
        }
        assert!(sub.try_recv().is_none());
        assert_eq!(broker.published(), 10);
        assert_eq!(broker.delivered(), 0);
        assert_eq!(broker.faults_injected(), 10);
    }

    #[test]
    fn fault_plan_duplicates_messages() {
        let plan = Arc::new(FaultPlan::parse("seed=7,dup=1.0").unwrap());
        let broker: Broker<u32> = Broker::new(16).with_faults(Some(plan));
        let sub = broker.subscribe(&[""]);
        broker.publisher().publish("t", 42);
        assert_eq!(sub.try_recv().unwrap().payload, 42);
        assert_eq!(sub.try_recv().unwrap().payload, 42);
        assert!(sub.try_recv().is_none());
        assert_eq!(broker.faults_injected(), 1);
    }

    #[test]
    fn noop_fault_plan_is_free() {
        let plan = Arc::new(FaultPlan::parse("seed=7").unwrap());
        let broker: Broker<u32> = Broker::new(16).with_faults(Some(plan));
        let sub = broker.subscribe(&[""]);
        broker.publisher().publish("t", 1);
        assert_eq!(sub.try_recv().unwrap().payload, 1);
        assert_eq!(broker.faults_injected(), 0);
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let broker: Broker<u32> = Broker::new(4);
        let s = broker.subscribe(&[""]);
        assert!(s.recv_timeout(Duration::from_millis(10)).is_none());
        assert_eq!(s.queued(), 0);
    }
}
