//! Transport abstraction: the seam between the monitor and its fabric.
//!
//! The monitor pipeline (Collector → Aggregator → consumers) is written
//! against these traits rather than concrete channel types, so the same
//! code runs over the in-process [`Broker`](crate::pubsub::Broker)
//! (threads in one process, as in every simulation experiment) or over
//! `sdci-net`'s TCP sockets (one OS process per monitor role, as in the
//! paper's real deployment).
//!
//! * [`Publish`] — the sending side of a topic-addressed, lossy
//!   (high-water-marked) fan-out.
//! * [`Subscribe`] — the receiving side: a prefix-filtered stream of
//!   [`Message`]s.
//! * [`Transport`] — a factory tying the two together, implemented by
//!   `pubsub::Broker` and by `sdci_net::TcpTransport`.
//!
//! [`PullSubscriber`] adapts a PUSH/PULL [`Pull`] endpoint (lossless,
//! blocking) into a [`Subscribe`] stream so an Aggregator can ingest
//! from either fabric.

use crate::pipe::Pull;
use crate::pubsub::{Broker, Message, Publisher, Subscriber};
use std::time::Duration;

/// What became of one published payload, as far as the publishing
/// endpoint can tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishOutcome {
    /// Every matched subscriber (possibly zero — fan-out is vacuous
    /// then) accepted the payload into its queue.
    Delivered,
    /// At least one subscriber matched and every one of them shed the
    /// payload at its high-water mark — nobody will ever see it.
    Shed,
    /// Accepted into an outbound queue whose far end can't be observed
    /// from here (e.g. a TCP publisher's wire queue).
    Queued,
}

/// Per-payload outcome tallies for a batch publish.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PublishReport {
    /// Payloads that came back [`PublishOutcome::Delivered`].
    pub delivered: u64,
    /// Payloads that came back [`PublishOutcome::Shed`].
    pub shed: u64,
    /// Payloads that came back [`PublishOutcome::Queued`].
    pub queued: u64,
}

impl PublishReport {
    /// Folds one outcome into the tallies.
    pub fn record(&mut self, outcome: PublishOutcome) {
        match outcome {
            PublishOutcome::Delivered => self.delivered += 1,
            PublishOutcome::Shed => self.shed += 1,
            PublishOutcome::Queued => self.queued += 1,
        }
    }
}

/// The sending side of a topic-addressed event fan-out.
///
/// Delivery follows the PUB/SUB contract: best-effort, shedding at a
/// high-water mark when a subscriber (or the wire) falls behind.
pub trait Publish<T>: Send + 'static {
    /// Publishes `payload` on `topic`. Never blocks on slow consumers;
    /// reports what happened so callers can count sheds honestly.
    fn publish(&self, topic: &str, payload: T) -> PublishOutcome;

    /// Publishes several payloads on one topic, tallying the outcomes.
    /// Endpoints with a wire-level batch format may override this; the
    /// default simply loops [`Publish::publish`].
    fn publish_batch(&self, topic: &str, payloads: Vec<T>) -> PublishReport {
        let mut report = PublishReport::default();
        for payload in payloads {
            report.record(self.publish(topic, payload));
        }
        report
    }
}

/// The receiving side of a topic-addressed event fan-out.
pub trait Subscribe<T>: Send + 'static {
    /// Blocks until a message arrives; `None` when the stream is closed.
    fn recv(&self) -> Option<Message<T>>;

    /// Returns a message if one is queued, without blocking.
    fn try_recv(&self) -> Option<Message<T>>;

    /// Blocks up to `timeout`; `None` on timeout or close.
    fn recv_timeout(&self, timeout: Duration) -> Option<Message<T>>;
}

/// A factory for matched [`Publish`]/[`Subscribe`] endpoints.
///
/// Implemented by the in-process [`Broker`] and by `sdci_net`'s
/// `TcpTransport`; `MonitorClusterBuilder::start_over` accepts either.
pub trait Transport<T> {
    /// The publisher endpoint this transport hands out.
    type Publisher: Publish<T>;
    /// The subscriber endpoint this transport hands out.
    type Subscriber: Subscribe<T>;

    /// Creates a new publisher endpoint.
    fn publisher(&self) -> Self::Publisher;

    /// Creates a subscription filtered to topics starting with any of
    /// `prefixes` (an empty prefix matches everything).
    fn subscribe(&self, prefixes: &[&str]) -> Self::Subscriber;
}

impl<T: Clone + Send + 'static> Publish<T> for Publisher<T> {
    fn publish(&self, topic: &str, payload: T) -> PublishOutcome {
        Publisher::publish(self, topic, payload)
    }
}

impl<T: Send + 'static> Subscribe<T> for Subscriber<T> {
    fn recv(&self) -> Option<Message<T>> {
        Subscriber::recv(self)
    }

    fn try_recv(&self) -> Option<Message<T>> {
        Subscriber::try_recv(self)
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Message<T>> {
        Subscriber::recv_timeout(self, timeout)
    }
}

impl<T: Clone + Send + 'static> Transport<T> for Broker<T> {
    type Publisher = Publisher<T>;
    type Subscriber = Subscriber<T>;

    fn publisher(&self) -> Publisher<T> {
        Broker::publisher(self)
    }

    fn subscribe(&self, prefixes: &[&str]) -> Subscriber<T> {
        Broker::subscribe(self, prefixes)
    }
}

/// Adapts the lossless PUSH/PULL [`Pull`] endpoint into a [`Subscribe`]
/// stream by stamping every item with a fixed topic.
///
/// This is how a distributed Aggregator ingests Collector events that
/// arrived over `sdci-net`'s acknowledged PUSH/PULL pipe (which carries
/// no topics — the lossless leg doesn't filter).
#[derive(Debug, Clone)]
pub struct PullSubscriber<T> {
    pull: Pull<T>,
    topic: String,
}

impl<T: Send + 'static> PullSubscriber<T> {
    /// Wraps `pull`, labelling every received item with `topic`.
    pub fn new(pull: Pull<T>, topic: impl Into<String>) -> Self {
        PullSubscriber { pull, topic: topic.into() }
    }

    fn message(&self, payload: T) -> Message<T> {
        Message { topic: self.topic.clone(), payload }
    }
}

impl<T: Send + 'static> Subscribe<T> for PullSubscriber<T> {
    fn recv(&self) -> Option<Message<T>> {
        self.pull.recv().map(|p| self.message(p))
    }

    fn try_recv(&self) -> Option<Message<T>> {
        self.pull.try_recv().map(|p| self.message(p))
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Message<T>> {
        self.pull.recv_timeout(timeout).map(|p| self.message(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipe::pipeline;

    fn publish_via<P: Publish<u32>>(p: &P) {
        p.publish("events/t", 7);
    }

    fn drain_via<S: Subscribe<u32>>(s: &S) -> Vec<u32> {
        std::iter::from_fn(|| s.try_recv().map(|m| m.payload)).collect()
    }

    #[test]
    fn broker_satisfies_transport() {
        let broker: Broker<u32> = Broker::new(16);
        let sub = Transport::subscribe(&broker, &["events/"]);
        let publisher = Transport::publisher(&broker);
        publish_via(&publisher);
        assert_eq!(drain_via(&sub), vec![7]);
    }

    #[test]
    fn pull_subscriber_labels_topic() {
        let (push, pull) = pipeline::<u32>(8);
        let sub = PullSubscriber::new(pull, "events/remote");
        push.send(1);
        push.send(2);
        let first = sub.recv().unwrap();
        assert_eq!(first.topic, "events/remote");
        assert_eq!(first.payload, 1);
        assert_eq!(sub.recv_timeout(Duration::from_millis(10)).unwrap().payload, 2);
        assert!(sub.try_recv().is_none());
    }
}
