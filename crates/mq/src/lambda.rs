//! A Lambda-like worker pool over an [`SqsQueue`].
//!
//! Ripple's cloud service runs serverless functions against the event
//! queue: each invocation processes one entry and removes it on success;
//! failures leave the entry to reappear after its visibility timeout,
//! where the periodic cleanup sweep (here a dedicated thread calling
//! [`SqsQueue::sweep`]) re-drives it.

use crate::sqs::SqsQueue;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Counters for a [`LambdaPool`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LambdaStats {
    /// Invocations that returned success (entry deleted).
    pub succeeded: u64,
    /// Invocations that returned failure (entry left for redelivery).
    pub failed: u64,
}

/// A pool of worker threads consuming an [`SqsQueue`] with a handler
/// function, plus a cleanup sweeper thread.
///
/// # Example
///
/// ```
/// use sdci_mq::{LambdaPool, SqsConfig, SqsQueue};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let queue: SqsQueue<u32> = SqsQueue::new(SqsConfig::default());
/// let sum = Arc::new(AtomicU64::new(0));
/// let seen = Arc::clone(&sum);
/// let pool = LambdaPool::start(queue.clone(), 2, move |n| {
///     seen.fetch_add(n as u64, Ordering::Relaxed);
///     Ok(())
/// });
/// for i in 1..=10 {
///     queue.send(i);
/// }
/// pool.drain(Duration::from_secs(5));
/// pool.shutdown();
/// assert_eq!(sum.load(Ordering::Relaxed), 55);
/// ```
pub struct LambdaPool<T: Send + 'static> {
    queue: SqsQueue<T>,
    workers: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    succeeded: Arc<AtomicU64>,
    failed: Arc<AtomicU64>,
}

impl<T: Send + 'static> fmt::Debug for LambdaPool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LambdaPool").field("workers", &self.workers.len()).finish()
    }
}

impl<T: Clone + Send + 'static> LambdaPool<T> {
    /// Spawns `workers` handler threads plus one cleanup sweeper.
    ///
    /// The handler returns `Ok(())` to acknowledge (delete) an entry or
    /// `Err(reason)` to leave it for redelivery.
    pub fn start(
        queue: SqsQueue<T>,
        workers: usize,
        handler: impl Fn(T) -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let succeeded = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));
        let handler = Arc::new(handler);
        let mut handles = Vec::new();
        for _ in 0..workers.max(1) {
            let queue = queue.clone();
            let stop = Arc::clone(&stop);
            let handler = Arc::clone(&handler);
            let succeeded = Arc::clone(&succeeded);
            let failed = Arc::clone(&failed);
            handles.push(thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match queue.receive() {
                        Some((receipt, body)) => match handler(body) {
                            Ok(()) => {
                                queue.delete(receipt);
                                succeeded.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        None => thread::sleep(Duration::from_millis(1)),
                    }
                }
            }));
        }
        // The cleanup function: periodically requeue expired entries.
        {
            let queue = queue.clone();
            let stop = Arc::clone(&stop);
            handles.push(thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    queue.sweep();
                    thread::sleep(Duration::from_millis(5));
                }
            }));
        }
        LambdaPool { queue, workers: handles, stop, succeeded, failed }
    }

    /// Blocks until the queue is fully drained (nothing visible or in
    /// flight) or `timeout` elapses. Returns `true` when drained.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.queue.visible_len() == 0 && self.queue.in_flight_len() == 0 {
                return true;
            }
            thread::sleep(Duration::from_millis(2));
        }
        false
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LambdaStats {
        LambdaStats {
            succeeded: self.succeeded.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }

    /// Stops all workers and joins them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<T: Send + 'static> Drop for LambdaPool<T> {
    fn drop(&mut self) {
        // Signal stop; threads exit on their next poll. Joining here
        // would block drop, so detached threads are left to finish.
        self.stop.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sqs::SqsConfig;
    use parking_lot::Mutex;

    #[test]
    fn processes_everything_once_on_success() {
        let queue: SqsQueue<u32> = SqsQueue::new(SqsConfig::default());
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let pool = LambdaPool::start(queue.clone(), 4, move |n| {
            sink.lock().push(n);
            Ok(())
        });
        for i in 0..200 {
            queue.send(i);
        }
        assert!(pool.drain(Duration::from_secs(10)));
        pool.shutdown();
        let mut got = seen.lock().clone();
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn failed_entries_are_redriven() {
        let queue: SqsQueue<u32> = SqsQueue::new(SqsConfig {
            visibility_timeout: Duration::from_millis(10),
            max_receive_count: 0,
        });
        let attempts = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&attempts);
        // Fail the first two attempts, then succeed.
        let pool = LambdaPool::start(queue.clone(), 1, move |_n| {
            if counter.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("transient".into())
            } else {
                Ok(())
            }
        });
        queue.send(99);
        assert!(pool.drain(Duration::from_secs(10)));
        let stats = pool.stats();
        pool.shutdown();
        assert_eq!(stats.succeeded, 1);
        assert_eq!(stats.failed, 2);
        assert_eq!(queue.stats().redelivered, 2);
    }

    #[test]
    fn shutdown_stops_workers() {
        let queue: SqsQueue<u32> = SqsQueue::new(SqsConfig::default());
        let pool = LambdaPool::start(queue.clone(), 2, |_| Ok(()));
        pool.shutdown();
        // Messages sent after shutdown stay queued.
        queue.send(1);
        thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.visible_len(), 1);
    }
}
