//! PUSH/PULL pipelines: bounded, blocking, fan-in queues.
//!
//! Unlike PUB/SUB (which sheds load at the high-water mark), a PUSH
//! socket *blocks* when its peer's queue is full — the backpressure
//! behaviour pipeline stages want.

use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::fmt;
use std::time::Duration;

/// Creates a PUSH/PULL pair with a queue bound of `capacity` (minimum 1).
///
/// Both ends are cloneable: multiple pushers fan in, multiple pullers
/// compete for messages (ZeroMQ's load-balanced PULL).
pub fn pipeline<T: Send + 'static>(capacity: usize) -> (Push<T>, Pull<T>) {
    let (tx, rx) = bounded(capacity.max(1));
    (Push { sender: tx }, Pull { receiver: rx })
}

/// The sending half of a pipeline.
pub struct Push<T> {
    sender: Sender<T>,
}

impl<T> Clone for Push<T> {
    fn clone(&self) -> Self {
        Push { sender: self.sender.clone() }
    }
}

impl<T> fmt::Debug for Push<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Push").field("queued", &self.sender.len()).finish()
    }
}

impl<T: Send + 'static> Push<T> {
    /// Sends, blocking while the queue is full. Returns `false` when all
    /// pullers are gone (the message is lost).
    pub fn send(&self, value: T) -> bool {
        self.sender.send(value).is_ok()
    }

    /// Sends without blocking; `Err` returns the value when the queue is
    /// full or disconnected.
    pub fn try_send(&self, value: T) -> Result<(), T> {
        self.sender.try_send(value).map_err(|e| e.into_inner())
    }

    /// Messages currently queued.
    pub fn queued(&self) -> usize {
        self.sender.len()
    }
}

/// The receiving half of a pipeline.
pub struct Pull<T> {
    receiver: Receiver<T>,
}

impl<T> Clone for Pull<T> {
    fn clone(&self) -> Self {
        Pull { receiver: self.receiver.clone() }
    }
}

impl<T> fmt::Debug for Pull<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pull").field("queued", &self.receiver.len()).finish()
    }
}

impl<T: Send + 'static> Pull<T> {
    /// Receives, blocking until a message arrives or every pusher is
    /// gone (returns `None`).
    pub fn recv(&self) -> Option<T> {
        self.receiver.recv().ok()
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Option<T> {
        self.receiver.try_recv().ok()
    }

    /// Receives, waiting at most `timeout`. Returns `None` on timeout
    /// *or* disconnect; use [`Pull::recv`] to distinguish.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        match self.receiver.recv_timeout(timeout) {
            Ok(v) => Some(v),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Messages currently queued.
    pub fn queued(&self) -> usize {
        self.receiver.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn roundtrip() {
        let (push, pull) = pipeline::<u32>(8);
        assert!(push.send(1));
        assert!(push.send(2));
        assert_eq!(pull.recv(), Some(1));
        assert_eq!(pull.recv(), Some(2));
        assert_eq!(pull.try_recv(), None);
    }

    #[test]
    fn try_send_fails_when_full() {
        let (push, _pull) = pipeline::<u32>(2);
        push.try_send(1).unwrap();
        push.try_send(2).unwrap();
        assert_eq!(push.try_send(3), Err(3));
        assert_eq!(push.queued(), 2);
    }

    #[test]
    fn send_blocks_until_drained() {
        let (push, pull) = pipeline::<u32>(1);
        push.send(0);
        let pusher = thread::spawn(move || {
            // This blocks until the main thread pulls.
            assert!(push.send(1));
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(pull.recv(), Some(0));
        assert_eq!(pull.recv(), Some(1));
        pusher.join().unwrap();
    }

    #[test]
    fn recv_returns_none_after_pushers_drop() {
        let (push, pull) = pipeline::<u32>(4);
        push.send(9);
        drop(push);
        assert_eq!(pull.recv(), Some(9));
        assert_eq!(pull.recv(), None);
    }

    #[test]
    fn send_fails_after_pullers_drop() {
        let (push, pull) = pipeline::<u32>(4);
        drop(pull);
        assert!(!push.send(1));
    }

    #[test]
    fn competing_pullers_partition_messages() {
        let (push, pull) = pipeline::<u32>(64);
        let pull2 = pull.clone();
        let h1 = thread::spawn(move || {
            let mut n = 0;
            while pull.recv().is_some() {
                n += 1;
            }
            n
        });
        let h2 = thread::spawn(move || {
            let mut n = 0;
            while pull2.recv().is_some() {
                n += 1;
            }
            n
        });
        for i in 0..1000 {
            assert!(push.send(i));
        }
        drop(push);
        let total = h1.join().unwrap() + h2.join().unwrap();
        assert_eq!(total, 1000);
    }

    #[test]
    fn recv_timeout_when_idle() {
        let (_push, pull) = pipeline::<u32>(4);
        assert_eq!(pull.recv_timeout(Duration::from_millis(10)), None);
    }
}
