//! The calibrated discrete-event model of the monitor pipeline.
//!
//! The paper's throughput experiments (§5.2) drive the testbed at its
//! maximum event-generation rate and measure how many events the monitor
//! detects, processes, and reports. This module replays that pipeline in
//! virtual time on the [`sdci_des`] kernel: events arrive at a
//! configurable rate, flow through per-MDT *extract* and *process*
//! stages, then a shared *aggregate* stage and a *consume* stage, each a
//! FIFO server with calibrated service times.
//!
//! The processing stage's service time is dominated by `fid2path`
//! resolution. Two remediations the paper proposes are modelled
//! explicitly so they can be ablated:
//!
//! * **batching** amortizes the fixed invocation overhead over
//!   [`PipelineParams::batch_size`] records;
//! * **caching** skips resolution entirely when the record's parent
//!   directory is in the [`PathCache`].
//!
//! The model is deterministic for a given seed and runs in milliseconds,
//! which is what lets the benchmark suite regenerate every number in §5
//! on a laptop.

use crate::pathcache::PathCache;
use rand::Rng;
use sdci_des::{ArrivalProcess, ArrivalSchedule, Server, Simulation};
use sdci_types::{EventsPerSec, Fid, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Service-time calibration for each pipeline stage.
///
/// CPU-bound stages (`extract`, `refactor`, `aggregate`, `consume`)
/// contribute to modelled CPU utilization; resolution time is I/O wait
/// against the MDS (the collector blocks in `fid2path`, it does not
/// spin), matching the low CPU figures of Table 3 alongside the
/// resolution-bound throughput of §5.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageCosts {
    /// Per-record ChangeLog extraction (CPU).
    pub extract: SimDuration,
    /// Fixed overhead of one `fid2path` invocation (I/O wait).
    pub resolve_fixed: SimDuration,
    /// Marginal per-record resolution cost within an invocation (I/O
    /// wait).
    pub resolve_marginal: SimDuration,
    /// Cost of a path-cache hit (CPU, near-zero).
    pub resolve_cached: SimDuration,
    /// Refactoring the raw tuple into a path-based event (CPU).
    pub refactor: SimDuration,
    /// Aggregator store+publish work per event (CPU).
    pub aggregate: SimDuration,
    /// Consumer handling per event (CPU).
    pub consume: SimDuration,
}

/// Parameters of one modelled throughput run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineParams {
    /// Number of MDTs, each with its own Collector (extract + process
    /// servers).
    pub mdt_count: u32,
    /// Total event-generation rate across the filesystem (events/s).
    pub generation_rate: f64,
    /// Length of the generation window.
    pub duration: SimDuration,
    /// Stage service times.
    pub costs: StageCosts,
    /// Path-cache capacity per Collector (0 = paper baseline, no cache).
    pub cache_capacity: usize,
    /// Records extracted (and resolved) per batch (1 = paper baseline).
    pub batch_size: usize,
    /// Size of the directory working set events are drawn from; smaller
    /// pools mean more cache locality. The paper's generator works in a
    /// handful of directories.
    pub directory_pool: usize,
    /// Use Poisson arrivals instead of uniform spacing.
    pub poisson: bool,
    /// Overrides the arrival process entirely (e.g.
    /// [`ArrivalProcess::Diurnal`] for day/night load shapes); when set,
    /// `generation_rate` and `poisson` only describe the nominal load
    /// for reporting.
    pub arrivals: Option<ArrivalProcess>,
    /// RNG seed (directory choice and Poisson gaps).
    pub seed: u64,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            mdt_count: 1,
            generation_rate: 1000.0,
            duration: SimDuration::from_secs(10),
            costs: StageCosts {
                extract: SimDuration::from_micros(2),
                resolve_fixed: SimDuration::from_micros(80),
                resolve_marginal: SimDuration::from_micros(20),
                resolve_cached: SimDuration::from_nanos(300),
                refactor: SimDuration::from_micros(4),
                aggregate: SimDuration::from_nanos(700),
                consume: SimDuration::from_nanos(250),
            },
            cache_capacity: 0,
            batch_size: 1,
            directory_pool: 16,
            poisson: false,
            arrivals: None,
            seed: 7,
        }
    }
}

/// Per-stage outcome of a modelled run.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name (`extract`, `process`, `aggregate`, `consume`).
    pub name: String,
    /// Events completed by this stage (across all its servers).
    pub completed: u64,
    /// Mean utilization over the generation window, `[0, 1]`.
    pub utilization: f64,
    /// Mean queueing delay at this stage.
    pub mean_wait: SimDuration,
    /// Worst queueing delay at this stage (across its servers).
    pub max_wait: SimDuration,
}

/// Outcome of one modelled throughput run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Events generated during the window.
    pub generated: u64,
    /// Events fully reported (consumed) within the window — the paper's
    /// headline number.
    pub reported_in_window: u64,
    /// Events fully reported once the pipeline drained.
    pub reported_total: u64,
    /// The generation window.
    pub window: SimDuration,
    /// Offered rate.
    pub generation_rate: EventsPerSec,
    /// Achieved report rate within the window.
    pub report_rate: EventsPerSec,
    /// How far the report rate falls below generation, in percent
    /// (the paper's "14.91% lower" figure).
    pub shortfall_pct: f64,
    /// Per-stage details, pipeline order.
    pub stages: Vec<StageReport>,
    /// Name of the stage with the highest utilization.
    pub bottleneck: String,
    /// `fid2path` invocations performed.
    pub fid2path_calls: u64,
    /// Resolutions served by the cache.
    pub cache_hits: u64,
    /// Virtual instant at which the last event was reported.
    pub drained_at: SimTime,
    /// CPU-seconds consumed per component within the window (extract +
    /// refactor for the Collector; aggregate; consume), counted at stage
    /// completion — resolution wait is excluded, as it is I/O wait, not
    /// CPU.
    pub collector_cpu_seconds: f64,
    /// Aggregator CPU-seconds over the window.
    pub aggregator_cpu_seconds: f64,
    /// Consumer CPU-seconds over the window.
    pub consumer_cpu_seconds: f64,
    /// End-to-end latencies (arrival → reported), sorted ascending.
    pub latencies: Vec<SimDuration>,
}

impl PipelineReport {
    /// Collector CPU utilization over the window, as a percentage.
    pub fn collector_cpu_pct(&self) -> f64 {
        self.collector_cpu_seconds / self.window.as_secs_f64() * 100.0
    }

    /// Aggregator CPU utilization over the window, as a percentage.
    pub fn aggregator_cpu_pct(&self) -> f64 {
        self.aggregator_cpu_seconds / self.window.as_secs_f64() * 100.0
    }

    /// Consumer CPU utilization over the window, as a percentage.
    pub fn consumer_cpu_pct(&self) -> f64 {
        self.consumer_cpu_seconds / self.window.as_secs_f64() * 100.0
    }

    /// The `q`-quantile (0.0–1.0) of end-to-end event latency.
    /// Returns [`SimDuration::ZERO`] when no events completed.
    pub fn latency_quantile(&self, q: f64) -> SimDuration {
        if self.latencies.is_empty() {
            return SimDuration::ZERO;
        }
        let idx = ((self.latencies.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.latencies[idx]
    }
}

struct RunState {
    generated: u64,
    reported_in_window: u64,
    reported_total: u64,
    fid2path_calls: u64,
    cache_hits: u64,
    collector_cpu: SimDuration,
    aggregator_cpu: SimDuration,
    consumer_cpu: SimDuration,
    drained_at: SimTime,
    latencies: Vec<SimDuration>,
}

/// The modelled pipeline. Construct with parameters, then [`run`].
///
/// [`run`]: PipelineModel::run
#[derive(Debug, Clone)]
pub struct PipelineModel {
    params: PipelineParams,
}

impl PipelineModel {
    /// Creates a model for `params`.
    ///
    /// # Panics
    ///
    /// Panics when `mdt_count`, `batch_size`, or `directory_pool` is 0,
    /// or `generation_rate` is not positive.
    pub fn new(params: PipelineParams) -> Self {
        assert!(params.mdt_count > 0, "need at least one MDT");
        assert!(params.batch_size > 0, "batch size must be >= 1");
        assert!(params.directory_pool > 0, "directory pool must be >= 1");
        assert!(params.generation_rate > 0.0, "generation rate must be positive");
        PipelineModel { params }
    }

    /// The parameters this model runs with.
    pub fn params(&self) -> &PipelineParams {
        &self.params
    }

    /// Executes the model to completion and reports.
    pub fn run(&self) -> PipelineReport {
        let p = &self.params;
        let mut sim = Simulation::new(p.seed);
        let window_end = SimTime::EPOCH + p.duration;

        let extract_servers: Vec<Server> =
            (0..p.mdt_count).map(|m| Server::new(format!("extract-mdt{m}"), 1)).collect();
        let process_servers: Vec<Server> =
            (0..p.mdt_count).map(|m| Server::new(format!("process-mdt{m}"), 1)).collect();
        let aggregate_server = Server::new("aggregate", 1);
        let consume_server = Server::new("consume", 1);
        let caches: Vec<Rc<RefCell<PathCache>>> = (0..p.mdt_count)
            .map(|_| Rc::new(RefCell::new(PathCache::new(p.cache_capacity))))
            .collect();

        let state = Rc::new(RefCell::new(RunState {
            generated: 0,
            reported_in_window: 0,
            reported_total: 0,
            fid2path_calls: 0,
            cache_hits: 0,
            collector_cpu: SimDuration::ZERO,
            aggregator_cpu: SimDuration::ZERO,
            consumer_cpu: SimDuration::ZERO,
            drained_at: SimTime::EPOCH,
            latencies: Vec::new(),
        }));

        let arrivals = p.arrivals.unwrap_or(if p.poisson {
            ArrivalProcess::Poisson { rate: p.generation_rate }
        } else {
            ArrivalProcess::Uniform { rate: p.generation_rate }
        });

        let costs = p.costs;
        let batch = p.batch_size as u64;
        let pool = p.directory_pool as u32;
        let mdts = p.mdt_count as u64;

        {
            let state = Rc::clone(&state);
            let extract_servers = extract_servers.clone();
            let process_servers = process_servers.clone();
            let aggregate_server = aggregate_server.clone();
            let consume_server = consume_server.clone();
            let caches = caches.clone();
            ArrivalSchedule::new(arrivals).until(window_end).start(&mut sim, move |sim, index| {
                state.borrow_mut().generated += 1;
                let arrived = sim.now();
                let mdt = (index % mdts) as usize;
                let extract = extract_servers[mdt].clone();
                let process = process_servers[mdt].clone();
                let aggregate = aggregate_server.clone();
                let consume = consume_server.clone();
                let cache = Rc::clone(&caches[mdt]);
                let state = Rc::clone(&state);

                extract.submit(sim, costs.extract, move |sim, _| {
                    if sim.now() <= window_end {
                        state.borrow_mut().collector_cpu += costs.extract;
                    }
                    // Resolution cost decided at processing time from
                    // live cache state.
                    let dir = sim.rng().gen_range(0..pool);
                    let dir_fid = Fid::new(0x9990, dir, 0);
                    let resolve = {
                        let mut cache = cache.borrow_mut();
                        let mut st = state.borrow_mut();
                        if cache.get(dir_fid).is_some() {
                            st.cache_hits += 1;
                            costs.resolve_cached
                        } else {
                            st.fid2path_calls += 1;
                            cache.insert(dir_fid, format!("/pool/dir{dir}"));
                            costs.resolve_fixed / batch + costs.resolve_marginal
                        }
                    };
                    let service = resolve + costs.refactor;
                    let state2 = Rc::clone(&state);
                    process.submit(sim, service, move |sim, finish| {
                        if finish <= window_end {
                            state2.borrow_mut().collector_cpu += costs.refactor;
                        }
                        let state3 = Rc::clone(&state2);
                        let consume = consume.clone();
                        aggregate.submit(sim, costs.aggregate, move |sim, finish| {
                            if finish <= window_end {
                                state3.borrow_mut().aggregator_cpu += costs.aggregate;
                            }
                            let state4 = Rc::clone(&state3);
                            consume.submit(sim, costs.consume, move |_, finish| {
                                let mut st = state4.borrow_mut();
                                st.reported_total += 1;
                                if finish <= window_end {
                                    st.reported_in_window += 1;
                                    st.consumer_cpu += costs.consume;
                                }
                                st.latencies.push(finish - arrived);
                                st.drained_at = st.drained_at.max(finish);
                            });
                        });
                    });
                });
            });
        }

        sim.run();

        let st = state.borrow();
        let window = p.duration;
        let stage_report = |name: &str, servers: &[Server]| {
            let completed: u64 = servers.iter().map(|s| s.stats().completed).sum();
            let utilization =
                servers.iter().map(|s| s.stats().utilization(window, s.capacity())).sum::<f64>()
                    / servers.len() as f64;
            let total_wait: u64 = servers.iter().map(|s| s.stats().mean_wait().as_nanos()).sum();
            let max_wait =
                servers.iter().map(|s| s.stats().max_wait).max().unwrap_or(SimDuration::ZERO);
            StageReport {
                name: name.to_owned(),
                completed,
                utilization,
                mean_wait: SimDuration::from_nanos(total_wait / servers.len() as u64),
                max_wait,
            }
        };
        let stages = vec![
            stage_report("extract", &extract_servers),
            stage_report("process", &process_servers),
            stage_report("aggregate", std::slice::from_ref(&aggregate_server)),
            stage_report("consume", std::slice::from_ref(&consume_server)),
        ];
        let bottleneck = stages
            .iter()
            .max_by(|a, b| a.utilization.total_cmp(&b.utilization))
            .map(|s| s.name.clone())
            .unwrap_or_default();

        let generation_rate = EventsPerSec::from_count(st.generated, window);
        let report_rate = EventsPerSec::from_count(st.reported_in_window, window);
        let mut latencies = st.latencies.clone();
        latencies.sort_unstable();

        PipelineReport {
            generated: st.generated,
            reported_in_window: st.reported_in_window,
            reported_total: st.reported_total,
            window,
            generation_rate,
            report_rate,
            shortfall_pct: report_rate.percent_below(generation_rate),
            stages,
            bottleneck,
            fid2path_calls: st.fid2path_calls,
            cache_hits: st.cache_hits,
            drained_at: st.drained_at,
            collector_cpu_seconds: st.collector_cpu.as_secs_f64(),
            aggregator_cpu_seconds: st.aggregator_cpu.as_secs_f64(),
            consumer_cpu_seconds: st.consumer_cpu.as_secs_f64(),
            latencies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_params() -> PipelineParams {
        PipelineParams {
            generation_rate: 1000.0,
            duration: SimDuration::from_secs(5),
            ..PipelineParams::default()
        }
    }

    #[test]
    fn underloaded_pipeline_reports_everything() {
        // Resolution cost 100 us => capacity ~9.6k/s >> 1k/s offered.
        let mut p = base_params();
        p.costs.resolve_fixed = SimDuration::from_micros(50);
        p.costs.resolve_marginal = SimDuration::from_micros(50);
        let report = PipelineModel::new(p).run();
        assert_eq!(report.generated, 5000);
        assert_eq!(report.reported_total, 5000);
        assert!(report.shortfall_pct < 2.0, "shortfall {}", report.shortfall_pct);
    }

    #[test]
    fn overloaded_pipeline_is_resolution_bound() {
        // Service ~2 ms/event => capacity ~500/s < 1000/s offered.
        let mut p = base_params();
        p.costs.resolve_fixed = SimDuration::from_millis(1);
        p.costs.resolve_marginal = SimDuration::from_millis(1);
        let report = PipelineModel::new(p).run();
        assert_eq!(report.generated, 5000);
        let rate = report.report_rate.per_sec();
        assert!((rate - 500.0).abs() < 15.0, "rate {rate}");
        assert_eq!(report.bottleneck, "process");
        assert!(report.shortfall_pct > 45.0);
        // Nothing is lost, only delayed: the pipeline drains eventually.
        assert_eq!(report.reported_total, 5000);
        assert!(report.drained_at > SimTime::EPOCH + p_duration());
    }

    fn p_duration() -> SimDuration {
        SimDuration::from_secs(5)
    }

    #[test]
    fn cache_converts_misses_to_hits() {
        let mut p = base_params();
        p.cache_capacity = 64;
        p.directory_pool = 16;
        let report = PipelineModel::new(p).run();
        assert!(report.cache_hits > report.fid2path_calls * 10);
        assert_eq!(report.cache_hits + report.fid2path_calls, report.generated);
    }

    #[test]
    fn cache_raises_throughput_of_overloaded_pipeline() {
        let mut slow = base_params();
        slow.generation_rate = 2000.0;
        slow.costs.resolve_fixed = SimDuration::from_micros(500);
        slow.costs.resolve_marginal = SimDuration::from_micros(500);
        let baseline = PipelineModel::new(slow.clone()).run();
        slow.cache_capacity = 64;
        let cached = PipelineModel::new(slow).run();
        assert!(
            cached.report_rate.per_sec() > baseline.report_rate.per_sec() * 1.5,
            "cached {} vs baseline {}",
            cached.report_rate,
            baseline.report_rate
        );
    }

    #[test]
    fn batching_amortizes_fixed_cost() {
        let mut p = base_params();
        p.generation_rate = 5000.0;
        p.costs.resolve_fixed = SimDuration::from_micros(900);
        p.costs.resolve_marginal = SimDuration::from_micros(100);
        let unbatched = PipelineModel::new(p.clone()).run();
        p.batch_size = 64;
        let batched = PipelineModel::new(p).run();
        assert!(
            batched.report_rate.per_sec() > unbatched.report_rate.per_sec() * 2.0,
            "batched {} vs unbatched {}",
            batched.report_rate,
            unbatched.report_rate
        );
    }

    #[test]
    fn multi_mdt_scales_processing() {
        let mut p = base_params();
        p.generation_rate = 4000.0;
        p.costs.resolve_fixed = SimDuration::from_micros(500);
        p.costs.resolve_marginal = SimDuration::ZERO;
        let single = PipelineModel::new(p.clone()).run();
        p.mdt_count = 4;
        let quad = PipelineModel::new(p).run();
        assert!(
            quad.report_rate.per_sec() > single.report_rate.per_sec() * 1.9,
            "4 MDTs {} vs 1 MDT {}",
            quad.report_rate,
            single.report_rate
        );
    }

    #[test]
    fn latency_quantiles_grow_with_load() {
        let run_at = |rate: f64| {
            let mut p = base_params();
            p.poisson = true;
            p.generation_rate = rate;
            PipelineModel::new(p).run()
        };
        // Capacity ≈ 1/(104us) ≈ 9.6k/s; compare light vs heavy load.
        let light = run_at(1_000.0);
        let heavy = run_at(9_000.0);
        assert_eq!(light.latencies.len() as u64, light.reported_total);
        assert!(light.latency_quantile(0.5) <= light.latency_quantile(0.99));
        assert!(
            heavy.latency_quantile(0.99) > light.latency_quantile(0.99) * 2,
            "queueing delay must grow near saturation: light p99 {} heavy p99 {}",
            light.latency_quantile(0.99),
            heavy.latency_quantile(0.99)
        );
        assert_eq!(run_at(1_000.0).latency_quantile(0.0), run_at(1_000.0).latencies[0]);
    }

    #[test]
    fn determinism_per_seed() {
        let p = PipelineParams { poisson: true, ..base_params() };
        let a = PipelineModel::new(p.clone()).run();
        let b = PipelineModel::new(p).run();
        assert_eq!(a, b);
    }

    #[test]
    fn cpu_seconds_track_cpu_stages_only() {
        // Underloaded pipeline: every event completes within the window,
        // so CPU-seconds are exactly per-event CPU times event count.
        let p = base_params();
        let report = PipelineModel::new(p.clone()).run();
        let per_event_cpu = (p.costs.extract + p.costs.refactor).as_secs_f64();
        let expected = per_event_cpu * report.reported_in_window as f64;
        assert!(
            (report.collector_cpu_seconds - expected).abs() < per_event_cpu * 10.0,
            "collector cpu {} vs expected {expected}",
            report.collector_cpu_seconds
        );
        assert!(report.collector_cpu_pct() < 100.0);
        assert!(report.aggregator_cpu_pct() < report.collector_cpu_pct());
        assert!(report.consumer_cpu_pct() < report.aggregator_cpu_pct());
    }

    #[test]
    #[should_panic(expected = "at least one MDT")]
    fn zero_mdts_panics() {
        let _ = PipelineModel::new(PipelineParams { mdt_count: 0, ..base_params() });
    }
}
