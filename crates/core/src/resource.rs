//! Resource-utilization modelling (Table 3).
//!
//! Table 3 reports the peak CPU and memory of the three monitor
//! components during the Iota throughput runs. Two observations from the
//! paper shape the model:
//!
//! * CPU cost is small even at full throughput, because resolution time
//!   is spent *waiting* on the MDS, not computing. Modelled CPU% is the
//!   CPU-bound stage time over the window (from
//!   [`PipelineReport`](crate::model::PipelineReport)).
//! * "The memory footprint is due to the use of a local store that
//!   records a list of every event captured by the monitor" — memory
//!   grows linearly in retained events until the store's rotation bound.

use crate::model::PipelineReport;
use sdci_types::ByteSize;
use std::fmt;

/// One component's modelled peak usage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentUsage {
    /// Peak CPU utilization in percent.
    pub cpu_pct: f64,
    /// Peak resident memory.
    pub memory: ByteSize,
}

impl fmt::Display for ComponentUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}% CPU, {:.1} MB", self.cpu_pct, self.memory.as_mib_f64())
    }
}

/// Usage of the three components, Table 3's rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceReport {
    /// The Collector process.
    pub collector: ComponentUsage,
    /// The Aggregator process.
    pub aggregator: ComponentUsage,
    /// The consuming Ripple agent.
    pub consumer: ComponentUsage,
}

/// Memory-footprint calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceModel {
    /// Baseline interpreter/process footprint (every component pays it).
    pub process_base: ByteSize,
    /// Per-event footprint of the Collector's captured-event list (raw
    /// record + processed event held for the experiment's audit log).
    pub collector_bytes_per_event: ByteSize,
    /// Per-event footprint of the Aggregator's store entries.
    pub aggregator_bytes_per_event: ByteSize,
    /// Events the consumer buffers at peak.
    pub consumer_buffered_events: u64,
    /// Per-event footprint of consumer buffers.
    pub consumer_bytes_per_event: ByteSize,
}

impl ResourceModel {
    /// Calibration matching the paper's experimental processes (Python
    /// services keeping an in-memory list of every captured event).
    pub fn paper_calibrated() -> Self {
        ResourceModel {
            process_base: ByteSize::from_bytes(12 * 1024 * 1024 + 800 * 1024), // ~12.8 MB
            collector_bytes_per_event: ByteSize::from_bytes(575),
            aggregator_bytes_per_event: ByteSize::from_bytes(438),
            consumer_buffered_events: 0,
            consumer_bytes_per_event: ByteSize::from_bytes(430),
        }
    }

    /// A production-shaped calibration: bounded store, no audit lists.
    pub fn production(store_capacity: u64) -> Self {
        ResourceModel {
            process_base: ByteSize::from_mib(8),
            collector_bytes_per_event: ByteSize::ZERO,
            aggregator_bytes_per_event: ByteSize::from_bytes(430),
            consumer_buffered_events: store_capacity.min(1024),
            consumer_bytes_per_event: ByteSize::from_bytes(430),
        }
    }

    /// Builds the Table 3-style report for a finished pipeline run.
    ///
    /// `events_captured` is the number of events the run retained in
    /// memory (the experiment keeps all of them; a production deployment
    /// caps this at the store's rotation bound).
    pub fn report(&self, pipeline: &PipelineReport, events_captured: u64) -> ResourceReport {
        ResourceReport {
            collector: ComponentUsage {
                cpu_pct: pipeline.collector_cpu_pct(),
                memory: self
                    .process_base
                    .saturating_add(self.collector_bytes_per_event.saturating_mul(events_captured)),
            },
            aggregator: ComponentUsage {
                cpu_pct: pipeline.aggregator_cpu_pct(),
                memory: self.process_base.saturating_add(
                    self.aggregator_bytes_per_event.saturating_mul(events_captured),
                ),
            },
            consumer: ComponentUsage {
                cpu_pct: pipeline.consumer_cpu_pct(),
                memory: self.process_base.saturating_add(
                    self.consumer_bytes_per_event.saturating_mul(self.consumer_buffered_events),
                ),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PipelineModel, PipelineParams};
    use sdci_types::SimDuration;

    fn run() -> PipelineReport {
        PipelineModel::new(PipelineParams {
            generation_rate: 2000.0,
            duration: SimDuration::from_secs(10),
            ..PipelineParams::default()
        })
        .run()
    }

    #[test]
    fn collector_dominates_cpu() {
        let report = run();
        let usage = ResourceModel::paper_calibrated().report(&report, report.reported_total);
        assert!(usage.collector.cpu_pct > usage.aggregator.cpu_pct);
        assert!(usage.aggregator.cpu_pct > usage.consumer.cpu_pct);
    }

    #[test]
    fn memory_grows_with_captured_events() {
        let report = run();
        let model = ResourceModel::paper_calibrated();
        let small = model.report(&report, 1000);
        let large = model.report(&report, 500_000);
        assert!(large.collector.memory > small.collector.memory);
        assert!(large.aggregator.memory > small.aggregator.memory);
        assert_eq!(large.consumer.memory, small.consumer.memory);
    }

    #[test]
    fn consumer_is_near_process_base() {
        let report = run();
        let model = ResourceModel::paper_calibrated();
        let usage = model.report(&report, 500_000);
        assert!((usage.consumer.memory.as_mib_f64() - 12.8).abs() < 0.1);
    }

    #[test]
    fn production_model_bounds_collector() {
        let report = run();
        let usage = ResourceModel::production(10_000).report(&report, 10_000_000);
        assert!(
            usage.collector.memory < ByteSize::from_mib(16),
            "production collector keeps no audit list"
        );
    }

    #[test]
    fn display_formats_like_table3() {
        let usage = ComponentUsage { cpu_pct: 6.667, memory: ByteSize::from_mib(281) };
        let s = usage.to_string();
        assert!(s.contains("6.667% CPU"));
        assert!(s.contains("281.0 MB"));
    }
}
