//! The Aggregator (§4, step 3).
//!
//! "Once an event is reported to the Aggregator it is immediately placed
//! in a queue to be processed. The Aggregator is multi-threaded, enabling
//! it to both publish events to subscribed consumers and store the events
//! in a local database with minimal overhead."
//!
//! The implementation uses two threads: an *ingest* thread that receives
//! Collector events, assigns global sequence numbers, and inserts into
//! the [`EventStore`]; and a *publish* thread that fans stored events out
//! to subscribed consumers. Store-before-publish ordering guarantees that
//! anything a consumer has seen announced is retrievable from the
//! historic API.

use crate::store::{EventBackend, EventStore, MeterNames, MeteredBackend, StoreError};
use sdci_mq::pipe::{pipeline, Pull, Push};
use sdci_mq::pubsub::Broker;
use sdci_mq::transport::Subscribe;
use sdci_types::{FileEvent, TraceCarrier, TraceContext};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A file event stamped with the Aggregator's global sequence number.
///
/// Sequence numbers are dense (1, 2, 3, ...), so consumers detect losses
/// as gaps and recover via the store API.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequencedEvent {
    /// Global sequence number assigned at aggregation.
    pub seq: u64,
    /// The event.
    pub event: FileEvent,
}

/// What the Aggregator publishes on the consumer feed.
///
/// Heartbeats carry the highest assigned sequence number so a consumer
/// that missed the *tail* of a burst (shed at its high-water mark, with
/// nothing following to reveal the gap) still learns how far behind it
/// is and can recover from the store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeedMessage {
    /// A sequenced file event.
    Event(SequencedEvent),
    /// A liveness/progress marker published while the feed is idle.
    Heartbeat {
        /// The highest sequence number assigned so far.
        last_seq: u64,
    },
}

/// Binary layout: `seq` (LE u64) then the event's own binary form.
impl sdci_types::BinPayload for SequencedEvent {
    fn encode_bin(&self, buf: &mut Vec<u8>) {
        self.seq.encode_bin(buf);
        self.event.encode_bin(buf);
    }

    fn decode_bin(r: &mut sdci_types::BinReader<'_>) -> Result<Self, sdci_types::BinDecodeError> {
        Ok(SequencedEvent { seq: r.u64()?, event: FileEvent::decode_bin(r)? })
    }
}

/// Binary layout: a one-byte variant tag (`0` = `Event`, `1` =
/// `Heartbeat`) followed by the variant's fields.
impl sdci_types::BinPayload for FeedMessage {
    fn encode_bin(&self, buf: &mut Vec<u8>) {
        match self {
            FeedMessage::Event(sev) => {
                buf.push(0);
                sev.encode_bin(buf);
            }
            FeedMessage::Heartbeat { last_seq } => {
                buf.push(1);
                last_seq.encode_bin(buf);
            }
        }
    }

    fn decode_bin(r: &mut sdci_types::BinReader<'_>) -> Result<Self, sdci_types::BinDecodeError> {
        match r.u8()? {
            0 => Ok(FeedMessage::Event(SequencedEvent::decode_bin(r)?)),
            1 => Ok(FeedMessage::Heartbeat { last_seq: r.u64()? }),
            other => {
                Err(sdci_types::BinDecodeError::msg(format!("invalid FeedMessage tag {other}")))
            }
        }
    }
}

/// A sequenced event carries whatever context its inner event does, so
/// network endpoints treat both shapes uniformly.
impl TraceCarrier for SequencedEvent {
    fn trace_context(&self) -> Option<TraceContext> {
        self.event.trace_context()
    }

    fn set_trace_context(&mut self, ctx: Option<TraceContext>) {
        self.event.set_trace_context(ctx);
    }
}

/// Heartbeats carry no context; events delegate to the payload.
impl TraceCarrier for FeedMessage {
    fn trace_context(&self) -> Option<TraceContext> {
        match self {
            FeedMessage::Event(sev) => sev.trace_context(),
            FeedMessage::Heartbeat { .. } => None,
        }
    }

    fn set_trace_context(&mut self, ctx: Option<TraceContext>) {
        if let FeedMessage::Event(sev) = self {
            sev.set_trace_context(ctx);
        }
    }
}

/// Counters for the [`Aggregator`].
#[derive(Debug, Default)]
pub struct AggregatorStats {
    /// Events received from Collectors.
    pub received: AtomicU64,
    /// Events inserted into the store.
    pub stored: AtomicU64,
    /// Events published to the consumer feed.
    pub published: AtomicU64,
    /// Store insert batches rejected for ordering violations. Any value
    /// above zero means the ingest thread has halted: the store refused
    /// a sequence the Aggregator assigned, so continuing would publish
    /// events that are not retrievable from the historic API.
    pub insert_errors: AtomicU64,
}

/// Snapshot of [`AggregatorStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AggregatorSnapshot {
    /// Events received from Collectors.
    pub received: u64,
    /// Events inserted into the store.
    pub stored: u64,
    /// Events published to the consumer feed.
    pub published: u64,
    /// Store insert batches rejected for ordering violations (nonzero
    /// means ingest has halted).
    pub insert_errors: u64,
}

/// The running Aggregator: two threads plus shared store.
///
/// Generic over its [`EventBackend`], defaulting to the in-process
/// segmented [`EventStore`]; `sdcimon` hands it a whole layered stack
/// (`Arc<dyn EventBackend>`) via [`Aggregator::start_with_backend`].
pub struct Aggregator<B: EventBackend + ?Sized = EventStore> {
    store: Arc<B>,
    feed: Broker<FeedMessage>,
    stats: Arc<AggregatorStats>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl<B: EventBackend + ?Sized> fmt::Debug for Aggregator<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Aggregator").field("threads", &self.threads.len()).finish()
    }
}

impl Aggregator<EventStore> {
    /// Starts the Aggregator over `events` (the Collector-side
    /// subscription), with a store retaining `store_capacity` events and
    /// a consumer feed with the given high-water mark.
    ///
    /// `events` is any [`Subscribe`] stream: an in-process broker
    /// subscription, or (via `sdci-net`) a TCP PULL endpoint fed by
    /// remote Collectors.
    pub fn start<S>(events: S, store_capacity: usize, feed_hwm: usize) -> Self
    where
        S: Subscribe<FileEvent>,
    {
        Self::start_with_store(events, EventStore::new(store_capacity), feed_hwm)
    }

    /// Starts the Aggregator with a pre-populated store (restored from a
    /// snapshot after a crash). Sequence
    /// numbering resumes after the snapshot's last event, so consumers
    /// reconnecting with `subscribe_from(old_seq)` recover seamlessly
    /// across the restart.
    pub fn start_with_store<S>(events: S, store: EventStore, feed_hwm: usize) -> Self
    where
        S: Subscribe<FileEvent>,
    {
        Aggregator::start_with_backend(events, Arc::new(store), feed_hwm)
    }
}

impl<B: EventBackend + ?Sized + 'static> Aggregator<B> {
    /// Starts the Aggregator over any [`EventBackend`] — a bare store,
    /// or a full middleware stack built by
    /// [`StoreStack`](crate::StoreStack). Sequence numbering resumes
    /// after the backend's last event.
    pub fn start_with_backend<S>(events: S, store: Arc<B>, feed_hwm: usize) -> Self
    where
        S: Subscribe<FileEvent>,
    {
        let resume_seq = store.last_seq();
        let feed: Broker<FeedMessage> = Broker::new(feed_hwm);
        let stats = Arc::new(AggregatorStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let last_seq = Arc::new(AtomicU64::new(0));
        // The internal store->publish hand-off is sized independently of
        // the consumer HWM: stalling it would back-pressure ingest and
        // lose events *before* the store.
        let (to_publish, publish_queue): (Push<SequencedEvent>, Pull<SequencedEvent>) =
            pipeline(feed_hwm.max(65_536));

        // Ingest thread: receive -> sequence -> store -> hand off. Under
        // load the queue is drained into a single `insert_batch` call so
        // the store's write lock is taken once per burst, not once per
        // event; when the feed is trickling the batch degenerates to one
        // event and behaves exactly like the per-event path.
        //
        // Inserts go through a metrics layer carrying the aggregator's
        // long-standing series names (stored/insert-error counters, the
        // end-to-end insert-lag histogram), so they survive no matter
        // what backend is underneath.
        let ingest = {
            let store = MeteredBackend::with_names(
                MeterNames::prefixed("sdci_aggregator")
                    .insert_lag_histogram("sdci_e2e_store_insert_latency_seconds"),
                Arc::clone(&store),
            );
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let last_seq = Arc::clone(&last_seq);
            std::thread::spawn(move || {
                const MAX_INGEST_BATCH: usize = 256;
                let mut seq = resume_seq;
                'ingest: loop {
                    let first = match events.recv_timeout(Duration::from_millis(5)) {
                        Some(msg) => msg,
                        None => {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            continue;
                        }
                    };
                    let mut batch = Vec::with_capacity(16);
                    seq += 1;
                    batch.push(SequencedEvent { seq, event: first.payload });
                    while batch.len() < MAX_INGEST_BATCH {
                        match events.try_recv() {
                            Some(msg) => {
                                seq += 1;
                                batch.push(SequencedEvent { seq, event: msg.payload });
                            }
                            None => break,
                        }
                    }
                    let n = batch.len() as u64;
                    stats.received.fetch_add(n, Ordering::Relaxed);
                    sdci_obs::static_metric!(counter, "sdci_aggregator_received_total").add(n);
                    // Ingest span, adopting the first sampled event's
                    // carried context. It is the thread's current span
                    // while the insert runs, so the store middleware's
                    // layers (cache, meter, tenant, backend) nest under
                    // it without any plumbing.
                    let mut ingest_span =
                        batch.iter().find_map(|s| s.event.trace.filter(|t| t.sampled)).map(|t| {
                            sdci_obs::trace::child_of(
                                t.trace_id,
                                t.parent_span_id,
                                "aggregator.ingest",
                            )
                        });
                    if let Some(span) = ingest_span.as_mut() {
                        span.set_detail(format!("{n} events"));
                    }
                    if let Err(err) = store.insert_batch(batch.clone()) {
                        // The store refused a batch this thread just
                        // sequenced. An ordering rejection only happens
                        // when something else wrote to the shared store
                        // behind our back; pressing on would publish
                        // events the historic API cannot serve, so halt
                        // ingest and surface the fault through stats and
                        // metrics instead of crashing the process.
                        match &err {
                            StoreError::Order(order) => sdci_obs::error!(
                                "aggregator ingest halted: store rejected batch: {order}";
                                last_seq = order.last_seq,
                                offered_seq = order.offered_seq,
                                batch_len = n
                            ),
                            other => sdci_obs::error!(
                                "aggregator ingest halted: store rejected batch: {other}";
                                batch_len = n
                            ),
                        }
                        stats.insert_errors.fetch_add(1, Ordering::Relaxed);
                        stop.store(true, Ordering::Relaxed);
                        break 'ingest;
                    }
                    stats.stored.fetch_add(n, Ordering::Relaxed);
                    last_seq.store(seq, Ordering::Relaxed);
                    drop(ingest_span);
                    for sev in batch {
                        if !to_publish.send(sev) {
                            break 'ingest; // publisher gone
                        }
                    }
                }
            })
        };

        // Publish thread: fan out to consumers, with idle heartbeats so
        // consumers that shed the tail of a burst learn how far behind
        // they are.
        let publish = {
            let feed = feed.clone();
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let last_seq = Arc::clone(&last_seq);
            std::thread::spawn(move || {
                let publisher = feed.publisher();
                let mut last_heartbeat = std::time::Instant::now();
                loop {
                    match publish_queue.recv_timeout(Duration::from_millis(5)) {
                        Some(sev) => {
                            publisher.publish("feed/all", FeedMessage::Event(sev));
                            stats.published.fetch_add(1, Ordering::Relaxed);
                            sdci_obs::static_metric!(counter, "sdci_aggregator_published_total")
                                .inc();
                        }
                        None => {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            if last_heartbeat.elapsed() >= Duration::from_millis(20) {
                                let seq = last_seq.load(Ordering::Relaxed);
                                if seq > 0 {
                                    publisher.publish(
                                        "feed/all",
                                        FeedMessage::Heartbeat { last_seq: seq },
                                    );
                                }
                                last_heartbeat = std::time::Instant::now();
                            }
                        }
                    }
                }
            })
        };

        Aggregator { store, feed, stats, stop, threads: vec![ingest, publish] }
    }

    /// The consumer-facing feed broker; subscribe with topic prefix
    /// `"feed/"`.
    pub fn feed(&self) -> &Broker<FeedMessage> {
        &self.feed
    }

    /// The historic-event store (the Aggregator's query API). Reads
    /// never block ingest: all query paths take `&self`. For the
    /// default backend this is the [`SharedStore`](crate::SharedStore)
    /// handle callers have always had.
    pub fn store(&self) -> Arc<B> {
        Arc::clone(&self.store)
    }

    /// Counter snapshot.
    pub fn snapshot(&self) -> AggregatorSnapshot {
        AggregatorSnapshot {
            received: self.stats.received.load(Ordering::Relaxed),
            stored: self.stats.stored.load(Ordering::Relaxed),
            published: self.stats.published.load(Ordering::Relaxed),
            insert_errors: self.stats.insert_errors.load(Ordering::Relaxed),
        }
    }

    /// Registers a readiness probe under `name` with the process-wide
    /// health registry (served on `/healthz`). The probe reports
    /// unhealthy once ingest has halted — either because the store
    /// rejected a batch or because shutdown has been signalled. Opt-in
    /// rather than automatic so unit tests that spin up throwaway
    /// aggregators do not pollute the global registry.
    pub fn register_health_probe(&self, name: &str) {
        let stats = Arc::clone(&self.stats);
        let stop = Arc::clone(&self.stop);
        sdci_obs::health::register_probe(name, move || {
            let errors = stats.insert_errors.load(Ordering::Relaxed);
            if errors > 0 {
                return Err(format!("ingest halted after {errors} store rejection(s)"));
            }
            if stop.load(Ordering::Relaxed) {
                return Err("aggregator stopped".to_string());
            }
            Ok(())
        });
    }

    /// Signals the threads to stop once their queues drain and joins
    /// them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl<B: EventBackend + ?Sized> Drop for Aggregator<B> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreQuery;
    use sdci_types::{ChangelogKind, EventKind, Fid, MdtIndex, SimTime};
    use std::path::PathBuf;

    fn event(i: u64) -> FileEvent {
        FileEvent {
            index: i,
            mdt: MdtIndex::new(0),
            changelog_kind: ChangelogKind::Create,
            kind: EventKind::Created,
            time: SimTime::from_secs(i),
            path: PathBuf::from(format!("/f{i}")),
            src_path: None,
            target: Fid::new(1, i as u32, 0),
            is_dir: false,
            extracted_unix_ns: None,
            trace: None,
        }
    }

    fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
        let end = std::time::Instant::now() + deadline;
        while std::time::Instant::now() < end {
            if done() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        false
    }

    #[test]
    fn sequences_stores_and_publishes() {
        let broker: Broker<FileEvent> = Broker::new(1024);
        let agg = Aggregator::start(broker.subscribe(&["events/"]), 1000, 1024);
        let consumer = agg.feed().subscribe(&["feed/"]);
        let p = broker.publisher();
        for i in 1..=50 {
            p.publish("events/mdt0", event(i));
        }
        assert!(wait_until(Duration::from_secs(5), || agg.snapshot().published >= 50));
        let mut seqs = Vec::new();
        while let Some(msg) = consumer.try_recv() {
            if let FeedMessage::Event(sev) = msg.payload {
                seqs.push(sev.seq);
            }
        }
        assert_eq!(seqs, (1..=50).collect::<Vec<_>>(), "dense, ordered sequence numbers");
        assert_eq!(agg.store().len(), 50);
        agg.shutdown();
    }

    #[test]
    fn store_is_ahead_of_feed() {
        // Anything seen on the feed must already be in the store.
        let broker: Broker<FileEvent> = Broker::new(1024);
        let agg = Aggregator::start(broker.subscribe(&["events/"]), 1000, 1024);
        let consumer = agg.feed().subscribe(&["feed/"]);
        let store = agg.store();
        let p = broker.publisher();
        for i in 1..=200 {
            p.publish("events/mdt0", event(i));
        }
        let mut checked = 0;
        while checked < 200 {
            if let Some(msg) = consumer.recv_timeout(Duration::from_secs(5)) {
                let FeedMessage::Event(sev) = msg.payload else { continue };
                let seq = sev.seq;
                let found = store.query(&StoreQuery::after_seq(seq - 1).limit(1));
                assert!(
                    found.first().is_some_and(|e| e.seq == seq),
                    "event {seq} on feed but absent from store"
                );
                checked += 1;
            } else {
                panic!("feed stalled after {checked} events");
            }
        }
        agg.shutdown();
    }

    #[test]
    fn store_rotates_at_capacity() {
        let broker: Broker<FileEvent> = Broker::new(1024);
        let agg = Aggregator::start(broker.subscribe(&["events/"]), 10, 1024);
        let p = broker.publisher();
        for i in 1..=30 {
            p.publish("events/mdt0", event(i));
        }
        assert!(wait_until(Duration::from_secs(5), || agg.snapshot().stored >= 30));
        let store = agg.store();
        assert_eq!(store.len(), 10);
        assert_eq!(store.first_seq(), 21);
        agg.shutdown();
    }

    #[test]
    fn insert_failure_halts_ingest_and_surfaces_in_stats() {
        // Inject an ordered-insert failure: write a far-future sequence
        // into the shared store behind the ingest thread's back, so the
        // next sequence the Aggregator assigns is stale. The old code
        // died in `.expect(...)` and took the thread down silently; now
        // the error is counted, ingest halts, and shutdown still joins.
        let broker: Broker<FileEvent> = Broker::new(1024);
        let agg = Aggregator::start(broker.subscribe(&["events/"]), 1000, 1024);
        let p = broker.publisher();
        p.publish("events/mdt0", event(1));
        assert!(wait_until(Duration::from_secs(5), || agg.snapshot().stored >= 1));

        agg.store()
            .insert(SequencedEvent { seq: 1_000_000, event: event(2) })
            .expect("out-of-band insert");
        p.publish("events/mdt0", event(3));

        assert!(
            wait_until(Duration::from_secs(5), || agg.snapshot().insert_errors == 1),
            "ordered-insert failure must surface through AggregatorSnapshot"
        );
        let snap = agg.snapshot();
        assert_eq!(snap.stored, 1, "rejected batch must not count as stored");
        assert_eq!(snap.received, 2, "the offending event was still received");
        agg.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let broker: Broker<FileEvent> = Broker::new(16);
        let agg = Aggregator::start(broker.subscribe(&["events/"]), 10, 16);
        agg.shutdown();
    }
}
